//! The AuLang AST → bytecode compiler.
//!
//! Lowers a parsed [`Program`] into a [`CompiledProgram`] for the VM in
//! `vm.rs`. The compiler resolves every variable reference to a
//! frame-relative slot at compile time (lexical scoping matches the
//! interpreter's innermost-first `HashMap` chain exactly, because block
//! control flow is strictly sequential), pre-formats every statically
//! determined error message, and — in traced modes — decides *per site*
//! whether to emit trace opcodes.
//!
//! In [`TraceMode::Selective`] the decision consults the static dependence
//! graph: a site is instrumented only if the assigned variable (or, for
//! condition/use sites, some possibly-read variable) cannot be proven
//! unrelated to every prediction target by [`StaticFilter`]. Programs that
//! defeat the static analysis (computed `input` / `mark_input` /
//! `mark_target` names) fall back to [`TraceMode::Full`] so dynamic
//! extraction never silently loses facts.

use crate::absint::{self, Analysis, Folded};
use crate::ast::{BinOp, Expr, ExprKind, Function, Program, Stmt, StmtKind};
use crate::bytecode::{CompiledProgram, FuncInfo, MathFn, Op, OptStats, TraceKind, TraceMode};
use crate::static_analysis;
use crate::value::Value;
use au_trace::StaticFilter;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Compiles `program` under the requested trace mode.
///
/// Compilation is infallible: statically detectable runtime errors
/// (undefined variables, unknown functions, arity mismatches) compile to
/// `Fail` opcodes that reproduce the interpreter's error message at the
/// same execution point, preserving lazy error semantics.
pub fn compile_program(program: &Program, requested: TraceMode) -> CompiledProgram {
    let _t = t_time!("au_lang.vm.compile");
    compile_impl(program, requested, None)
}

/// Compiles `program` with the abstract-interpretation optimizer enabled.
///
/// Runs [`absint::analyze`] over the program and uses the proven facts
/// for constant folding, branch pruning on provably-constant conditions,
/// dead-store elision (untraced mode only), Selective-mode trace-opcode
/// elision for provably-constant variables, and a bytecode peephole pass
/// that fuses `Load`/`Const`/`Bin` sequences into superinstructions. The
/// optimized program is observably identical to the unoptimized one:
/// same result, output, step count, π effects, and (in `Full` mode) the
/// same recorded dependence facts.
pub fn compile_program_opt(program: &Program, requested: TraceMode) -> CompiledProgram {
    let _t = t_time!("au_lang.vm.compile_opt");
    let analysis = absint::analyze(program);
    let (optimized, stats) = optimize_ast(program, &analysis, requested);
    let opt = OptInfo {
        constants: analysis.constants.keys().cloned().collect(),
    };
    let mut compiled = compile_impl(&optimized, requested, Some(&opt));
    compiled.opt_stats.folded = stats.folded;
    compiled.opt_stats.pruned_branches = stats.pruned_branches;
    compiled.opt_stats.dead_stores = stats.dead_stores;
    compiled.opt_stats.fused = fuse_superinstructions(&mut compiled);
    compiled
}

/// Optimizer inputs threaded through [`compile_impl`].
struct OptInfo {
    /// Variables `absint` proved constant (Selective trace elision).
    constants: HashSet<String>,
}

fn compile_impl(program: &Program, requested: TraceMode, opt: Option<&OptInfo>) -> CompiledProgram {
    let effective = match requested {
        TraceMode::Selective if selective_defeated(program) => TraceMode::Full,
        mode => mode,
    };
    let selective = match effective {
        TraceMode::Selective => {
            let static_db = static_analysis::analyze(program);
            let targets = static_db
                .targets()
                .iter()
                .map(|&t| static_db.name(t).to_owned())
                .collect();
            Some(SelectiveCtx {
                filter: StaticFilter::new(&static_db),
                targets,
                summaries: static_analysis::return_summaries(program),
                memo: HashMap::new(),
                constants: opt.map(|o| o.constants.clone()).unwrap_or_default(),
                elided: 0,
            })
        }
        _ => None,
    };
    let mut c = Compiler {
        program,
        mode: effective,
        optimize: opt.is_some(),
        selective,
        ops: Vec::new(),
        consts: Vec::new(),
        names: Vec::new(),
        name_ids: HashMap::new(),
        msgs: Vec::new(),
        msg_ids: HashMap::new(),
        live_sets: vec![Vec::new()], // id 0 = the empty live set
        funcs: Vec::new(),
        func_ids: HashMap::new(),
        compiling_name: 0,
    };
    // Pass 1: register every function (first definition wins, matching
    // `Program::function`) so calls can resolve forward references.
    for f in &program.functions {
        if !c.func_ids.contains_key(&f.name) {
            let idx = c.funcs.len() as u16;
            c.func_ids.insert(f.name.clone(), idx);
            let name = c.name_id(&f.name);
            c.funcs.push(FuncInfo {
                name,
                params: Vec::new(),
                entry: 0,
                nlocals: 0,
                slot_names: Vec::new(),
            });
        }
    }
    // Pass 2: compile each registered body.
    let mut compiled: Vec<bool> = vec![false; c.funcs.len()];
    for f in &program.functions {
        let idx = c.func_ids[&f.name];
        if compiled[idx as usize] {
            continue; // duplicate definition is unreachable, skip
        }
        compiled[idx as usize] = true;
        c.compile_function(f, idx);
    }
    let main_func = c.func_ids["main"];
    let relevant = {
        let names: Vec<String> = c.names.clone();
        names
            .iter()
            .map(|n| match c.selective.as_mut() {
                Some(sel) => sel.is_relevant(n),
                None => true,
            })
            .collect()
    };
    let trace_elided = c.selective.as_ref().map_or(0, |s| s.elided);
    CompiledProgram {
        ops: c.ops,
        consts: c.consts,
        names: c.names,
        msgs: c.msgs,
        funcs: c.funcs,
        live_sets: c.live_sets,
        main_func,
        requested,
        effective,
        relevant,
        opt_stats: OptStats {
            trace_elided,
            ..OptStats::default()
        },
    }
}

// ---------------------------------------------------------------------
// The abstract-interpretation optimizer
// ---------------------------------------------------------------------

/// Rewrites `program` using facts proven by [`absint::analyze`].
///
/// Three transformations, each preserving observable behavior (result,
/// output, per-statement `Step` count, π effects, and — in traced modes —
/// the recorded dependence facts):
///
/// - **Constant folding**: an expression whose span `absint` proved pure,
///   error-free, and single-valued is replaced by its literal value. In
///   traced modes only variable-free subtrees fold (folding a `Var` away
///   would shrink a recorded dep set); subtrees containing user-function
///   calls never fold (each callee statement bumps the step counter).
/// - **Branch condition pruning**: `if`/`while` conditions that fold to a
///   boolean literal are rewritten; [`Compiler::compile_stmt`] then emits
///   only the taken branch. Statement-level `Step`s are preserved, and a
///   literal condition contributes no deps, so no trace event changes.
/// - **Dead-store elision** (untraced mode only): the right-hand side of
///   a store `absint`'s liveness pass proved dead is replaced by `0`,
///   provided the RHS is total (pure + error-free) and user-call-free.
///   Traced modes keep dead stores intact — their `TraceAssign` values
///   are observable in the analysis database.
fn optimize_ast(program: &Program, analysis: &Analysis, mode: TraceMode) -> (Program, OptStats) {
    let off = mode == TraceMode::Off;
    let dead: HashSet<(usize, usize)> = if off {
        analysis
            .dead_stores
            .iter()
            .filter(|d| {
                analysis
                    .totals
                    .contains(&(d.value_span.start, d.value_span.end))
            })
            .map(|d| (d.span.start, d.span.end))
            .collect()
    } else {
        HashSet::new()
    };
    let mut opt = AstOpt {
        program,
        analysis,
        off,
        dead,
        stats: OptStats::default(),
    };
    let mut rewritten = program.clone();
    for f in &mut rewritten.functions {
        opt.block(&mut f.body);
    }
    (rewritten, opt.stats)
}

/// AST-rewriting state for [`optimize_ast`].
struct AstOpt<'a> {
    program: &'a Program,
    analysis: &'a Analysis,
    /// Compiling untraced (`TraceMode::Off`)?
    off: bool,
    /// Statement spans of elidable dead stores (empty in traced modes).
    dead: HashSet<(usize, usize)>,
    stats: OptStats,
}

impl AstOpt<'_> {
    /// Mirrors the compiler's call dispatch: user functions shadow
    /// builtins, `au_*` names never resolve to user functions.
    fn is_user_call(&self, name: &str) -> bool {
        !name.starts_with("au_") && self.program.function(name).is_some()
    }

    /// Does the subtree call a user-defined function? (Each statement of
    /// a callee bumps the step counter, so such subtrees never fold.)
    fn has_user_call(&self, e: &Expr) -> bool {
        match &e.kind {
            ExprKind::Num(_) | ExprKind::Bool(_) | ExprKind::Str(_) | ExprKind::Var(_) => false,
            ExprKind::Array(items) => items.iter().any(|i| self.has_user_call(i)),
            ExprKind::Index(a, b) => self.has_user_call(a) || self.has_user_call(b),
            ExprKind::Unary { expr, .. } => self.has_user_call(expr),
            ExprKind::Binary { lhs, rhs, .. } => self.has_user_call(lhs) || self.has_user_call(rhs),
            ExprKind::Call { name, args } => {
                self.is_user_call(name) || args.iter().any(|a| self.has_user_call(a))
            }
        }
    }

    /// Does the subtree read any variable? (In traced modes a `Load`
    /// pushes the variable onto the dep stack; folding it away would
    /// shrink recorded dep sets.)
    fn has_var(e: &Expr) -> bool {
        match &e.kind {
            ExprKind::Var(_) => true,
            ExprKind::Num(_) | ExprKind::Bool(_) | ExprKind::Str(_) => false,
            ExprKind::Array(items) => items.iter().any(Self::has_var),
            ExprKind::Index(a, b) => Self::has_var(a) || Self::has_var(b),
            ExprKind::Unary { expr, .. } => Self::has_var(expr),
            ExprKind::Binary { lhs, rhs, .. } => Self::has_var(lhs) || Self::has_var(rhs),
            ExprKind::Call { args, .. } => args.iter().any(Self::has_var),
        }
    }

    /// The literal this expression may legally be replaced with, if any.
    fn foldable(&self, e: &Expr) -> Option<Folded> {
        let f = *self.analysis.folds.get(&(e.span.start, e.span.end))?;
        if self.has_user_call(e) {
            return None;
        }
        if !self.off && Self::has_var(e) {
            return None;
        }
        Some(f)
    }

    fn expr(&mut self, e: &mut Expr) {
        if let Some(f) = self.foldable(e) {
            e.kind = match f {
                Folded::Num(n) => ExprKind::Num(n),
                Folded::Bool(b) => ExprKind::Bool(b),
            };
            self.stats.folded += 1;
            return;
        }
        match &mut e.kind {
            ExprKind::Num(_) | ExprKind::Bool(_) | ExprKind::Str(_) | ExprKind::Var(_) => {}
            ExprKind::Array(items) => {
                for item in items {
                    self.expr(item);
                }
            }
            ExprKind::Index(a, b) => {
                self.expr(a);
                self.expr(b);
            }
            ExprKind::Unary { expr, .. } => self.expr(expr),
            ExprKind::Binary { lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
            }
            ExprKind::Call { args, .. } => {
                for arg in args {
                    self.expr(arg);
                }
            }
        }
    }

    fn block(&mut self, stmts: &mut [Stmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &mut Stmt) {
        let span = (s.span.start, s.span.end);
        match &mut s.kind {
            StmtKind::Let { init: value, .. } | StmtKind::Assign { value, .. } => {
                if self.off && self.dead.contains(&span) && !self.has_user_call(value) {
                    value.kind = ExprKind::Num(0.0);
                    self.stats.dead_stores += 1;
                } else {
                    self.expr(value);
                }
            }
            StmtKind::AssignIndex { index, value, .. } => {
                self.expr(index);
                self.expr(value);
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                self.expr(cond);
                if matches!(cond.kind, ExprKind::Bool(_)) {
                    self.stats.pruned_branches += 1;
                }
                self.block(then_body);
                self.block(else_body);
            }
            StmtKind::While { cond, body } => {
                self.expr(cond);
                if matches!(cond.kind, ExprKind::Bool(_)) {
                    self.stats.pruned_branches += 1;
                }
                self.block(body);
            }
            StmtKind::Return(Some(e)) | StmtKind::Expr(e) => self.expr(e),
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
        }
    }
}

/// The peephole pass: fuses `Load a; Load b; Bin`, `Load; Const; Bin`,
/// and `Const; Bin` sequences into single superinstructions.
///
/// A window is fused only when no interior instruction is a jump target
/// (static targets: `Jump` / `BranchFalse` / `ShortCircuit` destinations
/// and function entries — `Call` return addresses are computed at
/// runtime in the rewritten index space, so they need no barrier). All
/// jump fields and function entries are remapped afterwards. Returns the
/// number of windows fused.
fn fuse_superinstructions(prog: &mut CompiledProgram) -> usize {
    let n = prog.ops.len();
    let mut is_target = vec![false; n + 1];
    for op in &prog.ops {
        match *op {
            Op::Jump(t) => is_target[t as usize] = true,
            Op::BranchFalse { target, .. } => is_target[target as usize] = true,
            Op::ShortCircuit { skip, .. } => is_target[skip as usize] = true,
            _ => {}
        }
    }
    for f in &prog.funcs {
        is_target[f.entry as usize] = true;
    }
    let mut out: Vec<Op> = Vec::with_capacity(n);
    let mut map = vec![0u32; n + 1];
    let mut fused = 0usize;
    let mut i = 0usize;
    while i < n {
        let at = out.len() as u32;
        if i + 2 < n && !is_target[i + 1] && !is_target[i + 2] {
            if let (Op::Load(a), Op::Load(b), Op::Bin(op)) =
                (prog.ops[i], prog.ops[i + 1], prog.ops[i + 2])
            {
                map[i] = at;
                map[i + 1] = at;
                map[i + 2] = at;
                out.push(Op::LoadLoadBin { a, b, op });
                fused += 1;
                i += 3;
                continue;
            }
            if let (Op::Load(slot), Op::Const(cidx), Op::Bin(op)) =
                (prog.ops[i], prog.ops[i + 1], prog.ops[i + 2])
            {
                map[i] = at;
                map[i + 1] = at;
                map[i + 2] = at;
                out.push(Op::LoadConstBin { slot, cidx, op });
                fused += 1;
                i += 3;
                continue;
            }
        }
        if i + 1 < n && !is_target[i + 1] {
            if let (Op::Const(cidx), Op::Bin(op)) = (prog.ops[i], prog.ops[i + 1]) {
                map[i] = at;
                map[i + 1] = at;
                out.push(Op::ConstBin { cidx, op });
                fused += 1;
                i += 2;
                continue;
            }
        }
        map[i] = at;
        out.push(prog.ops[i]);
        i += 1;
    }
    map[n] = out.len() as u32;
    for op in &mut out {
        match op {
            Op::Jump(t) => *t = map[*t as usize],
            Op::BranchFalse { target, .. } => *target = map[*target as usize],
            Op::ShortCircuit { skip, .. } => *skip = map[*skip as usize],
            _ => {}
        }
    }
    for f in &mut prog.funcs {
        f.entry = map[f.entry as usize];
    }
    prog.ops = out;
    fused
}

/// True when the program uses a computed (non-literal) name in `input`,
/// `mark_input`, or `mark_target` — the static target/input sets can then
/// under-approximate the dynamic ones, so Selective must fall back to Full.
fn selective_defeated(program: &Program) -> bool {
    fn expr_defeats(expr: &Expr) -> bool {
        match &expr.kind {
            ExprKind::Num(_) | ExprKind::Bool(_) | ExprKind::Str(_) | ExprKind::Var(_) => false,
            ExprKind::Array(items) => items.iter().any(expr_defeats),
            ExprKind::Index(a, b) => expr_defeats(a) || expr_defeats(b),
            ExprKind::Unary { expr, .. } => expr_defeats(expr),
            ExprKind::Binary { lhs, rhs, .. } => expr_defeats(lhs) || expr_defeats(rhs),
            ExprKind::Call { name, args } => {
                if matches!(name.as_str(), "input" | "mark_input" | "mark_target")
                    && !matches!(args.first().map(|a| &a.kind), Some(ExprKind::Str(_)))
                {
                    return true;
                }
                args.iter().any(expr_defeats)
            }
        }
    }
    fn stmt_defeats(stmt: &Stmt) -> bool {
        match &stmt.kind {
            StmtKind::Let { init: e, .. }
            | StmtKind::Assign { value: e, .. }
            | StmtKind::Expr(e)
            | StmtKind::Return(Some(e)) => expr_defeats(e),
            StmtKind::AssignIndex { index, value, .. } => {
                expr_defeats(index) || expr_defeats(value)
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                expr_defeats(cond)
                    || then_body.iter().any(stmt_defeats)
                    || else_body.iter().any(stmt_defeats)
            }
            StmtKind::While { cond, body } => expr_defeats(cond) || body.iter().any(stmt_defeats),
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => false,
        }
    }
    program
        .functions
        .iter()
        .any(|f| f.body.iter().any(stmt_defeats))
}

/// Static-filter context for Selective compiles.
struct SelectiveCtx {
    filter: StaticFilter,
    targets: Vec<String>,
    summaries: BTreeMap<String, BTreeSet<String>>,
    memo: HashMap<String, bool>,
    /// Variables `absint` proved constant (optimized compiles only):
    /// constant features are dead weight in θ, so their trace sites are
    /// elided even when the dependence graph cannot rule them out.
    constants: HashSet<String>,
    /// Count of constant variables whose instrumentation was elided.
    elided: usize,
}

impl SelectiveCtx {
    /// A name is relevant unless the filter proves it unrelated to *every*
    /// prediction target (unknown names are conservatively relevant), or
    /// the optimizer proved it constant.
    fn is_relevant(&mut self, name: &str) -> bool {
        if let Some(&v) = self.memo.get(name) {
            return v;
        }
        let related = self
            .targets
            .iter()
            .any(|t| !self.filter.proves_unrelated(name, t));
        let v = related && !self.constants.contains(name);
        if related && !v {
            self.elided += 1;
        }
        self.memo.insert(name.to_owned(), v);
        v
    }

    fn any_relevant(&mut self, names: &BTreeSet<String>) -> bool {
        let mut any = false;
        for n in names {
            if self.is_relevant(n) {
                any = true;
            }
        }
        any
    }
}

/// Per-function compile state: the lexical scope stack and loop labels.
struct FnCtx {
    /// Scope stack; each scope is `(name, slot)` in declaration order with
    /// same-name redeclaration replacing the earlier entry.
    scopes: Vec<Vec<(String, u16)>>,
    slot_names: Vec<String>,
    loops: Vec<LoopCtx>,
}

struct LoopCtx {
    start: u32,
    breaks: Vec<usize>,
}

impl FnCtx {
    fn new() -> Self {
        FnCtx {
            scopes: vec![Vec::new()],
            slot_names: Vec::new(),
            loops: Vec::new(),
        }
    }

    /// Allocates a fresh slot for `name` in the innermost scope.
    fn declare(&mut self, name: &str) -> u16 {
        let slot = self.slot_names.len() as u16;
        self.slot_names.push(name.to_owned());
        let scope = self.scopes.last_mut().expect("scope");
        match scope.iter_mut().find(|(n, _)| n == name) {
            Some(entry) => entry.1 = slot,
            None => scope.push((name.to_owned(), slot)),
        }
        slot
    }

    /// Innermost-first lookup, mirroring the interpreter's scope chain.
    fn resolve(&self, name: &str) -> Option<u16> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.iter().find(|(n, _)| n == name).map(|&(_, slot)| slot))
    }
}

struct Compiler<'p> {
    program: &'p Program,
    mode: TraceMode,
    /// Optimized compile: branch-prune statements whose condition is a
    /// boolean literal (the AST optimizer has already proven/folded
    /// constant conditions down to literals).
    optimize: bool,
    selective: Option<SelectiveCtx>,
    ops: Vec<Op>,
    consts: Vec<Value>,
    names: Vec<String>,
    name_ids: HashMap<String, u32>,
    msgs: Vec<String>,
    msg_ids: HashMap<String, u32>,
    live_sets: Vec<Vec<(u16, u32)>>,
    funcs: Vec<FuncInfo>,
    func_ids: HashMap<String, u16>,
    /// Name id of the function currently being compiled (for `break` /
    /// `continue` error messages).
    compiling_name: u32,
}

impl<'p> Compiler<'p> {
    // -- pools ----------------------------------------------------------

    fn name_id(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.name_ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.name_ids.insert(name.to_owned(), id);
        id
    }

    fn msg_id(&mut self, msg: &str) -> u32 {
        if let Some(&id) = self.msg_ids.get(msg) {
            return id;
        }
        let id = self.msgs.len() as u32;
        self.msgs.push(msg.to_owned());
        self.msg_ids.insert(msg.to_owned(), id);
        id
    }

    fn const_id(&mut self, v: Value) -> u32 {
        self.consts.push(v);
        (self.consts.len() - 1) as u32
    }

    /// Captures the variables currently in scope as a live set (for
    /// checkpoint snapshots at this site). Outer-to-inner order, so
    /// name-based flattening picks the innermost binding.
    fn live_id(&mut self, ctx: &FnCtx) -> u32 {
        let mut entries: Vec<(u16, u32)> = Vec::new();
        for scope in &ctx.scopes {
            for (name, slot) in scope {
                let id = self.name_id(name);
                entries.push((*slot, id));
            }
        }
        if entries.is_empty() {
            return 0;
        }
        self.live_sets.push(entries);
        (self.live_sets.len() - 1) as u32
    }

    // -- emission helpers ----------------------------------------------

    fn emit(&mut self, op: Op) -> usize {
        self.ops.push(op);
        self.ops.len() - 1
    }

    fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    fn patch(&mut self, at: usize) {
        let target = self.here();
        match &mut self.ops[at] {
            Op::Jump(t) => *t = target,
            Op::BranchFalse { target: t, .. } => *t = target,
            Op::ShortCircuit { skip, .. } => *skip = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn fail(&mut self, msg: &str) {
        let m = self.msg_id(msg);
        self.emit(Op::Fail(m));
    }

    fn ensure_str(&mut self, builtin: &str) {
        let m = self.msg_id(&format!("`{builtin}` expects a string literal argument"));
        self.emit(Op::EnsureStr(m));
    }

    // -- trace-site decisions ------------------------------------------

    fn may_deps(&self, expr: &Expr) -> BTreeSet<String> {
        let sel = self.selective.as_ref().expect("selective mode");
        static_analysis::expr_may_deps(expr, self.program, &sel.summaries)
    }

    /// How to instrument an assignment of `rhs` into `dst`.
    fn assign_trace_kind(
        &mut self,
        dst: &str,
        may: impl FnOnce(&Self) -> BTreeSet<String>,
    ) -> TraceKind {
        match self.mode {
            TraceMode::Off => TraceKind::None,
            TraceMode::Full => TraceKind::Assign,
            TraceMode::Selective => {
                if self.selective.as_mut().expect("selective").is_relevant(dst) {
                    TraceKind::Assign
                } else {
                    let names = may(self);
                    if self
                        .selective
                        .as_mut()
                        .expect("selective")
                        .any_relevant(&names)
                    {
                        TraceKind::Uses
                    } else {
                        TraceKind::None
                    }
                }
            }
        }
    }

    /// Emits the trace prologue for a `let`/`assign` site (after the RHS
    /// value is on the stack, before the store — the interpreter's order).
    fn emit_assign_trace(&mut self, dst: &str, rhs: &Expr) {
        let kind = self.assign_trace_kind(dst, |c| c.may_deps(rhs));
        match kind {
            TraceKind::None => {}
            TraceKind::Assign => {
                if is_write_back_call(rhs) {
                    let id = self.name_id(dst);
                    self.emit(Op::MarkTargetName(id));
                }
                let id = self.name_id(dst);
                self.emit(Op::TraceAssign { name: id });
            }
            TraceKind::Uses => {
                self.emit(Op::NoteUses);
            }
        }
    }

    /// Emits a use-note for a condition expression when the mode calls for
    /// it (the dep set is on top of the dep stack).
    fn emit_cond_note(&mut self, cond: &Expr) {
        match self.mode {
            TraceMode::Off => {}
            TraceMode::Full => {
                self.emit(Op::NoteUses);
            }
            TraceMode::Selective => {
                let may = self.may_deps(cond);
                if self
                    .selective
                    .as_mut()
                    .expect("selective")
                    .any_relevant(&may)
                {
                    self.emit(Op::NoteUses);
                }
            }
        }
    }

    // -- functions ------------------------------------------------------

    fn compile_function(&mut self, f: &Function, idx: u16) {
        self.compiling_name = self.funcs[idx as usize].name;
        let entry = self.here();
        let mut ctx = FnCtx::new();
        let mut params = Vec::with_capacity(f.params.len());
        for p in &f.params {
            ctx.declare(p);
            params.push(self.name_id(p));
        }
        self.compile_block(&f.body, &mut ctx);
        self.emit(Op::RetUnit);
        let slot_names = ctx
            .slot_names
            .iter()
            .map(|n| self.name_id(n))
            .collect::<Vec<_>>();
        let fi = &mut self.funcs[idx as usize];
        fi.params = params;
        fi.entry = entry;
        fi.nlocals = ctx.slot_names.len() as u16;
        fi.slot_names = slot_names;
    }

    fn compile_block(&mut self, stmts: &[Stmt], ctx: &mut FnCtx) {
        ctx.scopes.push(Vec::new());
        for stmt in stmts {
            self.compile_stmt(stmt, ctx);
        }
        ctx.scopes.pop();
    }

    fn compile_stmt(&mut self, stmt: &Stmt, ctx: &mut FnCtx) {
        self.emit(Op::Step);
        match &stmt.kind {
            StmtKind::Let { name, init } => {
                self.compile_expr(init, ctx);
                self.emit_assign_trace(name, init);
                let slot = ctx.declare(name);
                self.emit(Op::Store(slot));
            }
            StmtKind::Assign { name, value } => {
                self.compile_expr(value, ctx);
                self.emit_assign_trace(name, value);
                match ctx.resolve(name) {
                    Some(slot) => {
                        self.emit(Op::Store(slot));
                    }
                    None => self.fail(&format!("assignment to undefined variable `{name}`")),
                }
            }
            StmtKind::AssignIndex { name, index, value } => {
                self.compile_expr(index, ctx);
                self.compile_expr(value, ctx);
                let trace = self.assign_trace_kind(name, |c| {
                    let mut may = c.may_deps(index);
                    may.extend(c.may_deps(value));
                    may.insert(name.clone());
                    may
                });
                let nid = self.name_id(name);
                match ctx.resolve(name) {
                    Some(slot) => self.emit(Op::StoreIndex {
                        slot,
                        name: nid,
                        trace,
                    }),
                    None => self.emit(Op::StoreIndexUndef { name: nid, trace }),
                };
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                // Optimized compile: a literal condition contributes no
                // deps and cannot fail the boolean check, so only the
                // taken branch is emitted (the statement `Step` above is
                // preserved, matching the interpreter's step count).
                if self.optimize {
                    if let ExprKind::Bool(b) = cond.kind {
                        self.compile_block(if b { then_body } else { else_body }, ctx);
                        return;
                    }
                }
                self.compile_expr(cond, ctx);
                self.emit_cond_note(cond);
                let msg = self.msg_id("if condition must be boolean");
                let bf = self.emit(Op::BranchFalse { target: 0, msg });
                self.compile_block(then_body, ctx);
                let j = self.emit(Op::Jump(0));
                self.patch(bf);
                self.compile_block(else_body, ctx);
                self.patch(j);
            }
            StmtKind::While { cond, body } => {
                if self.optimize {
                    if let ExprKind::Bool(b) = cond.kind {
                        if !b {
                            return; // never entered: the Step alone
                        }
                        // `while (true)`: no condition re-evaluation.
                        // `continue` jumps to the body start; `break`
                        // still patches past the loop.
                        let start = self.here();
                        ctx.loops.push(LoopCtx {
                            start,
                            breaks: Vec::new(),
                        });
                        self.compile_block(body, ctx);
                        self.emit(Op::Jump(start));
                        let done = ctx.loops.pop().expect("loop ctx");
                        for b in done.breaks {
                            self.patch(b);
                        }
                        return;
                    }
                }
                let start = self.here();
                self.compile_expr(cond, ctx);
                self.emit_cond_note(cond);
                let msg = self.msg_id("while condition must be boolean");
                let bf = self.emit(Op::BranchFalse { target: 0, msg });
                ctx.loops.push(LoopCtx {
                    start,
                    breaks: Vec::new(),
                });
                self.compile_block(body, ctx);
                self.emit(Op::Jump(start));
                let done = ctx.loops.pop().expect("loop ctx");
                self.patch(bf);
                for b in done.breaks {
                    self.patch(b);
                }
            }
            StmtKind::Return(Some(e)) => {
                self.compile_expr(e, ctx);
                self.emit(Op::Ret);
            }
            StmtKind::Return(None) => {
                self.emit(Op::RetUnit);
            }
            StmtKind::Break => {
                if ctx.loops.is_empty() {
                    let fname = self.current_fn_name(ctx);
                    self.fail(&format!(
                        "`break`/`continue` outside a loop in function `{fname}`"
                    ));
                } else {
                    let j = self.emit(Op::Jump(0));
                    ctx.loops.last_mut().expect("loop").breaks.push(j);
                }
            }
            StmtKind::Continue => {
                if ctx.loops.is_empty() {
                    let fname = self.current_fn_name(ctx);
                    self.fail(&format!(
                        "`break`/`continue` outside a loop in function `{fname}`"
                    ));
                } else {
                    let start = ctx.loops.last().expect("loop").start;
                    self.emit(Op::Jump(start));
                }
            }
            StmtKind::Expr(e) => {
                self.compile_expr(e, ctx);
                self.emit(Op::Pop);
            }
        }
    }

    /// Name of the function currently being compiled (for error messages).
    fn current_fn_name(&self, _ctx: &FnCtx) -> String {
        self.names[self.compiling_name as usize].clone()
    }

    // -- expressions ----------------------------------------------------

    fn compile_expr(&mut self, expr: &Expr, ctx: &mut FnCtx) {
        match &expr.kind {
            ExprKind::Num(n) => {
                let c = self.const_id(Value::Num(*n));
                self.emit(Op::Const(c));
            }
            ExprKind::Bool(b) => {
                let c = self.const_id(Value::Bool(*b));
                self.emit(Op::Const(c));
            }
            ExprKind::Str(s) => {
                let c = self.const_id(Value::Str(s.clone()));
                self.emit(Op::Const(c));
            }
            ExprKind::Var(name) => match ctx.resolve(name) {
                Some(slot) => {
                    self.emit(Op::Load(slot));
                }
                None => self.fail(&format!("undefined variable `{name}`")),
            },
            ExprKind::Array(items) => {
                for item in items {
                    self.compile_expr(item, ctx);
                }
                self.emit(Op::MakeArray(items.len() as u16));
            }
            ExprKind::Index(target, index) => {
                self.compile_expr(target, ctx);
                self.compile_expr(index, ctx);
                self.emit(Op::IndexGet);
            }
            ExprKind::Unary { op, expr } => {
                self.compile_expr(expr, ctx);
                self.emit(match op {
                    crate::ast::UnOp::Neg => Op::Neg,
                    crate::ast::UnOp::Not => Op::Not,
                });
            }
            ExprKind::Binary { op, lhs, rhs } => match op {
                BinOp::And | BinOp::Or => {
                    self.compile_expr(lhs, ctx);
                    let probe = self.emit(Op::ShortCircuit {
                        is_and: *op == BinOp::And,
                        skip: 0,
                    });
                    self.compile_expr(rhs, ctx);
                    self.emit(Op::LogicalRhs);
                    self.patch(probe);
                }
                _ => {
                    self.compile_expr(lhs, ctx);
                    self.compile_expr(rhs, ctx);
                    self.emit(Op::Bin(*op));
                }
            },
            ExprKind::Call { name, args } => self.compile_call(name, args, ctx),
        }
    }

    fn compile_call(&mut self, name: &str, args: &[Expr], ctx: &mut FnCtx) {
        if !name.starts_with("au_") {
            if let Some(&fidx) = self.func_ids.get(name) {
                for arg in args {
                    self.compile_expr(arg, ctx);
                }
                let arity = self
                    .program
                    .function(name)
                    .expect("registered function")
                    .params
                    .len();
                if args.len() != arity {
                    self.fail(&format!(
                        "function `{name}` expects {arity} arguments, got {}",
                        args.len()
                    ));
                } else {
                    let live = self.live_id(ctx);
                    self.emit(Op::Call { func: fidx, live });
                }
                return;
            }
        }
        self.compile_builtin(name, args, ctx);
    }

    /// Emits the interpreter's fixed-arity check: the error fires *before*
    /// any argument is evaluated, so it compiles to a bare `Fail`.
    fn check_arity(&mut self, name: &str, args: &[Expr], n: usize) -> bool {
        if args.len() == n {
            true
        } else {
            self.fail(&format!(
                "`{name}` expects {n} arguments, got {}",
                args.len()
            ));
            false
        }
    }

    fn compile_builtin(&mut self, name: &str, args: &[Expr], ctx: &mut FnCtx) {
        match name {
            "au_config" => {
                if args.len() < 4 {
                    self.fail("`au_config` needs model, type, algorithm, layer count");
                    return;
                }
                for arg in &args[..3] {
                    self.compile_expr(arg, ctx);
                    self.ensure_str("au_config");
                }
                self.compile_expr(&args[3], ctx);
                self.emit(Op::AuConfigCheck {
                    argc: args.len() as u16,
                });
                let layer_msg = self.msg_id("layer size must be a number");
                for arg in &args[4..] {
                    self.compile_expr(arg, ctx);
                    self.emit(Op::EnsureNum(layer_msg));
                }
                self.emit(Op::AuConfig {
                    layers: (args.len() - 4) as u16,
                });
            }
            "au_extract" => {
                if !self.check_arity(name, args, 2) {
                    return;
                }
                self.compile_expr(&args[0], ctx);
                self.ensure_str(name);
                self.compile_expr(&args[1], ctx);
                self.emit(Op::AuExtract);
            }
            "au_serialize" => {
                for arg in args {
                    self.compile_expr(arg, ctx);
                    self.ensure_str(name);
                }
                self.emit(Op::AuSerialize {
                    argc: args.len() as u16,
                });
            }
            "au_nn" => {
                if args.len() < 3 {
                    self.fail("`au_nn` needs model, ext, and at least one wb name");
                    return;
                }
                for arg in args {
                    self.compile_expr(arg, ctx);
                    self.ensure_str(name);
                }
                self.emit(Op::AuNn {
                    argc: args.len() as u16,
                });
            }
            "au_nn_rl" => {
                if !self.check_arity(name, args, 6) {
                    return;
                }
                self.compile_expr(&args[0], ctx);
                self.ensure_str(name);
                self.compile_expr(&args[1], ctx);
                self.ensure_str(name);
                self.compile_expr(&args[2], ctx);
                self.compile_expr(&args[3], ctx);
                self.compile_expr(&args[4], ctx);
                self.ensure_str(name);
                self.compile_expr(&args[5], ctx);
                self.emit(Op::AuNnRl);
            }
            "au_write_back" => {
                if !self.check_arity(name, args, 1) {
                    return;
                }
                self.compile_expr(&args[0], ctx);
                self.ensure_str(name);
                self.emit(Op::AuWriteBack);
            }
            "au_write_back_n" => {
                if !self.check_arity(name, args, 2) {
                    return;
                }
                self.compile_expr(&args[0], ctx);
                self.ensure_str(name);
                self.compile_expr(&args[1], ctx);
                self.emit(Op::AuWriteBackN);
            }
            "au_checkpoint" => {
                if !self.check_arity(name, args, 0) {
                    return;
                }
                let live = self.live_id(ctx);
                self.emit(Op::AuCheckpoint { live });
            }
            "au_restore" => {
                if !self.check_arity(name, args, 0) {
                    return;
                }
                let live = self.live_id(ctx);
                self.emit(Op::AuRestore { live });
            }
            "mark_input" => {
                if !self.check_arity(name, args, 1) {
                    return;
                }
                self.compile_expr(&args[0], ctx);
                self.ensure_str(name);
                self.emit(Op::MarkInput);
            }
            "mark_target" => {
                if !self.check_arity(name, args, 1) {
                    return;
                }
                self.compile_expr(&args[0], ctx);
                self.ensure_str(name);
                self.emit(Op::MarkTarget);
            }
            "input" => {
                if !self.check_arity(name, args, 2) {
                    return;
                }
                self.compile_expr(&args[0], ctx);
                self.ensure_str(name);
                self.compile_expr(&args[1], ctx);
                // Pre-intern literal keys so traced runs use a pooled id
                // with a precomputed relevance bit.
                if let ExprKind::Str(key) = &args[0].kind {
                    self.name_id(key);
                }
                self.emit(Op::Input);
            }
            "print" => {
                for arg in args {
                    self.compile_expr(arg, ctx);
                }
                self.emit(Op::Print(args.len() as u16));
            }
            "len" => {
                if !self.check_arity(name, args, 1) {
                    return;
                }
                self.compile_expr(&args[0], ctx);
                self.emit(Op::Len);
            }
            "append" => {
                if !self.check_arity(name, args, 2) {
                    return;
                }
                self.compile_expr(&args[0], ctx);
                self.compile_expr(&args[1], ctx);
                self.emit(Op::Append);
            }
            "floor" | "abs" | "sqrt" | "sin" | "cos" | "exp" => {
                if !self.check_arity(name, args, 1) {
                    return;
                }
                self.compile_expr(&args[0], ctx);
                let f = match name {
                    "floor" => MathFn::Floor,
                    "abs" => MathFn::Abs,
                    "sqrt" => MathFn::Sqrt,
                    "sin" => MathFn::Sin,
                    "cos" => MathFn::Cos,
                    _ => MathFn::Exp,
                };
                self.emit(Op::Math1(f));
            }
            "min" | "max" => {
                if !self.check_arity(name, args, 2) {
                    return;
                }
                self.compile_expr(&args[0], ctx);
                self.compile_expr(&args[1], ctx);
                self.emit(Op::Math2 {
                    is_min: name == "min",
                });
            }
            "rand" => {
                if !self.check_arity(name, args, 0) {
                    return;
                }
                self.emit(Op::Rand);
            }
            other => self.fail(&format!("unknown function `{other}`")),
        }
    }
}

/// True for RHS calls that designate their destination as a target.
fn is_write_back_call(rhs: &Expr) -> bool {
    matches!(
        &rhs.kind,
        ExprKind::Call { name, .. }
            if name == "au_write_back" || name == "au_write_back_n" || name == "au_nn_rl"
    )
}
