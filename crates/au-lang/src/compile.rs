//! The AuLang AST → bytecode compiler.
//!
//! Lowers a parsed [`Program`] into a [`CompiledProgram`] for the VM in
//! `vm.rs`. The compiler resolves every variable reference to a
//! frame-relative slot at compile time (lexical scoping matches the
//! interpreter's innermost-first `HashMap` chain exactly, because block
//! control flow is strictly sequential), pre-formats every statically
//! determined error message, and — in traced modes — decides *per site*
//! whether to emit trace opcodes.
//!
//! In [`TraceMode::Selective`] the decision consults the static dependence
//! graph: a site is instrumented only if the assigned variable (or, for
//! condition/use sites, some possibly-read variable) cannot be proven
//! unrelated to every prediction target by [`StaticFilter`]. Programs that
//! defeat the static analysis (computed `input` / `mark_input` /
//! `mark_target` names) fall back to [`TraceMode::Full`] so dynamic
//! extraction never silently loses facts.

use crate::ast::{BinOp, Expr, ExprKind, Function, Program, Stmt, StmtKind};
use crate::bytecode::{CompiledProgram, FuncInfo, MathFn, Op, TraceKind, TraceMode};
use crate::static_analysis;
use crate::value::Value;
use au_trace::StaticFilter;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Compiles `program` under the requested trace mode.
///
/// Compilation is infallible: statically detectable runtime errors
/// (undefined variables, unknown functions, arity mismatches) compile to
/// `Fail` opcodes that reproduce the interpreter's error message at the
/// same execution point, preserving lazy error semantics.
pub fn compile_program(program: &Program, requested: TraceMode) -> CompiledProgram {
    let _t = t_time!("au_lang.vm.compile");
    let effective = match requested {
        TraceMode::Selective if selective_defeated(program) => TraceMode::Full,
        mode => mode,
    };
    let selective = match effective {
        TraceMode::Selective => {
            let static_db = static_analysis::analyze(program);
            let targets = static_db
                .targets()
                .iter()
                .map(|&t| static_db.name(t).to_owned())
                .collect();
            Some(SelectiveCtx {
                filter: StaticFilter::new(&static_db),
                targets,
                summaries: static_analysis::return_summaries(program),
                memo: HashMap::new(),
            })
        }
        _ => None,
    };
    let mut c = Compiler {
        program,
        mode: effective,
        selective,
        ops: Vec::new(),
        consts: Vec::new(),
        names: Vec::new(),
        name_ids: HashMap::new(),
        msgs: Vec::new(),
        msg_ids: HashMap::new(),
        live_sets: vec![Vec::new()], // id 0 = the empty live set
        funcs: Vec::new(),
        func_ids: HashMap::new(),
        compiling_name: 0,
    };
    // Pass 1: register every function (first definition wins, matching
    // `Program::function`) so calls can resolve forward references.
    for f in &program.functions {
        if !c.func_ids.contains_key(&f.name) {
            let idx = c.funcs.len() as u16;
            c.func_ids.insert(f.name.clone(), idx);
            let name = c.name_id(&f.name);
            c.funcs.push(FuncInfo {
                name,
                params: Vec::new(),
                entry: 0,
                nlocals: 0,
                slot_names: Vec::new(),
            });
        }
    }
    // Pass 2: compile each registered body.
    let mut compiled: Vec<bool> = vec![false; c.funcs.len()];
    for f in &program.functions {
        let idx = c.func_ids[&f.name];
        if compiled[idx as usize] {
            continue; // duplicate definition is unreachable, skip
        }
        compiled[idx as usize] = true;
        c.compile_function(f, idx);
    }
    let main_func = c.func_ids["main"];
    let relevant = {
        let names: Vec<String> = c.names.clone();
        names
            .iter()
            .map(|n| match c.selective.as_mut() {
                Some(sel) => sel.is_relevant(n),
                None => true,
            })
            .collect()
    };
    CompiledProgram {
        ops: c.ops,
        consts: c.consts,
        names: c.names,
        msgs: c.msgs,
        funcs: c.funcs,
        live_sets: c.live_sets,
        main_func,
        requested,
        effective,
        relevant,
    }
}

/// True when the program uses a computed (non-literal) name in `input`,
/// `mark_input`, or `mark_target` — the static target/input sets can then
/// under-approximate the dynamic ones, so Selective must fall back to Full.
fn selective_defeated(program: &Program) -> bool {
    fn expr_defeats(expr: &Expr) -> bool {
        match &expr.kind {
            ExprKind::Num(_) | ExprKind::Bool(_) | ExprKind::Str(_) | ExprKind::Var(_) => false,
            ExprKind::Array(items) => items.iter().any(expr_defeats),
            ExprKind::Index(a, b) => expr_defeats(a) || expr_defeats(b),
            ExprKind::Unary { expr, .. } => expr_defeats(expr),
            ExprKind::Binary { lhs, rhs, .. } => expr_defeats(lhs) || expr_defeats(rhs),
            ExprKind::Call { name, args } => {
                if matches!(name.as_str(), "input" | "mark_input" | "mark_target")
                    && !matches!(args.first().map(|a| &a.kind), Some(ExprKind::Str(_)))
                {
                    return true;
                }
                args.iter().any(expr_defeats)
            }
        }
    }
    fn stmt_defeats(stmt: &Stmt) -> bool {
        match &stmt.kind {
            StmtKind::Let { init: e, .. }
            | StmtKind::Assign { value: e, .. }
            | StmtKind::Expr(e)
            | StmtKind::Return(Some(e)) => expr_defeats(e),
            StmtKind::AssignIndex { index, value, .. } => {
                expr_defeats(index) || expr_defeats(value)
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                expr_defeats(cond)
                    || then_body.iter().any(stmt_defeats)
                    || else_body.iter().any(stmt_defeats)
            }
            StmtKind::While { cond, body } => expr_defeats(cond) || body.iter().any(stmt_defeats),
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => false,
        }
    }
    program
        .functions
        .iter()
        .any(|f| f.body.iter().any(stmt_defeats))
}

/// Static-filter context for Selective compiles.
struct SelectiveCtx {
    filter: StaticFilter,
    targets: Vec<String>,
    summaries: BTreeMap<String, BTreeSet<String>>,
    memo: HashMap<String, bool>,
}

impl SelectiveCtx {
    /// A name is relevant unless the filter proves it unrelated to *every*
    /// prediction target (unknown names are conservatively relevant).
    fn is_relevant(&mut self, name: &str) -> bool {
        if let Some(&v) = self.memo.get(name) {
            return v;
        }
        let v = self
            .targets
            .iter()
            .any(|t| !self.filter.proves_unrelated(name, t));
        self.memo.insert(name.to_owned(), v);
        v
    }

    fn any_relevant(&mut self, names: &BTreeSet<String>) -> bool {
        names.iter().any(|n| {
            if let Some(&v) = self.memo.get(n.as_str()) {
                return v;
            }
            let v = self
                .targets
                .iter()
                .any(|t| !self.filter.proves_unrelated(n, t));
            self.memo.insert(n.clone(), v);
            v
        })
    }
}

/// Per-function compile state: the lexical scope stack and loop labels.
struct FnCtx {
    /// Scope stack; each scope is `(name, slot)` in declaration order with
    /// same-name redeclaration replacing the earlier entry.
    scopes: Vec<Vec<(String, u16)>>,
    slot_names: Vec<String>,
    loops: Vec<LoopCtx>,
}

struct LoopCtx {
    start: u32,
    breaks: Vec<usize>,
}

impl FnCtx {
    fn new() -> Self {
        FnCtx {
            scopes: vec![Vec::new()],
            slot_names: Vec::new(),
            loops: Vec::new(),
        }
    }

    /// Allocates a fresh slot for `name` in the innermost scope.
    fn declare(&mut self, name: &str) -> u16 {
        let slot = self.slot_names.len() as u16;
        self.slot_names.push(name.to_owned());
        let scope = self.scopes.last_mut().expect("scope");
        match scope.iter_mut().find(|(n, _)| n == name) {
            Some(entry) => entry.1 = slot,
            None => scope.push((name.to_owned(), slot)),
        }
        slot
    }

    /// Innermost-first lookup, mirroring the interpreter's scope chain.
    fn resolve(&self, name: &str) -> Option<u16> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.iter().find(|(n, _)| n == name).map(|&(_, slot)| slot))
    }
}

struct Compiler<'p> {
    program: &'p Program,
    mode: TraceMode,
    selective: Option<SelectiveCtx>,
    ops: Vec<Op>,
    consts: Vec<Value>,
    names: Vec<String>,
    name_ids: HashMap<String, u32>,
    msgs: Vec<String>,
    msg_ids: HashMap<String, u32>,
    live_sets: Vec<Vec<(u16, u32)>>,
    funcs: Vec<FuncInfo>,
    func_ids: HashMap<String, u16>,
    /// Name id of the function currently being compiled (for `break` /
    /// `continue` error messages).
    compiling_name: u32,
}

impl<'p> Compiler<'p> {
    // -- pools ----------------------------------------------------------

    fn name_id(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.name_ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.name_ids.insert(name.to_owned(), id);
        id
    }

    fn msg_id(&mut self, msg: &str) -> u32 {
        if let Some(&id) = self.msg_ids.get(msg) {
            return id;
        }
        let id = self.msgs.len() as u32;
        self.msgs.push(msg.to_owned());
        self.msg_ids.insert(msg.to_owned(), id);
        id
    }

    fn const_id(&mut self, v: Value) -> u32 {
        self.consts.push(v);
        (self.consts.len() - 1) as u32
    }

    /// Captures the variables currently in scope as a live set (for
    /// checkpoint snapshots at this site). Outer-to-inner order, so
    /// name-based flattening picks the innermost binding.
    fn live_id(&mut self, ctx: &FnCtx) -> u32 {
        let mut entries: Vec<(u16, u32)> = Vec::new();
        for scope in &ctx.scopes {
            for (name, slot) in scope {
                let id = self.name_id(name);
                entries.push((*slot, id));
            }
        }
        if entries.is_empty() {
            return 0;
        }
        self.live_sets.push(entries);
        (self.live_sets.len() - 1) as u32
    }

    // -- emission helpers ----------------------------------------------

    fn emit(&mut self, op: Op) -> usize {
        self.ops.push(op);
        self.ops.len() - 1
    }

    fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    fn patch(&mut self, at: usize) {
        let target = self.here();
        match &mut self.ops[at] {
            Op::Jump(t) => *t = target,
            Op::BranchFalse { target: t, .. } => *t = target,
            Op::ShortCircuit { skip, .. } => *skip = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn fail(&mut self, msg: &str) {
        let m = self.msg_id(msg);
        self.emit(Op::Fail(m));
    }

    fn ensure_str(&mut self, builtin: &str) {
        let m = self.msg_id(&format!("`{builtin}` expects a string literal argument"));
        self.emit(Op::EnsureStr(m));
    }

    // -- trace-site decisions ------------------------------------------

    fn may_deps(&self, expr: &Expr) -> BTreeSet<String> {
        let sel = self.selective.as_ref().expect("selective mode");
        static_analysis::expr_may_deps(expr, self.program, &sel.summaries)
    }

    /// How to instrument an assignment of `rhs` into `dst`.
    fn assign_trace_kind(
        &mut self,
        dst: &str,
        may: impl FnOnce(&Self) -> BTreeSet<String>,
    ) -> TraceKind {
        match self.mode {
            TraceMode::Off => TraceKind::None,
            TraceMode::Full => TraceKind::Assign,
            TraceMode::Selective => {
                if self.selective.as_mut().expect("selective").is_relevant(dst) {
                    TraceKind::Assign
                } else {
                    let names = may(self);
                    if self
                        .selective
                        .as_mut()
                        .expect("selective")
                        .any_relevant(&names)
                    {
                        TraceKind::Uses
                    } else {
                        TraceKind::None
                    }
                }
            }
        }
    }

    /// Emits the trace prologue for a `let`/`assign` site (after the RHS
    /// value is on the stack, before the store — the interpreter's order).
    fn emit_assign_trace(&mut self, dst: &str, rhs: &Expr) {
        let kind = self.assign_trace_kind(dst, |c| c.may_deps(rhs));
        match kind {
            TraceKind::None => {}
            TraceKind::Assign => {
                if is_write_back_call(rhs) {
                    let id = self.name_id(dst);
                    self.emit(Op::MarkTargetName(id));
                }
                let id = self.name_id(dst);
                self.emit(Op::TraceAssign { name: id });
            }
            TraceKind::Uses => {
                self.emit(Op::NoteUses);
            }
        }
    }

    /// Emits a use-note for a condition expression when the mode calls for
    /// it (the dep set is on top of the dep stack).
    fn emit_cond_note(&mut self, cond: &Expr) {
        match self.mode {
            TraceMode::Off => {}
            TraceMode::Full => {
                self.emit(Op::NoteUses);
            }
            TraceMode::Selective => {
                let may = self.may_deps(cond);
                if self
                    .selective
                    .as_mut()
                    .expect("selective")
                    .any_relevant(&may)
                {
                    self.emit(Op::NoteUses);
                }
            }
        }
    }

    // -- functions ------------------------------------------------------

    fn compile_function(&mut self, f: &Function, idx: u16) {
        self.compiling_name = self.funcs[idx as usize].name;
        let entry = self.here();
        let mut ctx = FnCtx::new();
        let mut params = Vec::with_capacity(f.params.len());
        for p in &f.params {
            ctx.declare(p);
            params.push(self.name_id(p));
        }
        self.compile_block(&f.body, &mut ctx);
        self.emit(Op::RetUnit);
        let slot_names = ctx
            .slot_names
            .iter()
            .map(|n| self.name_id(n))
            .collect::<Vec<_>>();
        let fi = &mut self.funcs[idx as usize];
        fi.params = params;
        fi.entry = entry;
        fi.nlocals = ctx.slot_names.len() as u16;
        fi.slot_names = slot_names;
    }

    fn compile_block(&mut self, stmts: &[Stmt], ctx: &mut FnCtx) {
        ctx.scopes.push(Vec::new());
        for stmt in stmts {
            self.compile_stmt(stmt, ctx);
        }
        ctx.scopes.pop();
    }

    fn compile_stmt(&mut self, stmt: &Stmt, ctx: &mut FnCtx) {
        self.emit(Op::Step);
        match &stmt.kind {
            StmtKind::Let { name, init } => {
                self.compile_expr(init, ctx);
                self.emit_assign_trace(name, init);
                let slot = ctx.declare(name);
                self.emit(Op::Store(slot));
            }
            StmtKind::Assign { name, value } => {
                self.compile_expr(value, ctx);
                self.emit_assign_trace(name, value);
                match ctx.resolve(name) {
                    Some(slot) => {
                        self.emit(Op::Store(slot));
                    }
                    None => self.fail(&format!("assignment to undefined variable `{name}`")),
                }
            }
            StmtKind::AssignIndex { name, index, value } => {
                self.compile_expr(index, ctx);
                self.compile_expr(value, ctx);
                let trace = self.assign_trace_kind(name, |c| {
                    let mut may = c.may_deps(index);
                    may.extend(c.may_deps(value));
                    may.insert(name.clone());
                    may
                });
                let nid = self.name_id(name);
                match ctx.resolve(name) {
                    Some(slot) => self.emit(Op::StoreIndex {
                        slot,
                        name: nid,
                        trace,
                    }),
                    None => self.emit(Op::StoreIndexUndef { name: nid, trace }),
                };
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                self.compile_expr(cond, ctx);
                self.emit_cond_note(cond);
                let msg = self.msg_id("if condition must be boolean");
                let bf = self.emit(Op::BranchFalse { target: 0, msg });
                self.compile_block(then_body, ctx);
                let j = self.emit(Op::Jump(0));
                self.patch(bf);
                self.compile_block(else_body, ctx);
                self.patch(j);
            }
            StmtKind::While { cond, body } => {
                let start = self.here();
                self.compile_expr(cond, ctx);
                self.emit_cond_note(cond);
                let msg = self.msg_id("while condition must be boolean");
                let bf = self.emit(Op::BranchFalse { target: 0, msg });
                ctx.loops.push(LoopCtx {
                    start,
                    breaks: Vec::new(),
                });
                self.compile_block(body, ctx);
                self.emit(Op::Jump(start));
                let done = ctx.loops.pop().expect("loop ctx");
                self.patch(bf);
                for b in done.breaks {
                    self.patch(b);
                }
            }
            StmtKind::Return(Some(e)) => {
                self.compile_expr(e, ctx);
                self.emit(Op::Ret);
            }
            StmtKind::Return(None) => {
                self.emit(Op::RetUnit);
            }
            StmtKind::Break => {
                if ctx.loops.is_empty() {
                    let fname = self.current_fn_name(ctx);
                    self.fail(&format!(
                        "`break`/`continue` outside a loop in function `{fname}`"
                    ));
                } else {
                    let j = self.emit(Op::Jump(0));
                    ctx.loops.last_mut().expect("loop").breaks.push(j);
                }
            }
            StmtKind::Continue => {
                if ctx.loops.is_empty() {
                    let fname = self.current_fn_name(ctx);
                    self.fail(&format!(
                        "`break`/`continue` outside a loop in function `{fname}`"
                    ));
                } else {
                    let start = ctx.loops.last().expect("loop").start;
                    self.emit(Op::Jump(start));
                }
            }
            StmtKind::Expr(e) => {
                self.compile_expr(e, ctx);
                self.emit(Op::Pop);
            }
        }
    }

    /// Name of the function currently being compiled (for error messages).
    fn current_fn_name(&self, _ctx: &FnCtx) -> String {
        self.names[self.compiling_name as usize].clone()
    }

    // -- expressions ----------------------------------------------------

    fn compile_expr(&mut self, expr: &Expr, ctx: &mut FnCtx) {
        match &expr.kind {
            ExprKind::Num(n) => {
                let c = self.const_id(Value::Num(*n));
                self.emit(Op::Const(c));
            }
            ExprKind::Bool(b) => {
                let c = self.const_id(Value::Bool(*b));
                self.emit(Op::Const(c));
            }
            ExprKind::Str(s) => {
                let c = self.const_id(Value::Str(s.clone()));
                self.emit(Op::Const(c));
            }
            ExprKind::Var(name) => match ctx.resolve(name) {
                Some(slot) => {
                    self.emit(Op::Load(slot));
                }
                None => self.fail(&format!("undefined variable `{name}`")),
            },
            ExprKind::Array(items) => {
                for item in items {
                    self.compile_expr(item, ctx);
                }
                self.emit(Op::MakeArray(items.len() as u16));
            }
            ExprKind::Index(target, index) => {
                self.compile_expr(target, ctx);
                self.compile_expr(index, ctx);
                self.emit(Op::IndexGet);
            }
            ExprKind::Unary { op, expr } => {
                self.compile_expr(expr, ctx);
                self.emit(match op {
                    crate::ast::UnOp::Neg => Op::Neg,
                    crate::ast::UnOp::Not => Op::Not,
                });
            }
            ExprKind::Binary { op, lhs, rhs } => match op {
                BinOp::And | BinOp::Or => {
                    self.compile_expr(lhs, ctx);
                    let probe = self.emit(Op::ShortCircuit {
                        is_and: *op == BinOp::And,
                        skip: 0,
                    });
                    self.compile_expr(rhs, ctx);
                    self.emit(Op::LogicalRhs);
                    self.patch(probe);
                }
                _ => {
                    self.compile_expr(lhs, ctx);
                    self.compile_expr(rhs, ctx);
                    self.emit(Op::Bin(*op));
                }
            },
            ExprKind::Call { name, args } => self.compile_call(name, args, ctx),
        }
    }

    fn compile_call(&mut self, name: &str, args: &[Expr], ctx: &mut FnCtx) {
        if !name.starts_with("au_") {
            if let Some(&fidx) = self.func_ids.get(name) {
                for arg in args {
                    self.compile_expr(arg, ctx);
                }
                let arity = self
                    .program
                    .function(name)
                    .expect("registered function")
                    .params
                    .len();
                if args.len() != arity {
                    self.fail(&format!(
                        "function `{name}` expects {arity} arguments, got {}",
                        args.len()
                    ));
                } else {
                    let live = self.live_id(ctx);
                    self.emit(Op::Call { func: fidx, live });
                }
                return;
            }
        }
        self.compile_builtin(name, args, ctx);
    }

    /// Emits the interpreter's fixed-arity check: the error fires *before*
    /// any argument is evaluated, so it compiles to a bare `Fail`.
    fn check_arity(&mut self, name: &str, args: &[Expr], n: usize) -> bool {
        if args.len() == n {
            true
        } else {
            self.fail(&format!(
                "`{name}` expects {n} arguments, got {}",
                args.len()
            ));
            false
        }
    }

    fn compile_builtin(&mut self, name: &str, args: &[Expr], ctx: &mut FnCtx) {
        match name {
            "au_config" => {
                if args.len() < 4 {
                    self.fail("`au_config` needs model, type, algorithm, layer count");
                    return;
                }
                for arg in &args[..3] {
                    self.compile_expr(arg, ctx);
                    self.ensure_str("au_config");
                }
                self.compile_expr(&args[3], ctx);
                self.emit(Op::AuConfigCheck {
                    argc: args.len() as u16,
                });
                let layer_msg = self.msg_id("layer size must be a number");
                for arg in &args[4..] {
                    self.compile_expr(arg, ctx);
                    self.emit(Op::EnsureNum(layer_msg));
                }
                self.emit(Op::AuConfig {
                    layers: (args.len() - 4) as u16,
                });
            }
            "au_extract" => {
                if !self.check_arity(name, args, 2) {
                    return;
                }
                self.compile_expr(&args[0], ctx);
                self.ensure_str(name);
                self.compile_expr(&args[1], ctx);
                self.emit(Op::AuExtract);
            }
            "au_serialize" => {
                for arg in args {
                    self.compile_expr(arg, ctx);
                    self.ensure_str(name);
                }
                self.emit(Op::AuSerialize {
                    argc: args.len() as u16,
                });
            }
            "au_nn" => {
                if args.len() < 3 {
                    self.fail("`au_nn` needs model, ext, and at least one wb name");
                    return;
                }
                for arg in args {
                    self.compile_expr(arg, ctx);
                    self.ensure_str(name);
                }
                self.emit(Op::AuNn {
                    argc: args.len() as u16,
                });
            }
            "au_nn_rl" => {
                if !self.check_arity(name, args, 6) {
                    return;
                }
                self.compile_expr(&args[0], ctx);
                self.ensure_str(name);
                self.compile_expr(&args[1], ctx);
                self.ensure_str(name);
                self.compile_expr(&args[2], ctx);
                self.compile_expr(&args[3], ctx);
                self.compile_expr(&args[4], ctx);
                self.ensure_str(name);
                self.compile_expr(&args[5], ctx);
                self.emit(Op::AuNnRl);
            }
            "au_write_back" => {
                if !self.check_arity(name, args, 1) {
                    return;
                }
                self.compile_expr(&args[0], ctx);
                self.ensure_str(name);
                self.emit(Op::AuWriteBack);
            }
            "au_write_back_n" => {
                if !self.check_arity(name, args, 2) {
                    return;
                }
                self.compile_expr(&args[0], ctx);
                self.ensure_str(name);
                self.compile_expr(&args[1], ctx);
                self.emit(Op::AuWriteBackN);
            }
            "au_checkpoint" => {
                if !self.check_arity(name, args, 0) {
                    return;
                }
                let live = self.live_id(ctx);
                self.emit(Op::AuCheckpoint { live });
            }
            "au_restore" => {
                if !self.check_arity(name, args, 0) {
                    return;
                }
                let live = self.live_id(ctx);
                self.emit(Op::AuRestore { live });
            }
            "mark_input" => {
                if !self.check_arity(name, args, 1) {
                    return;
                }
                self.compile_expr(&args[0], ctx);
                self.ensure_str(name);
                self.emit(Op::MarkInput);
            }
            "mark_target" => {
                if !self.check_arity(name, args, 1) {
                    return;
                }
                self.compile_expr(&args[0], ctx);
                self.ensure_str(name);
                self.emit(Op::MarkTarget);
            }
            "input" => {
                if !self.check_arity(name, args, 2) {
                    return;
                }
                self.compile_expr(&args[0], ctx);
                self.ensure_str(name);
                self.compile_expr(&args[1], ctx);
                // Pre-intern literal keys so traced runs use a pooled id
                // with a precomputed relevance bit.
                if let ExprKind::Str(key) = &args[0].kind {
                    self.name_id(key);
                }
                self.emit(Op::Input);
            }
            "print" => {
                for arg in args {
                    self.compile_expr(arg, ctx);
                }
                self.emit(Op::Print(args.len() as u16));
            }
            "len" => {
                if !self.check_arity(name, args, 1) {
                    return;
                }
                self.compile_expr(&args[0], ctx);
                self.emit(Op::Len);
            }
            "append" => {
                if !self.check_arity(name, args, 2) {
                    return;
                }
                self.compile_expr(&args[0], ctx);
                self.compile_expr(&args[1], ctx);
                self.emit(Op::Append);
            }
            "floor" | "abs" | "sqrt" | "sin" | "cos" | "exp" => {
                if !self.check_arity(name, args, 1) {
                    return;
                }
                self.compile_expr(&args[0], ctx);
                let f = match name {
                    "floor" => MathFn::Floor,
                    "abs" => MathFn::Abs,
                    "sqrt" => MathFn::Sqrt,
                    "sin" => MathFn::Sin,
                    "cos" => MathFn::Cos,
                    _ => MathFn::Exp,
                };
                self.emit(Op::Math1(f));
            }
            "min" | "max" => {
                if !self.check_arity(name, args, 2) {
                    return;
                }
                self.compile_expr(&args[0], ctx);
                self.compile_expr(&args[1], ctx);
                self.emit(Op::Math2 {
                    is_min: name == "min",
                });
            }
            "rand" => {
                if !self.check_arity(name, args, 0) {
                    return;
                }
                self.emit(Op::Rand);
            }
            other => self.fail(&format!("unknown function `{other}`")),
        }
    }
}

/// True for RHS calls that designate their destination as a target.
fn is_write_back_call(rhs: &Expr) -> bool {
    matches!(
        &rhs.kind,
        ExprKind::Call { name, .. }
            if name == "au_write_back" || name == "au_write_back_n" || name == "au_nn_rl"
    )
}
