//! Property-based tests for the recognizer.

use au_speech::{accuracy, synthesize, DecodeParams, Recognizer, Vocabulary};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Recognition always returns a word in range with ordered costs.
    #[test]
    fn recognize_is_total_and_ordered(word in 0usize..4,
                                      seed in 0u64..1000,
                                      beam in 1.0f64..32.0,
                                      floor in 0.0f64..1.2) {
        let vocab = Vocabulary::new(4, 20);
        let recognizer = Recognizer::new(vocab.clone());
        let utterance = synthesize(&vocab, word, seed);
        let (best, cost, second) = recognizer.recognize(&utterance, DecodeParams { beam, floor });
        prop_assert!(best < 4);
        prop_assert!(cost <= second);
    }

    /// Accuracy is a fraction.
    #[test]
    fn accuracy_is_bounded(seeds in prop::collection::vec(0u64..1000, 1..6)) {
        let vocab = Vocabulary::new(3, 16);
        let recognizer = Recognizer::new(vocab.clone());
        let utterances: Vec<_> = seeds
            .iter()
            .enumerate()
            .map(|(i, &s)| synthesize(&vocab, i % 3, s))
            .collect();
        let a = accuracy(&recognizer, &utterances, DecodeParams::default());
        prop_assert!((0.0..=1.0).contains(&a));
    }

    /// Synthesis is deterministic and summary features are finite.
    #[test]
    fn synthesis_is_deterministic(word in 0usize..3, seed in 0u64..1000) {
        let vocab = Vocabulary::new(3, 16);
        let a = synthesize(&vocab, word, seed);
        let b = synthesize(&vocab, word, seed);
        prop_assert_eq!(&a.frames, &b.frames);
        for v in a.summary() {
            prop_assert!(v.is_finite());
        }
    }
}
