//! Keyword-recognition benchmark program (the paper's Sphinx substitute).
//!
//! CMU Sphinx carries decoding parameters (beam widths, variance floors)
//! whose ideal values depend on the utterance — speaking rate and noise
//! level. This crate reproduces that setting with a deterministic synthetic
//! pipeline:
//!
//! - [`Vocabulary`]: formant-track templates for a small keyword set;
//! - [`synthesize`]: renders an utterance of a word with a random speaking
//!   rate, loudness, noise level, and surrounding silence;
//! - [`Recognizer`]: template matching by dynamic time warping with two
//!   tunable **target parameters**: the DTW band width `beam` and the
//!   energy gate `floor` used to strip silence/noise frames;
//! - [`accuracy`]: the built-in quality score (fraction recognized).
//!
//! A too-narrow `beam` cannot align fast/slow speech; a mis-set `floor`
//! either admits noise frames or eats quiet speech — so the ideal values
//! vary per utterance, the property the Autonomizer exploits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Frames are 2-dimensional "formant" feature vectors.
pub type Frame = [f64; 2];

/// The keyword templates.
#[derive(Debug, Clone)]
pub struct Vocabulary {
    templates: Vec<Vec<Frame>>,
}

impl Vocabulary {
    /// Builds `words` distinct keyword templates of `len` frames each.
    ///
    /// # Panics
    ///
    /// Panics if `words` or `len` is zero.
    pub fn new(words: usize, len: usize) -> Self {
        assert!(words > 0 && len > 0, "vocabulary must be non-empty");
        let templates = (0..words)
            .map(|w| {
                (0..len)
                    .map(|t| {
                        let phase = t as f64 / len as f64;
                        // Word-specific formant trajectories, well separated
                        // in frequency and shape.
                        let f1 = 1.0
                            + 0.5 * ((w + 1) as f64 * std::f64::consts::PI * phase).sin()
                            + 0.2 * w as f64;
                        let f2 = 2.0 + 0.5 * ((w + 2) as f64 * std::f64::consts::PI * phase).cos()
                            - 0.15 * w as f64;
                        [f1, f2]
                    })
                    .collect()
            })
            .collect();
        Vocabulary { templates }
    }

    /// Number of keywords.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Whether the vocabulary is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// Template for word `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    pub fn template(&self, w: usize) -> &[Frame] {
        &self.templates[w]
    }
}

/// One synthesized utterance with its latent generation parameters.
#[derive(Debug, Clone)]
pub struct Utterance {
    /// The spoken word's index.
    pub word: usize,
    /// Feature frames: silence + warped noisy template + silence.
    pub frames: Vec<Frame>,
    /// Speaking-rate factor used (1.0 = template speed).
    pub speed: f64,
    /// Noise standard deviation added to every frame.
    pub noise: f64,
}

impl Utterance {
    /// Internal summary features — the compact (`Min`) band: frame count,
    /// mean energy, energy variance, fraction of high-energy frames.
    pub fn summary(&self) -> Vec<f64> {
        let energies: Vec<f64> = self
            .frames
            .iter()
            .map(|f| (f[0] * f[0] + f[1] * f[1]).sqrt())
            .collect();
        let n = energies.len().max(1) as f64;
        let mean = energies.iter().sum::<f64>() / n;
        let var = energies
            .iter()
            .map(|e| (e - mean) * (e - mean))
            .sum::<f64>()
            / n;
        let high = energies.iter().filter(|&&e| e > 1.0).count() as f64 / n;
        vec![n, mean, var, high]
    }

    /// Raw flattened frames — the `Raw` band.
    pub fn raw(&self) -> Vec<f64> {
        self.frames.iter().flat_map(|f| f.iter().copied()).collect()
    }
}

/// Synthesizes one utterance of `word` deterministically in `seed`.
///
/// # Panics
///
/// Panics if `word` is out of range for the vocabulary.
pub fn synthesize(vocab: &Vocabulary, word: usize, seed: u64) -> Utterance {
    assert!(word < vocab.len(), "word index out of range");
    let mut rng = StdRng::seed_from_u64(seed);
    let speed = rng.gen_range(0.6..1.6f64);
    let noise = rng.gen_range(0.0..0.45f64);
    let gain = rng.gen_range(0.8..1.2f64);
    let template = vocab.template(word);
    let out_len = ((template.len() as f64) / speed).round().max(4.0) as usize;

    let mut frames = Vec::new();
    let lead = rng.gen_range(2..8usize);
    let tail = rng.gen_range(2..8usize);
    let noisy = |base: Frame, rng: &mut StdRng| -> Frame {
        [base[0] + noise * gauss(rng), base[1] + noise * gauss(rng)]
    };
    for _ in 0..lead {
        frames.push(noisy([0.05, 0.05], &mut rng));
    }
    for t in 0..out_len {
        // Linear time-warp resampling of the template.
        let src = t as f64 * (template.len() - 1) as f64 / (out_len - 1).max(1) as f64;
        let i = src.floor() as usize;
        let frac = src - i as f64;
        let a = template[i.min(template.len() - 1)];
        let b = template[(i + 1).min(template.len() - 1)];
        let base = [
            gain * (a[0] * (1.0 - frac) + b[0] * frac),
            gain * (a[1] * (1.0 - frac) + b[1] * frac),
        ];
        frames.push(noisy(base, &mut rng));
    }
    for _ in 0..tail {
        frames.push(noisy([0.05, 0.05], &mut rng));
    }
    Utterance {
        word,
        frames,
        speed,
        noise,
    }
}

fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-9..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Decoder parameters — the target variables of this benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodeParams {
    /// Sakoe–Chiba DTW band half-width, in frames.
    pub beam: f64,
    /// Energy gate: frames with magnitude below this are dropped as
    /// silence/noise before matching.
    pub floor: f64,
}

impl Default for DecodeParams {
    /// Shipped defaults — the `baseline` setting.
    fn default() -> Self {
        DecodeParams {
            beam: 3.0,
            floor: 0.3,
        }
    }
}

/// DTW template recognizer.
#[derive(Debug, Clone)]
pub struct Recognizer {
    vocab: Vocabulary,
}

impl Recognizer {
    /// Creates a recognizer for the vocabulary.
    pub fn new(vocab: Vocabulary) -> Self {
        Recognizer { vocab }
    }

    /// The vocabulary being matched against.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Recognizes an utterance, returning `(best_word, best_cost,
    /// second_cost)`. A larger `second_cost − best_cost` margin means a
    /// more confident decision.
    pub fn recognize(&self, utterance: &Utterance, params: DecodeParams) -> (usize, f64, f64) {
        let gated: Vec<Frame> = utterance
            .frames
            .iter()
            .copied()
            .filter(|f| (f[0] * f[0] + f[1] * f[1]).sqrt() >= params.floor)
            .collect();
        let mut best = (0usize, f64::INFINITY);
        let mut second = f64::INFINITY;
        for w in 0..self.vocab.len() {
            let cost = banded_dtw(&gated, self.vocab.template(w), params.beam.max(1.0));
            if cost < best.1 {
                second = best.1;
                best = (w, cost);
            } else if cost < second {
                second = cost;
            }
        }
        (best.0, best.1, second)
    }
}

/// Sakoe–Chiba banded DTW between two frame sequences; normalized by the
/// path-length bound. Empty inputs cost infinity (nothing matched).
fn banded_dtw(a: &[Frame], b: &[Frame], beam: f64) -> f64 {
    if a.is_empty() || b.is_empty() {
        return f64::INFINITY;
    }
    let (la, lb) = (a.len(), b.len());
    let band = beam as isize;
    let inf = f64::INFINITY;
    let mut prev = vec![inf; lb + 1];
    let mut curr = vec![inf; lb + 1];
    prev[0] = 0.0;
    for i in 1..=la {
        curr.fill(inf);
        // Band is applied around the warped diagonal.
        let center = (i as f64 * lb as f64 / la as f64) as isize;
        let lo = (center - band).max(1) as usize;
        let hi = ((center + band) as usize).min(lb);
        for j in lo..=hi {
            let d = dist(a[i - 1], b[j - 1]);
            let m = prev[j].min(prev[j - 1]).min(curr[j - 1]);
            if m < inf {
                curr[j] = d + m;
            }
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[lb] / (la + lb) as f64
}

fn dist(a: Frame, b: Frame) -> f64 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    (dx * dx + dy * dy).sqrt()
}

/// Fraction of utterances recognized correctly — the built-in score
/// (higher is better).
pub fn accuracy(recognizer: &Recognizer, utterances: &[Utterance], params: DecodeParams) -> f64 {
    if utterances.is_empty() {
        return 0.0;
    }
    let correct = utterances
        .iter()
        .filter(|u| recognizer.recognize(u, params).0 == u.word)
        .count();
    correct as f64 / utterances.len() as f64
}

/// Per-utterance oracle: the parameters maximizing the decision margin
/// while recognizing correctly (our stand-in for the ground truth the paper
/// requires of its SL datasets).
pub fn ideal_params(recognizer: &Recognizer, utterance: &Utterance) -> (DecodeParams, bool) {
    let mut best: Option<(DecodeParams, f64)> = None;
    for &beam in &[2.0f64, 4.0, 8.0, 16.0, 32.0] {
        for &floor in &[0.1f64, 0.3, 0.5, 0.8, 1.1] {
            let params = DecodeParams { beam, floor };
            let (word, cost, second) = recognizer.recognize(utterance, params);
            if word != utterance.word {
                continue;
            }
            let margin = second - cost;
            if best.is_none_or(|(_, m)| margin > m) {
                best = Some((params, margin));
            }
        }
    }
    match best {
        Some((params, _)) => (params, true),
        None => (DecodeParams::default(), false),
    }
}

/// Records this program's dynamic dependence shape (the Valgrind view).
pub fn record_dependences(db: &mut au_trace::AnalysisDb) {
    db.mark_input("frames");
    db.record_assign("energies", &["frames"], None, "recognize");
    db.record_assign("summary", &["energies"], None, "recognize");
    db.record_assign("gated", &["energies", "floor"], None, "recognize");
    db.record_assign("costs", &["gated", "beam"], None, "dtw");
    db.record_assign("result", &["costs", "summary"], None, "recognize");
    db.mark_target("beam");
    db.mark_target("floor");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Recognizer, Vocabulary) {
        let vocab = Vocabulary::new(4, 20);
        (Recognizer::new(vocab.clone()), vocab)
    }

    #[test]
    fn synthesis_is_deterministic() {
        let vocab = Vocabulary::new(3, 16);
        let a = synthesize(&vocab, 1, 5);
        let b = synthesize(&vocab, 1, 5);
        assert_eq!(a.frames, b.frames);
    }

    #[test]
    fn clean_slow_speech_is_recognized_with_defaults() {
        let (rec, vocab) = setup();
        // Seed hunting: find a low-noise, near-1.0-speed utterance.
        let utterance = (0..200u64)
            .map(|s| synthesize(&vocab, 2, s))
            .find(|u| u.noise < 0.05 && (u.speed - 1.0).abs() < 0.15)
            .expect("some clean utterance exists");
        let (word, _, _) = rec.recognize(&utterance, DecodeParams::default());
        assert_eq!(word, 2);
    }

    #[test]
    fn accuracy_improves_with_wider_beam_on_fast_speech() {
        let (rec, vocab) = setup();
        let fast: Vec<Utterance> = (0..300u64)
            .map(|s| synthesize(&vocab, (s % 4) as usize, s))
            .filter(|u| u.speed > 1.35 && u.noise < 0.2)
            .take(12)
            .collect();
        assert!(!fast.is_empty());
        let narrow = accuracy(
            &rec,
            &fast,
            DecodeParams {
                beam: 2.0,
                floor: 0.3,
            },
        );
        let wide = accuracy(
            &rec,
            &fast,
            DecodeParams {
                beam: 24.0,
                floor: 0.3,
            },
        );
        assert!(
            wide >= narrow,
            "wider beam should help fast speech: {narrow} vs {wide}"
        );
    }

    #[test]
    fn ideal_params_vary_with_utterance() {
        let (rec, vocab) = setup();
        let params: Vec<DecodeParams> = (0..10u64)
            .map(|s| ideal_params(&rec, &synthesize(&vocab, (s % 4) as usize, s)).0)
            .collect();
        let first = params[0];
        assert!(
            params
                .iter()
                .any(|p| (p.beam - first.beam).abs() > 1e-9 || (p.floor - first.floor).abs() > 1e-9),
            "ideal decode params should be input-dependent: {params:?}"
        );
    }

    #[test]
    fn summary_features_track_utterance_statistics() {
        let vocab = Vocabulary::new(2, 16);
        let utts: Vec<Utterance> = (0..100u64).map(|s| synthesize(&vocab, 0, s)).collect();
        for u in &utts {
            let s = u.summary();
            assert_eq!(s[0] as usize, u.frames.len(), "frame count feature");
            assert!(s[1] > 0.0, "mean energy positive");
            assert!((0.0..=1.0).contains(&s[3]), "high-energy fraction bounded");
        }
        // Different utterances produce different summaries (the model has
        // signal to work with).
        assert_ne!(utts[0].summary(), utts[1].summary());
    }

    #[test]
    fn empty_after_gating_is_not_a_crash() {
        let (rec, vocab) = setup();
        let utterance = synthesize(&vocab, 0, 3);
        // An absurd floor gates away every frame; recognition degrades but
        // returns.
        let (_, cost, _) = rec.recognize(
            &utterance,
            DecodeParams {
                beam: 4.0,
                floor: 99.0,
            },
        );
        assert!(cost.is_infinite());
    }

    #[test]
    fn raw_band_is_flattened_frames() {
        let vocab = Vocabulary::new(2, 8);
        let u = synthesize(&vocab, 1, 1);
        assert_eq!(u.raw().len(), u.frames.len() * 2);
    }

    #[test]
    fn dependence_shape_supports_algorithm1() {
        let mut db = au_trace::AnalysisDb::new();
        record_dependences(&mut db);
        let features = au_trace::extract_sl(&db);
        let beam = db.id("beam").unwrap();
        assert!(!features[&beam].is_empty());
    }
}
