//! Property-based tests for the edge detectors.

use au_image::scene::SceneGenerator;
use au_vision::canny::{self, CannyParams};
use au_vision::rothwell::{self, RothwellParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Canny output is always a binary map of the input's size, regardless
    /// of parameters.
    #[test]
    fn canny_output_is_binary_and_sized(seed in 0u64..500,
                                        sigma in 0.0f32..3.0,
                                        hi in 0.05f32..0.95,
                                        lo_frac in 0.1f32..1.0) {
        let scene = SceneGenerator::new(seed).generate(16, 16);
        let params = CannyParams { sigma, lo: lo_frac * hi, hi };
        let result = canny::canny(&scene.image, params);
        prop_assert_eq!(result.edges.width(), 16);
        prop_assert_eq!(result.edges.height(), 16);
        for &p in result.edges.pixels() {
            prop_assert!(p == 0.0 || p == 1.0);
        }
        prop_assert_eq!(result.hist.len(), canny::HIST_BINS);
        prop_assert_eq!(result.hist.iter().sum::<f64>() as usize, 256);
    }

    /// Detection is deterministic: same input, same parameters, same edges.
    #[test]
    fn canny_is_deterministic(seed in 0u64..200) {
        let scene = SceneGenerator::new(seed).generate(16, 16);
        let a = canny::canny(&scene.image, CannyParams::default());
        let b = canny::canny(&scene.image, CannyParams::default());
        prop_assert_eq!(a.edges, b.edges);
    }

    /// Raising the high threshold never yields more edges (hysteresis
    /// monotonicity).
    #[test]
    fn canny_hi_threshold_is_monotone(seed in 0u64..200, hi in 0.2f32..0.8) {
        let scene = SceneGenerator::new(seed).generate(16, 16);
        let count = |hi: f32| {
            let result = canny::canny(
                &scene.image,
                CannyParams { sigma: 1.0, lo: 0.5 * hi, hi },
            );
            result.edges.pixels().iter().filter(|&&p| p > 0.5).count()
        };
        prop_assert!(count(hi) >= count((hi + 0.15).min(0.95)));
    }

    /// Rothwell output is binary and sized; its summary is ordered.
    #[test]
    fn rothwell_output_is_well_formed(seed in 0u64..500,
                                      sigma in 0.0f32..3.0,
                                      low in 0.0f32..0.9,
                                      alpha in 0.0f32..3.0) {
        let scene = SceneGenerator::new(seed).generate(16, 16);
        let result = rothwell::rothwell(&scene.image, RothwellParams { sigma, low, alpha });
        for &p in result.edges.pixels() {
            prop_assert!(p == 0.0 || p == 1.0);
        }
        // summary = [mean, max, p50, p90]
        prop_assert!(result.summary[1] >= result.summary[3]);
        prop_assert!(result.summary[3] >= result.summary[2]);
        prop_assert!(result.summary[2] >= 0.0);
    }
}
