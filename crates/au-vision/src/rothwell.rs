//! A Rothwell-style topological edge detector ("Driving Vision by
//! Topology", Rothwell et al. 1995).
//!
//! Unlike Canny's global hysteresis, Rothwell thins edges with a *dynamic*
//! local threshold: a pixel is an edge if it is a directional local maximum
//! and its magnitude exceeds `low + alpha · local_mean`. The three tunable
//! parameters mirror the paper's three target variables for this benchmark.

use au_image::{ssim, GrayImage};

/// Rothwell's tunable parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RothwellParams {
    /// Gaussian smoothing standard deviation.
    pub sigma: f32,
    /// Absolute magnitude floor, as a fraction of the maximum magnitude.
    pub low: f32,
    /// Dynamic-threshold weight on the local mean magnitude.
    pub alpha: f32,
}

impl Default for RothwellParams {
    /// Shipped defaults — the `baseline` setting.
    fn default() -> Self {
        RothwellParams {
            sigma: 1.0,
            low: 0.15,
            alpha: 0.9,
        }
    }
}

/// Output of a Rothwell run with the internals the analysis extracts.
#[derive(Debug, Clone)]
pub struct RothwellResult {
    /// Final binary edge map.
    pub edges: GrayImage,
    /// Smoothed input.
    pub s_img: GrayImage,
    /// Gradient magnitude.
    pub mag: GrayImage,
    /// Per-image magnitude summary `[mean, max, p50, p90]` — the compact
    /// internal feature (this detector's `Min` band).
    pub summary: Vec<f64>,
}

/// Runs the detector.
///
/// # Panics
///
/// Panics if `low` is not in `[0, 1]`, `alpha` is negative, or `sigma` is
/// negative.
pub fn rothwell(image: &GrayImage, params: RothwellParams) -> RothwellResult {
    assert!(params.sigma >= 0.0, "sigma must be non-negative");
    assert!((0.0..=1.0).contains(&params.low), "low must be in [0,1]");
    assert!(params.alpha >= 0.0, "alpha must be non-negative");
    let s_img = image.gaussian_smooth(params.sigma);
    let (mag, dir) = s_img.sobel();
    let max = mag
        .pixels()
        .iter()
        .cloned()
        .fold(0.0f32, f32::max)
        .max(1e-12);
    let (w, h) = (mag.width(), mag.height());

    // Local mean magnitude over a 5x5 window (the topology-driven dynamic
    // threshold's context).
    let mut local_mean = GrayImage::new(w, h);
    for y in 0..h as isize {
        for x in 0..w as isize {
            let mut acc = 0.0;
            for dy in -2..=2isize {
                for dx in -2..=2isize {
                    acc += mag.get_clamped(x + dx, y + dy);
                }
            }
            local_mean.set(x as usize, y as usize, acc / 25.0);
        }
    }

    let mut edges = GrayImage::new(w, h);
    for y in 0..h as isize {
        for x in 0..w as isize {
            let m = mag.get_clamped(x, y);
            let threshold = params.low * max + params.alpha * local_mean.get_clamped(x, y);
            if m < threshold {
                continue;
            }
            // Directional local-maximum test.
            let angle = dir.get_clamped(x, y).to_degrees().rem_euclid(180.0);
            let (dx, dy) = if !(22.5..157.5).contains(&angle) {
                (1isize, 0isize)
            } else if angle < 67.5 {
                (1, 1)
            } else if angle < 112.5 {
                (0, 1)
            } else {
                (-1, 1)
            };
            if m >= mag.get_clamped(x + dx, y + dy) && m >= mag.get_clamped(x - dx, y - dy) {
                edges.set(x as usize, y as usize, 1.0);
            }
        }
    }

    let mut sorted: Vec<f32> = mag.pixels().to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("magnitudes are finite"));
    let pct = |p: f64| f64::from(sorted[((sorted.len() - 1) as f64 * p) as usize]);
    let summary = vec![f64::from(mag.mean()), f64::from(max), pct(0.5), pct(0.9)];
    RothwellResult {
        edges,
        s_img,
        mag,
        summary,
    }
}

/// Scores a detection against ground truth (SSIM, higher is better).
pub fn score(edges: &GrayImage, truth: &GrayImage) -> f64 {
    ssim(edges, truth)
}

/// Direct-search oracle for per-image ideal parameters.
pub fn ideal_params(image: &GrayImage, truth: &GrayImage) -> (RothwellParams, f64) {
    let mut best = (RothwellParams::default(), f64::NEG_INFINITY);
    for &sigma in &[0.5f32, 1.0, 1.5, 2.0] {
        for &low in &[0.05f32, 0.1, 0.2, 0.3] {
            for &alpha in &[0.5f32, 1.0, 1.5, 2.0] {
                let params = RothwellParams { sigma, low, alpha };
                let result = rothwell(image, params);
                let s = ssim(&result.edges, truth);
                if s > best.1 {
                    best = (params, s);
                }
            }
        }
    }
    best
}

/// Records this program's dynamic dependence shape (the Valgrind view).
pub fn record_dependences(db: &mut au_trace::AnalysisDb) {
    db.mark_input("image");
    db.record_assign("sImg", &["image", "sigma"], None, "rothwell");
    db.record_assign("mag", &["sImg"], None, "rothwell");
    db.record_assign("localMean", &["mag"], None, "rothwell");
    db.record_assign("summary", &["mag"], None, "rothwell");
    db.record_assign(
        "result",
        &["summary", "localMean", "low", "alpha"],
        None,
        "rothwell",
    );
    db.mark_target("sigma");
    db.mark_target("low");
    db.mark_target("alpha");
}

#[cfg(test)]
mod tests {
    use super::*;
    use au_image::scene::SceneGenerator;

    #[test]
    fn detects_square_boundary() {
        let mut img = GrayImage::new(32, 32);
        for y in 10..22 {
            for x in 10..22 {
                img.set(x, y, 1.0);
            }
        }
        let result = rothwell(&img, RothwellParams::default());
        let edge_pixels = result.edges.pixels().iter().filter(|&&p| p > 0.5).count();
        assert!(edge_pixels >= 30, "got {edge_pixels}");
        assert_eq!(result.edges.get(16, 16), 0.0, "interior must stay empty");
    }

    #[test]
    fn summary_is_four_stats() {
        let img = SceneGenerator::new(1).generate(16, 16).image;
        let result = rothwell(&img, RothwellParams::default());
        assert_eq!(result.summary.len(), 4);
        // max >= p90 >= p50 >= 0
        assert!(result.summary[1] >= result.summary[3]);
        assert!(result.summary[3] >= result.summary[2]);
    }

    #[test]
    fn higher_alpha_prunes_edges() {
        let scene = SceneGenerator::new(8).generate(32, 32);
        let loose = rothwell(
            &scene.image,
            RothwellParams {
                sigma: 1.0,
                low: 0.05,
                alpha: 0.2,
            },
        );
        let strict = rothwell(
            &scene.image,
            RothwellParams {
                sigma: 1.0,
                low: 0.05,
                alpha: 3.0,
            },
        );
        let count = |img: &GrayImage| img.pixels().iter().filter(|&&p| p > 0.5).count();
        assert!(count(&loose.edges) > count(&strict.edges));
    }

    #[test]
    fn ideal_beats_default() {
        let mut gen = SceneGenerator::new(55);
        let mut default_total = 0.0;
        let mut ideal_total = 0.0;
        for _ in 0..3 {
            let scene = gen.generate(32, 32);
            let d = rothwell(&scene.image, RothwellParams::default());
            default_total += score(&d.edges, &scene.truth);
            ideal_total += ideal_params(&scene.image, &scene.truth).1;
        }
        assert!(ideal_total >= default_total);
    }

    #[test]
    fn dependences_offer_summary_as_min_band() {
        let mut db = au_trace::AnalysisDb::new();
        record_dependences(&mut db);
        let features = au_trace::extract_sl(&db);
        let low = db.id("low").unwrap();
        let min = au_trace::select_band(&features[&low], au_trace::DistanceBand::Min);
        let names: Vec<&str> = min.iter().map(|&v| db.name(v)).collect();
        assert!(
            names.contains(&"summary") || names.contains(&"localMean"),
            "{names:?}"
        );
    }
}
