//! Edge-detection benchmark programs (the paper's SL case studies).
//!
//! - [`mod@canny`]: the classic Canny detector with the exact internal-variable
//!   pipeline the paper instruments (Fig. 11): `image → sImg → mag → hist →
//!   result`, with the three tunable target parameters `sigma`, `lo`, `hi`.
//! - [`mod@rothwell`]: a Rothwell-style topological edge detector with dynamic
//!   thresholding (parameters `sigma`, `low`, `alpha`).
//!
//! Both expose their intermediate variables so the Autonomizer can extract
//! the `Min`/`Med`/`Raw` feature bands, provide built-in quality scoring
//! against ground truth (SSIM), and ship an `ideal_params` oracle (direct
//! search) standing in for the paper's expert labels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canny;
pub mod rothwell;

pub use canny::{canny, CannyParams, CannyResult};
pub use rothwell::{rothwell, RothwellParams, RothwellResult};
