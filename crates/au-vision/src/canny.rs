//! The Canny edge detector (Canny 1986), exposing the paper's internals.

use au_image::{ssim, GrayImage};

/// Number of histogram bins exposed as the `hist` feature variable. The
/// paper extracts a 32767-bin histogram; we use a compact 32-bin version
/// with the same role (the magnitude distribution that determines good
/// hysteresis thresholds).
pub const HIST_BINS: usize = 32;

/// Canny's three tunable parameters — the target variables of the paper's
/// first case study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CannyParams {
    /// Gaussian smoothing standard deviation.
    pub sigma: f32,
    /// Low hysteresis threshold, as a fraction of the maximum magnitude.
    pub lo: f32,
    /// High hysteresis threshold, as a fraction of the maximum magnitude.
    pub hi: f32,
}

impl Default for CannyParams {
    /// The program's shipped defaults — the paper's `baseline` setting.
    fn default() -> Self {
        CannyParams {
            sigma: 1.0,
            lo: 0.25,
            hi: 0.6,
        }
    }
}

/// Full output of a Canny run, intermediates included.
///
/// The intermediates are exactly the candidate feature variables of Fig. 9:
/// `s_img` (smoothed image), `mag` (gradient magnitude), and `hist`
/// (magnitude histogram), ordered by decreasing dependence-graph distance to
/// the result.
#[derive(Debug, Clone)]
pub struct CannyResult {
    /// Final binary edge map.
    pub edges: GrayImage,
    /// Smoothed input (`sImg` in the paper — the `Med` feature band).
    pub s_img: GrayImage,
    /// Gradient magnitude (`mag`).
    pub mag: GrayImage,
    /// Histogram of gradient magnitudes (`hist` — the `Min` feature band).
    pub hist: Vec<f64>,
}

/// Runs Canny edge detection: Gaussian smooth → Sobel gradients →
/// non-maximum suppression → hysteresis thresholding.
///
/// # Panics
///
/// Panics if the thresholds are not in `[0, 1]` or `sigma` is negative.
pub fn canny(image: &GrayImage, params: CannyParams) -> CannyResult {
    assert!(params.sigma >= 0.0, "sigma must be non-negative");
    assert!((0.0..=1.0).contains(&params.lo), "lo must be in [0,1]");
    assert!((0.0..=1.0).contains(&params.hi), "hi must be in [0,1]");
    let s_img = image.gaussian_smooth(params.sigma);
    let (mag, dir) = s_img.sobel();
    let hist = mag.histogram(HIST_BINS);
    let suppressed = non_max_suppression(&mag, &dir);
    let edges = hysteresis(&suppressed, params.lo, params.hi);
    CannyResult {
        edges,
        s_img,
        mag,
        hist,
    }
}

/// Thins the magnitude image: a pixel survives only if it is a local
/// maximum along its gradient direction.
fn non_max_suppression(mag: &GrayImage, dir: &GrayImage) -> GrayImage {
    let (w, h) = (mag.width(), mag.height());
    let mut out = GrayImage::new(w, h);
    for y in 0..h as isize {
        for x in 0..w as isize {
            let m = mag.get_clamped(x, y);
            let angle = dir.get_clamped(x, y);
            // Quantize the gradient direction into 4 sectors.
            let deg = angle.to_degrees().rem_euclid(180.0);
            let (dx, dy) = if !(22.5..157.5).contains(&deg) {
                (1isize, 0isize)
            } else if deg < 67.5 {
                (1, 1)
            } else if deg < 112.5 {
                (0, 1)
            } else {
                (-1, 1)
            };
            let a = mag.get_clamped(x + dx, y + dy);
            let b = mag.get_clamped(x - dx, y - dy);
            if m >= a && m >= b {
                out.set(x as usize, y as usize, m);
            }
        }
    }
    out
}

/// Double-threshold hysteresis: strong pixels (≥ `hi`·max) seed edges,
/// which grow through weak pixels (≥ `lo`·max) by 8-connectivity.
fn hysteresis(mag: &GrayImage, lo: f32, hi: f32) -> GrayImage {
    let (w, h) = (mag.width(), mag.height());
    let max = mag.pixels().iter().cloned().fold(0.0f32, f32::max);
    let lo_t = lo * max;
    let hi_t = hi * max;
    let mut edges = GrayImage::new(w, h);
    let mut stack = Vec::new();
    for y in 0..h {
        for x in 0..w {
            if mag.get(x, y) >= hi_t && hi_t > 0.0 && edges.get(x, y) == 0.0 {
                edges.set(x, y, 1.0);
                stack.push((x, y));
                while let Some((cx, cy)) = stack.pop() {
                    for dy in -1..=1isize {
                        for dx in -1..=1isize {
                            let nx = cx as isize + dx;
                            let ny = cy as isize + dy;
                            if nx < 0 || ny < 0 || nx >= w as isize || ny >= h as isize {
                                continue;
                            }
                            let (nx, ny) = (nx as usize, ny as usize);
                            if edges.get(nx, ny) == 0.0 && mag.get(nx, ny) >= lo_t {
                                edges.set(nx, ny, 1.0);
                                stack.push((nx, ny));
                            }
                        }
                    }
                }
            }
        }
    }
    edges
}

/// Scores a detection against ground truth (the paper's SSIM metric —
/// higher is better).
pub fn score(edges: &GrayImage, truth: &GrayImage) -> f64 {
    ssim(edges, truth)
}

/// Finds near-ideal parameters for one image by direct grid search against
/// the ground truth — our stand-in for the paper's expert-provided ideal
/// values (and for per-input auto-tuning). Returns the best parameters and
/// their score.
pub fn ideal_params(image: &GrayImage, truth: &GrayImage) -> (CannyParams, f64) {
    let mut best = (CannyParams::default(), f64::NEG_INFINITY);
    for &sigma in &[0.5f32, 1.0, 1.5, 2.0, 2.5] {
        // Smoothing and gradients are reused across threshold candidates.
        let s_img = image.gaussian_smooth(sigma);
        let (mag, dir) = s_img.sobel();
        let suppressed = non_max_suppression(&mag, &dir);
        for &hi in &[0.2f32, 0.35, 0.5, 0.65, 0.8] {
            for &lo_frac in &[0.3f32, 0.5, 0.7] {
                let lo = lo_frac * hi;
                let edges = hysteresis(&suppressed, lo, hi);
                let s = ssim(&edges, truth);
                if s > best.1 {
                    best = (CannyParams { sigma, lo, hi }, s);
                }
            }
        }
    }
    best
}

/// Records the dynamic dependence shape of the Canny pipeline into an
/// analysis database — what the paper's Valgrind instrumentation observes
/// when the program runs (Fig. 9). Used by Table 1 and by automatic feature
/// extraction for this Rust-hosted benchmark.
pub fn record_dependences(db: &mut au_trace::AnalysisDb) {
    db.mark_input("image");
    // canny(): image -> sImg -> mag -> hist; all flow into result.
    db.record_assign("sImg", &["image", "sigma"], None, "canny");
    db.record_assign("mag", &["sImg"], None, "canny");
    db.record_assign("dir", &["sImg"], None, "canny");
    db.record_assign("hist", &["mag"], None, "hysteresis");
    db.record_assign("suppressed", &["mag", "dir"], None, "canny");
    db.record_assign(
        "result",
        &["suppressed", "hist", "lo", "hi"],
        None,
        "hysteresis",
    );
    db.mark_target("sigma");
    db.mark_target("lo");
    db.mark_target("hi");
}

#[cfg(test)]
mod tests {
    use super::*;
    use au_image::scene::SceneGenerator;

    #[test]
    fn detects_edges_of_clean_square() {
        let mut img = GrayImage::new(32, 32);
        for y in 8..24 {
            for x in 8..24 {
                img.set(x, y, 1.0);
            }
        }
        let result = canny(&img, CannyParams::default());
        let edge_pixels = result.edges.pixels().iter().filter(|&&p| p > 0.5).count();
        assert!(
            edge_pixels >= 40,
            "square boundary should appear, got {edge_pixels}"
        );
        // The interior must stay empty.
        assert_eq!(result.edges.get(16, 16), 0.0);
    }

    #[test]
    fn blank_image_has_no_edges() {
        let img = GrayImage::new(16, 16);
        let result = canny(&img, CannyParams::default());
        assert!(result.edges.pixels().iter().all(|&p| p == 0.0));
    }

    #[test]
    fn intermediates_have_matching_sizes() {
        let img = GrayImage::new(16, 16);
        let result = canny(&img, CannyParams::default());
        assert_eq!(result.s_img.width(), 16);
        assert_eq!(result.mag.width(), 16);
        assert_eq!(result.hist.len(), HIST_BINS);
    }

    #[test]
    fn higher_thresholds_yield_fewer_edges() {
        let scene = SceneGenerator::new(4).generate(32, 32);
        let loose = canny(
            &scene.image,
            CannyParams {
                sigma: 1.0,
                lo: 0.05,
                hi: 0.1,
            },
        );
        let strict = canny(
            &scene.image,
            CannyParams {
                sigma: 1.0,
                lo: 0.5,
                hi: 0.9,
            },
        );
        let count = |img: &GrayImage| img.pixels().iter().filter(|&&p| p > 0.5).count();
        assert!(count(&loose.edges) > count(&strict.edges));
    }

    #[test]
    fn ideal_params_beat_defaults_on_average() {
        let mut gen = SceneGenerator::new(77);
        let mut default_total = 0.0;
        let mut ideal_total = 0.0;
        for _ in 0..4 {
            let scene = gen.generate(32, 32);
            let d = canny(&scene.image, CannyParams::default());
            default_total += score(&d.edges, &scene.truth);
            let (_, s) = ideal_params(&scene.image, &scene.truth);
            ideal_total += s;
        }
        assert!(
            ideal_total > default_total,
            "ideal {ideal_total} should beat default {default_total}"
        );
    }

    #[test]
    fn ideal_params_vary_across_inputs() {
        // The core premise of the paper: no universal best configuration.
        let mut gen = SceneGenerator::new(123);
        let params: Vec<CannyParams> = (0..6)
            .map(|_| {
                let scene = gen.generate(32, 32);
                ideal_params(&scene.image, &scene.truth).0
            })
            .collect();
        let first = params[0];
        assert!(
            params
                .iter()
                .any(|p| (p.hi - first.hi).abs() > 1e-6 || (p.sigma - first.sigma).abs() > 1e-6),
            "expected input-dependent ideal parameters, got {params:?}"
        );
    }

    #[test]
    #[should_panic(expected = "lo must be in")]
    fn rejects_bad_threshold() {
        let img = GrayImage::new(8, 8);
        let _ = canny(
            &img,
            CannyParams {
                sigma: 1.0,
                lo: 2.0,
                hi: 0.5,
            },
        );
    }

    #[test]
    fn recorded_dependences_rank_hist_first_for_lo() {
        let mut db = au_trace::AnalysisDb::new();
        record_dependences(&mut db);
        let features = au_trace::extract_sl(&db);
        let lo = db.id("lo").unwrap();
        let ranked = &features[&lo];
        assert_eq!(db.name(ranked[0].var), "hist");
        // `image` is the farthest candidate — the Raw band.
        let raw = au_trace::select_band(ranked, au_trace::DistanceBand::Raw);
        assert!(raw.iter().any(|&v| db.name(v) == "image"));
    }
}
