//! Framework error type.

use std::error::Error;
use std::fmt;

/// Errors raised by the Autonomizer runtime.
#[derive(Debug)]
pub enum AuError {
    /// A primitive referenced a model name never passed to `au_config`.
    UnknownModel(String),
    /// `au_config` was called twice for the same name with a different
    /// configuration in the same run.
    ModelExists(String),
    /// The database store has no entry (or not enough values) under a name.
    MissingData {
        /// The database-store key.
        name: String,
        /// Values requested.
        wanted: usize,
        /// Values available.
        available: usize,
    },
    /// A model received input of a different width than it was built for.
    InputSizeChanged {
        /// Model name.
        model: String,
        /// Width the model was built with.
        built: usize,
        /// Width of the offending input.
        got: usize,
    },
    /// An SL primitive was applied to an RL model or vice versa.
    WrongAlgorithm {
        /// Model name.
        model: String,
        /// What the call expected (`"supervised"` / `"reinforcement"`).
        expected: &'static str,
    },
    /// `au_restore` without a prior `au_checkpoint`.
    NoCheckpoint,
    /// Model persistence failed (deployment-mode `loadModel`).
    Backend(au_nn::NnError),
    /// Deployment mode requires a trained model on disk, but none was found.
    ModelNotTrained(String),
    /// The monitor's fallback policy has marked this model degraded (drift,
    /// quality collapse, or non-finite output): the engine refuses to serve
    /// further predictions so the caller can fall back to the original
    /// (pre-autonomization) code path.
    ModelDegraded(String),
}

impl fmt::Display for AuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuError::UnknownModel(name) => write!(f, "unknown model `{name}`"),
            AuError::ModelExists(name) => {
                write!(f, "model `{name}` already configured differently")
            }
            AuError::MissingData {
                name,
                wanted,
                available,
            } => write!(
                f,
                "database store entry `{name}` has {available} values, {wanted} requested"
            ),
            AuError::InputSizeChanged { model, built, got } => write!(
                f,
                "model `{model}` was built for {built} inputs but received {got}"
            ),
            AuError::WrongAlgorithm { model, expected } => {
                write!(f, "model `{model}` does not use a {expected} algorithm")
            }
            AuError::NoCheckpoint => write!(f, "au_restore called without a checkpoint"),
            AuError::Backend(e) => write!(f, "model backend error: {e}"),
            AuError::ModelNotTrained(name) => {
                write!(f, "no trained model `{name}` available for deployment")
            }
            AuError::ModelDegraded(name) => {
                write!(
                    f,
                    "model `{name}` is degraded (monitoring fallback active); use the original code path"
                )
            }
        }
    }
}

impl Error for AuError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AuError::Backend(e) => Some(e),
            _ => None,
        }
    }
}

impl From<au_nn::NnError> for AuError {
    fn from(e: au_nn::NnError) -> Self {
        AuError::Backend(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = AuError::MissingData {
            name: "HIST".into(),
            wanted: 3,
            available: 1,
        };
        let msg = e.to_string();
        assert!(msg.contains("HIST"));
        assert!(msg.contains('3'));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn backend_errors_chain() {
        let inner = au_nn::NnError::Format("bad".into());
        let e = AuError::from(inner);
        assert!(e.source().is_some());
    }
}
