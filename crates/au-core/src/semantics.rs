//! An executable small-step machine for the Fig. 8 operational semantics.
//!
//! Where [`crate::Engine`] is the production runtime (the program store σ
//! lives in the host program), this module interprets the paper's
//! *configuration* ⟨σ, π, θ, ω⟩ literally: programs are sequences of
//! [`Stmt`]s, each step applies exactly one transition rule, and the rule
//! that fired is reported — so the test suite can check the semantics
//! rule by rule, and documentation can show executable derivations.

use crate::engine::Engine;
use crate::error::AuError;
use crate::handle::Mode;
use crate::model::ModelConfig;
use crate::store::{ProgramStore, Value};

/// A statement of the Fig. 8 language.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `x := v` (rule ASSIGN).
    Assign {
        /// Variable name.
        var: String,
        /// Value assigned.
        value: Value,
    },
    /// `@au_config(mdName, δ, α, l, n1, …)` (rules CONFIG-TRAIN/TEST).
    AuConfig {
        /// Model name.
        model: String,
        /// Model configuration (δ, α, layers).
        config: ModelConfig,
    },
    /// `@au_extract(extName, size, x)` (rule EXTRACT).
    AuExtract {
        /// Database-store list name.
        ext: String,
        /// Program variable whose value is appended.
        var: String,
        /// Number of scalars to take from the variable (the paper's
        /// `σ[size]`).
        size: usize,
    },
    /// `@au_NN(mdName, extName, wbName)` (rules TRAIN/TEST).
    AuNn {
        /// Model name.
        model: String,
        /// Input list name.
        ext: String,
        /// Output list name(s).
        wbs: Vec<String>,
    },
    /// `@au_write_back(wbName, size, x)` (rule WRITE-BACK).
    AuWriteBack {
        /// Database-store list name.
        wb: String,
        /// Destination program variable.
        var: String,
        /// Number of scalars copied.
        size: usize,
    },
    /// `@au_serialize(t1, t2, …)` (rule SERIALIZE).
    AuSerialize {
        /// List names to concatenate.
        names: Vec<String>,
    },
    /// The RL form of `@au_NN(mdName, extName, reward, term, wbName)`
    /// (rules TRAIN/TEST with the Q algorithm). Reads `reward` and
    /// `terminated` from σ, exactly as Fig. 2 computes them into program
    /// variables before the call.
    AuNnRl {
        /// Model name.
        model: String,
        /// Input list name.
        ext: String,
        /// σ variable holding the current reward.
        reward_var: String,
        /// σ variable holding the terminal flag (non-zero = terminated).
        term_var: String,
        /// Output list name.
        wb: String,
        /// Action-space size (the paper's `au_write_back` size).
        n_actions: usize,
    },
    /// `@au_checkpoint()` (rule CHECKPOINT).
    AuCheckpoint,
    /// `@au_restore()` (rule RESTORE).
    AuRestore,
}

/// Which transition rule fired for a step — the label over the arrow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// `x := v`.
    Assign,
    /// Model registered fresh (TR mode).
    ConfigTrain,
    /// Model loaded from persistent storage (TS mode).
    ConfigTest,
    /// Feature values appended to π.
    Extract,
    /// Model trained then run (TR mode).
    Train,
    /// Model run without update (TS mode).
    Test,
    /// Values copied from π to σ.
    WriteBack,
    /// Lists concatenated.
    Serialize,
    /// ⟨σ, π⟩ snapshot taken.
    Checkpoint,
    /// ⟨σ, π⟩ snapshot reinstated.
    Restore,
}

/// The machine configuration ⟨σ, π, θ, ω⟩ plus the statement queue.
#[derive(Debug)]
pub struct Machine {
    /// The program store σ.
    sigma: ProgramStore,
    /// π and θ live inside the engine; ω is its mode.
    engine: Engine,
    checkpoint: Option<crate::handle::Checkpoint<ProgramStore>>,
}

impl Machine {
    /// Creates a machine in the given mode with empty stores.
    pub fn new(mode: Mode) -> Self {
        Machine {
            sigma: ProgramStore::new(),
            engine: Engine::new(mode),
            checkpoint: None,
        }
    }

    /// Read access to σ.
    pub fn sigma(&self) -> &ProgramStore {
        &self.sigma
    }

    /// Read access to the engine holding π, θ, and ω.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable engine access (e.g. to set a model directory before
    /// CONFIG-TEST).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Executes one statement, returning the rule that fired.
    ///
    /// # Errors
    ///
    /// Propagates engine errors; additionally reports missing program
    /// variables as [`AuError::MissingData`] on the variable name.
    pub fn step(&mut self, stmt: &Stmt) -> Result<Rule, AuError> {
        match stmt {
            Stmt::Assign { var, value } => {
                self.sigma.assign(var, value.clone());
                Ok(Rule::Assign)
            }
            Stmt::AuConfig { model, config } => {
                let mode = self.engine.mode();
                self.engine.au_config(model, config.clone())?;
                Ok(match mode {
                    Mode::Train => Rule::ConfigTrain,
                    Mode::Test => Rule::ConfigTest,
                })
            }
            Stmt::AuExtract { ext, var, size } => {
                let value = self.sigma.get(var).ok_or_else(|| AuError::MissingData {
                    name: var.clone(),
                    wanted: *size,
                    available: 0,
                })?;
                let slice = value.as_slice();
                if slice.len() < *size {
                    return Err(AuError::MissingData {
                        name: var.clone(),
                        wanted: *size,
                        available: slice.len(),
                    });
                }
                let taken = slice[..*size].to_vec();
                self.engine.au_extract(ext, &taken);
                Ok(Rule::Extract)
            }
            Stmt::AuNn { model, ext, wbs } => {
                let mode = self.engine.mode();
                let wb_refs: Vec<&str> = wbs.iter().map(String::as_str).collect();
                self.engine.au_nn(model, ext, &wb_refs)?;
                Ok(match mode {
                    Mode::Train => Rule::Train,
                    Mode::Test => Rule::Test,
                })
            }
            Stmt::AuNnRl {
                model,
                ext,
                reward_var,
                term_var,
                wb,
                n_actions,
            } => {
                let mode = self.engine.mode();
                let reward =
                    self.sigma
                        .get_scalar(reward_var)
                        .ok_or_else(|| AuError::MissingData {
                            name: reward_var.clone(),
                            wanted: 1,
                            available: 0,
                        })?;
                let terminal =
                    self.sigma
                        .get_scalar(term_var)
                        .ok_or_else(|| AuError::MissingData {
                            name: term_var.clone(),
                            wanted: 1,
                            available: 0,
                        })?
                        != 0.0;
                self.engine
                    .au_nn_rl(model, ext, reward, terminal, wb, *n_actions)?;
                Ok(match mode {
                    Mode::Train => Rule::Train,
                    Mode::Test => Rule::Test,
                })
            }
            Stmt::AuWriteBack { wb, var, size } => {
                let mut buffer = vec![0.0; *size];
                self.engine.au_write_back(wb, &mut buffer)?;
                let value = if *size == 1 {
                    Value::Scalar(buffer[0])
                } else {
                    Value::Vector(buffer)
                };
                self.sigma.assign(var, value);
                Ok(Rule::WriteBack)
            }
            Stmt::AuSerialize { names } => {
                let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                self.engine.au_serialize(&refs);
                Ok(Rule::Serialize)
            }
            Stmt::AuCheckpoint => {
                self.checkpoint = Some(self.engine.checkpoint_with(&self.sigma));
                Ok(Rule::Checkpoint)
            }
            Stmt::AuRestore => {
                let ckpt = self.checkpoint.clone().ok_or(AuError::NoCheckpoint)?;
                self.sigma = self.engine.restore_with(&ckpt);
                Ok(Rule::Restore)
            }
        }
    }

    /// Runs a whole statement sequence, returning the rule trace — the
    /// derivation's rule labels in order.
    ///
    /// # Errors
    ///
    /// Stops at the first failing statement.
    pub fn run(&mut self, program: &[Stmt]) -> Result<Vec<Rule>, AuError> {
        program.iter().map(|stmt| self.step(stmt)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_updates_sigma_only() {
        let mut m = Machine::new(Mode::Train);
        let rule = m
            .step(&Stmt::Assign {
                var: "x".into(),
                value: Value::Scalar(3.0),
            })
            .unwrap();
        assert_eq!(rule, Rule::Assign);
        assert_eq!(m.sigma().get_scalar("x"), Some(3.0));
        assert!(m.engine().db().is_empty(), "π untouched by ASSIGN");
    }

    #[test]
    fn extract_moves_sigma_values_into_pi() {
        let mut m = Machine::new(Mode::Train);
        m.step(&Stmt::Assign {
            var: "hist".into(),
            value: Value::Vector(vec![1.0, 2.0, 3.0]),
        })
        .unwrap();
        let rule = m
            .step(&Stmt::AuExtract {
                ext: "HIST".into(),
                var: "hist".into(),
                size: 2,
            })
            .unwrap();
        assert_eq!(rule, Rule::Extract);
        assert_eq!(m.engine().db().get("HIST"), &[1.0, 2.0], "σ[size] prefix");
    }

    #[test]
    fn extract_respects_size_bound() {
        let mut m = Machine::new(Mode::Train);
        m.step(&Stmt::Assign {
            var: "x".into(),
            value: Value::Scalar(1.0),
        })
        .unwrap();
        let err = m
            .step(&Stmt::AuExtract {
                ext: "X".into(),
                var: "x".into(),
                size: 4,
            })
            .unwrap_err();
        assert!(matches!(err, AuError::MissingData { wanted: 4, .. }));
    }

    #[test]
    fn full_derivation_matches_rule_sequence() {
        au_nn::set_init_seed(81);
        let mut m = Machine::new(Mode::Train);
        let program = vec![
            Stmt::AuConfig {
                model: "M".into(),
                config: ModelConfig::dnn(&[8]),
            },
            Stmt::Assign {
                var: "feat".into(),
                value: Value::Vector(vec![0.1, 0.2]),
            },
            Stmt::Assign {
                var: "ideal".into(),
                value: Value::Scalar(0.7),
            },
            Stmt::AuExtract {
                ext: "F".into(),
                var: "feat".into(),
                size: 2,
            },
            Stmt::AuExtract {
                ext: "P".into(),
                var: "ideal".into(),
                size: 1,
            },
            Stmt::AuNn {
                model: "M".into(),
                ext: "F".into(),
                wbs: vec!["P".into()],
            },
            Stmt::AuWriteBack {
                wb: "P".into(),
                var: "param".into(),
                size: 1,
            },
        ];
        let trace = m.run(&program).unwrap();
        assert_eq!(
            trace,
            vec![
                Rule::ConfigTrain,
                Rule::Assign,
                Rule::Assign,
                Rule::Extract,
                Rule::Extract,
                Rule::Train,
                Rule::WriteBack
            ]
        );
        assert!(m.sigma().get_scalar("param").is_some());
        assert!(
            m.engine().db().get("F").is_empty(),
            "extName ↦ ⊥ after TRAIN"
        );
    }

    #[test]
    fn ts_mode_fires_test_rule() {
        au_nn::set_init_seed(82);
        let mut m = Machine::new(Mode::Train);
        m.run(&[
            Stmt::AuConfig {
                model: "M".into(),
                config: ModelConfig::dnn(&[4]),
            },
            Stmt::Assign {
                var: "f".into(),
                value: Value::Scalar(0.5),
            },
            Stmt::Assign {
                var: "l".into(),
                value: Value::Scalar(1.0),
            },
            Stmt::AuExtract {
                ext: "F".into(),
                var: "f".into(),
                size: 1,
            },
            Stmt::AuExtract {
                ext: "L".into(),
                var: "l".into(),
                size: 1,
            },
            Stmt::AuNn {
                model: "M".into(),
                ext: "F".into(),
                wbs: vec!["L".into()],
            },
        ])
        .unwrap();
        m.engine_mut().set_mode(Mode::Test);
        m.step(&Stmt::AuExtract {
            ext: "F".into(),
            var: "f".into(),
            size: 1,
        })
        .unwrap();
        let rule = m
            .step(&Stmt::AuNn {
                model: "M".into(),
                ext: "F".into(),
                wbs: vec!["L".into()],
            })
            .unwrap();
        assert_eq!(rule, Rule::Test);
    }

    #[test]
    fn checkpoint_restore_rolls_sigma_and_pi_together() {
        let mut m = Machine::new(Mode::Train);
        m.run(&[
            Stmt::Assign {
                var: "lives".into(),
                value: Value::Scalar(3.0),
            },
            Stmt::AuExtract {
                ext: "L".into(),
                var: "lives".into(),
                size: 1,
            },
            Stmt::AuCheckpoint,
            Stmt::Assign {
                var: "lives".into(),
                value: Value::Scalar(0.0),
            },
            Stmt::AuExtract {
                ext: "L".into(),
                var: "lives".into(),
                size: 1,
            },
        ])
        .unwrap();
        assert_eq!(m.engine().db().get("L").len(), 2);
        let rule = m.step(&Stmt::AuRestore).unwrap();
        assert_eq!(rule, Rule::Restore);
        assert_eq!(m.sigma().get_scalar("lives"), Some(3.0), "σ restored");
        assert_eq!(m.engine().db().get("L"), &[3.0], "π restored consistently");
    }

    #[test]
    fn restore_without_checkpoint_is_an_error() {
        let mut m = Machine::new(Mode::Train);
        assert!(matches!(
            m.step(&Stmt::AuRestore),
            Err(AuError::NoCheckpoint)
        ));
    }

    #[test]
    fn rl_statement_runs_fig2_shape() {
        au_nn::set_init_seed(83);
        let mut m = Machine::new(Mode::Train);
        m.run(&[
            Stmt::AuConfig {
                model: "Mario".into(),
                config: ModelConfig::q_dnn(&[8]),
            },
            Stmt::Assign {
                var: "reward".into(),
                value: Value::Scalar(0.0),
            },
            Stmt::Assign {
                var: "terminated".into(),
                value: Value::Scalar(0.0),
            },
            Stmt::Assign {
                var: "px".into(),
                value: Value::Scalar(1.0),
            },
            Stmt::AuExtract {
                ext: "PX".into(),
                var: "px".into(),
                size: 1,
            },
        ])
        .unwrap();
        let rule = m
            .step(&Stmt::AuNnRl {
                model: "Mario".into(),
                ext: "PX".into(),
                reward_var: "reward".into(),
                term_var: "terminated".into(),
                wb: "output".into(),
                n_actions: 5,
            })
            .unwrap();
        assert_eq!(rule, Rule::Train);
        m.step(&Stmt::AuWriteBack {
            wb: "output".into(),
            var: "actionKey".into(),
            size: 5,
        })
        .unwrap();
        let action_key = m.sigma().get("actionKey").unwrap().as_slice().to_vec();
        assert_eq!(action_key.len(), 5);
        assert_eq!(action_key.iter().filter(|&&v| v == 1.0).count(), 1);
    }

    #[test]
    fn serialize_rule_concatenates() {
        let mut m = Machine::new(Mode::Train);
        m.run(&[
            Stmt::Assign {
                var: "a".into(),
                value: Value::Scalar(1.0),
            },
            Stmt::Assign {
                var: "b".into(),
                value: Value::Scalar(2.0),
            },
            Stmt::AuExtract {
                ext: "A".into(),
                var: "a".into(),
                size: 1,
            },
            Stmt::AuExtract {
                ext: "B".into(),
                var: "b".into(),
                size: 1,
            },
            Stmt::AuSerialize {
                names: vec!["A".into(), "B".into()],
            },
        ])
        .unwrap();
        assert_eq!(m.engine().db().get("AB"), &[1.0, 2.0]);
    }
}
