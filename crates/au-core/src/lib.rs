//! Autonomizer framework core — the paper's primitives and runtime.
//!
//! This crate implements the heart of *Programming Support for Autonomizing
//! Software* (PLDI 2019): the seven `au_*` primitives, the two isolated
//! stores of the operational semantics (Fig. 8), the model registry, and
//! checkpoint/restore.
//!
//! | Paper primitive | This crate |
//! |---|---|
//! | `@au_config(name, type, algo, layers, n1, …)` | [`Engine::au_config`] |
//! | `@au_extract(name, size, data)` | [`Engine::au_extract`] |
//! | `@au_NN(name, ext, wb)` (SL) | [`Engine::au_nn`] |
//! | `@au_NN(name, ext, reward, term, wb)` (RL) | [`Engine::au_nn_rl`] |
//! | `@au_write_back(name, size, var)` | [`Engine::au_write_back`] |
//! | `@au_serialize(t1, t2, …)` | [`Engine::au_serialize`] |
//! | `@au_checkpoint()` | [`Engine::au_checkpoint`] |
//! | `@au_restore()` | [`Engine::au_restore`] |
//!
//! The *program store* σ belongs to the host program (its own variables);
//! the engine owns the *database store* π ([`DbStore`]) and the model store
//! θ. The two stores are isolated: data moves between them only through
//! `au_extract` and `au_write_back`, exactly as in the paper.
//!
//! # Example: autonomizing a parameterized computation (SL)
//!
//! ```
//! use au_core::{Engine, Mode, ModelConfig};
//!
//! let mut engine = Engine::new(Mode::Train);
//! engine.au_config("TinyNN", ModelConfig::dnn(&[8]))?;
//!
//! // Training run: extract features, record the ideal output, step the model.
//! for i in 0..40 {
//!     let feature = i as f64 / 40.0;
//!     engine.au_extract("F", &[feature]);
//!     engine.au_extract("P", &[2.0 * feature]); // ground-truth parameter
//!     engine.au_nn("TinyNN", "F", &["P"])?;     // trains toward π("P")
//! }
//! # Ok::<(), au_core::AuError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[macro_use]
mod telem;

mod engine;
mod error;
mod handle;
mod lockwait;
mod model;
mod monitoring;
mod registry;
pub mod semantics;
mod store;

pub use engine::Engine;
pub use error::AuError;
#[cfg(feature = "monitor")]
pub use handle::MonitorRef;
pub use handle::{Checkpoint, DbRef, EngineHandle, FeatureBuffer, Mode};
pub use model::{Algorithm, ModelConfig, ModelKind, ModelStats};
#[cfg(feature = "monitor")]
pub use monitoring::set_default_monitor_config;
pub use monitoring::BaselineMeta;
pub use store::{DbStore, ProgramStore, Value};

/// Re-export of the monitoring subsystem (alerts, drift detection, flight
/// recording) so engine users need not depend on `au-monitor` directly.
#[cfg(feature = "monitor")]
pub use au_monitor as monitor;
