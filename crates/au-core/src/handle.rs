//! The layered, concurrently servable Autonomizer runtime.
//!
//! [`EngineHandle`] is a cheap `Clone` (`Arc`) over the runtime's layered
//! state, and every primitive takes `&self`, so clones can serve predictions
//! from many threads at once. The layers (see `docs/architecture.md`):
//!
//! - **model registry** (θ) — [`crate::registry::ModelRegistry`]: per-model
//!   `RwLock`s, so deployment-mode serving of one model shares a read lock
//!   and different models never contend;
//! - **db store** (π) — a [`DbLayer`] behind one mutex: the `DbStore`, the
//!   label-freshness marks derived from it, and the checkpoint stack, which
//!   must stay mutually consistent;
//! - **inference** — the `au_nn`/`au_nn_rl`/`predict`/`predict_batch`
//!   methods: a read-locked fast path in TS mode, a write-locked slow path
//!   for training and first-call network construction;
//! - **monitoring/telemetry** — interior-mutable counters (atomics) plus the
//!   monitor state behind its own mutex, usable from `&self`.
//!
//! Lock discipline: no method holds two of {registry shard, model entry, π,
//! monitor} locks at once, except that π and the monitor lock are never held
//! together with a model-entry lock; file I/O happens with no lock held.

use crate::error::AuError;
use crate::lockwait::pi_lock;
use crate::model::{
    net_mut, rl_step, run_model_f32_into, run_model_ref, supervised_step, to_f32, Algorithm,
    Backend, ModelConfig, ModelInstance, ModelStats,
};
use crate::monitoring::BaselineMeta;
#[cfg(feature = "monitor")]
use crate::monitoring::MonitorState;
#[cfg(feature = "monitor")]
use crate::registry::lock;
use crate::registry::{read, write, ModelEntry, ModelRegistry};
use crate::store::DbStore;
use au_nn::rl::DqnAgent;
use au_nn::{Adam, Network, Tensor};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// Execution mode ω from Fig. 8: training (TR) or deployment/testing (TS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// TR — the program's execution trains the model(s) while running.
    Train,
    /// TS — trained models replace human interaction; no learning happens.
    Test,
}

impl Mode {
    fn as_u8(self) -> u8 {
        match self {
            Mode::Train => 0,
            Mode::Test => 1,
        }
    }

    fn from_u8(v: u8) -> Mode {
        if v == 0 {
            Mode::Train
        } else {
            Mode::Test
        }
    }
}

/// Minimum rows per parallel range in the batched prediction paths: below
/// this, per-range tensor setup dominates the forward pass and the region
/// runs inline.
const PREDICT_MIN_ROWS: usize = 8;

/// Per (model, wb-name) append-counter marks distinguishing fresh labels
/// from stale predictions in `au_nn`.
pub(crate) type LabelMarks = BTreeMap<(String, String), u64>;

/// A combined snapshot of host program state `S` and the database store π.
///
/// Fig. 8's CHECKPOINT rule snapshots ⟨σ, π⟩ *together* (their consistency
/// matters) while the model store θ is exempt so learning accumulates across
/// episode rollbacks.
#[derive(Debug, Clone)]
pub struct Checkpoint<S> {
    program: S,
    db: DbStore,
    /// Label-freshness marks are derived from π's append counters, so they
    /// roll back with it.
    label_marks: LabelMarks,
}

#[derive(Serialize, Deserialize)]
pub(crate) struct ModelMeta {
    pub output_split: Vec<usize>,
    pub n_actions: usize,
    /// Mean absolute training error, when monitoring collected one; the
    /// deployed monitor compares live rolling MAE against it.
    pub baseline_mae: Option<f64>,
    /// Per-feature training input distribution, when monitoring collected
    /// one; the deployed monitor detects drift against it.
    pub feature_baseline: Option<BaselineMeta>,
}

/// The π layer: the database store plus every piece of state that must stay
/// transactionally consistent with it — the label-freshness marks derived
/// from its append counters and the checkpoint stack of (π, marks) pairs.
#[derive(Debug, Default)]
pub(crate) struct DbLayer {
    pub db: DbStore,
    pub label_marks: LabelMarks,
    /// Internal π-only checkpoint stack for `au_checkpoint`/`au_restore`.
    pub checkpoints: Vec<(DbStore, LabelMarks)>,
}

/// The layered state shared by every clone of an [`EngineHandle`].
#[derive(Debug)]
struct EngineShared {
    /// Mode ω as an atomic so reads never take a lock.
    mode: AtomicU8,
    model_dir: RwLock<Option<PathBuf>>,
    /// The model store θ.
    registry: ModelRegistry,
    /// The database store π with its dependent state.
    db: Mutex<DbLayer>,
    /// Lifetime count of scalars extracted, *not* rolled back by checkpoint
    /// restores — the paper's trace-size metric (Table 2).
    extracted_total: AtomicU64,
    /// Per-model monitors, baseline accumulators, and the active monitor
    /// configuration (inert until monitoring is switched on).
    #[cfg(feature = "monitor")]
    monitor: Mutex<MonitorState>,
}

/// A cloneable, thread-safe handle to one Autonomizer runtime.
///
/// All primitives take `&self`; clone the handle into as many threads as
/// needed. Deployment-mode (`TS`) prediction paths run under read locks so
/// they proceed in parallel; training and registration serialize per model.
#[derive(Debug, Clone)]
pub struct EngineHandle {
    shared: Arc<EngineShared>,
}

/// Read guard over the database store π, returned by
/// [`EngineHandle::db`]/`Engine::db`. Holds the π lock — drop it before
/// calling primitives that write π.
pub struct DbRef<'a> {
    guard: MutexGuard<'a, DbLayer>,
}

impl std::ops::Deref for DbRef<'_> {
    type Target = DbStore;

    fn deref(&self) -> &DbStore {
        &self.guard.db
    }
}

/// Read guard over one model's live monitor, returned by
/// [`EngineHandle::monitor`]/`Engine::monitor`. Holds the monitor lock —
/// drop it before calling primitives that observe into the monitor.
#[cfg(feature = "monitor")]
pub struct MonitorRef<'a> {
    guard: MutexGuard<'a, MonitorState>,
    model: String,
}

#[cfg(feature = "monitor")]
impl std::ops::Deref for MonitorRef<'_> {
    type Target = au_monitor::ModelMonitor;

    fn deref(&self) -> &au_monitor::ModelMonitor {
        self.guard
            .monitors
            .get(&self.model)
            .expect("checked at construction")
    }
}

impl EngineHandle {
    /// Creates a runtime in the given mode.
    pub fn new(mode: Mode) -> Self {
        EngineHandle {
            shared: Arc::new(EngineShared {
                mode: AtomicU8::new(mode.as_u8()),
                model_dir: RwLock::new(None),
                registry: ModelRegistry::default(),
                db: Mutex::new(DbLayer::default()),
                extracted_total: AtomicU64::new(0),
                #[cfg(feature = "monitor")]
                monitor: Mutex::new(MonitorState::new()),
            }),
        }
    }

    /// Current execution mode.
    pub fn mode(&self) -> Mode {
        Mode::from_u8(self.shared.mode.load(Ordering::Relaxed))
    }

    /// Switches mode (e.g. finish training, then deploy in the same
    /// process — the in-process equivalent of the paper's two executables).
    pub fn set_mode(&self, mode: Mode) {
        self.shared.mode.store(mode.as_u8(), Ordering::Relaxed);
    }

    /// Directory used to persist and load trained models.
    pub fn set_model_dir(&self, dir: impl Into<PathBuf>) {
        *write(&self.shared.model_dir) = Some(dir.into());
    }

    fn model_dir_or_cwd(&self) -> PathBuf {
        read(&self.shared.model_dir)
            .clone()
            .unwrap_or_else(|| PathBuf::from("."))
    }

    /// Read access to the database store π (a guard — see [`DbRef`]).
    pub fn db(&self) -> DbRef<'_> {
        DbRef {
            guard: pi_lock(&self.shared.db),
        }
    }

    // ------------------------------------------------------------------
    // Primitives
    // ------------------------------------------------------------------

    /// `@au_config(modelName, modelType, algo, layers, n1, …)`.
    ///
    /// Rule CONFIG-TRAIN: in TR mode, registers a fresh model (a no-op if
    /// the same configuration is already registered). Rule CONFIG-TEST: in
    /// TS mode, loads the trained model from the model directory.
    ///
    /// # Errors
    ///
    /// [`AuError::ModelExists`] if the name is taken by a *different*
    /// configuration; [`AuError::ModelNotTrained`] in TS mode when no saved
    /// model exists; [`AuError::Backend`] if a saved model fails to parse.
    pub fn au_config(&self, name: &str, config: ModelConfig) -> Result<(), AuError> {
        let _s = t_span!("au_config", model = name);
        t_count!("au_core.au_config_calls");
        if let Some(result) = self.shared.registry.check_config(name, &config) {
            return result; // θ(mdName) ≢ ⊥ ⇒ θ′ = θ, or ModelExists
        }
        let mut entry = ModelEntry::new(ModelInstance::new(config));
        if self.mode() == Mode::Test {
            let (net, meta) = self.load_model_files(name)?;
            if !meta.output_split.is_empty() {
                entry.output_split = Some(meta.output_split.clone());
            }
            entry.n_actions = meta.n_actions;
            #[cfg(feature = "monitor")]
            lock(&self.shared.monitor).install_loaded(
                name,
                meta.feature_baseline.as_ref(),
                meta.baseline_mae,
            );
            entry.instance.backend = Some(match entry.instance.config.algorithm {
                Algorithm::AdamOpt => Backend::Supervised {
                    net: Arc::new(net),
                    opt: Adam::new(entry.instance.config.learning_rate),
                    train_steps: 0,
                },
                Algorithm::QLearn => {
                    let inputs = net.in_features();
                    let actions = if entry.n_actions > 0 {
                        entry.n_actions
                    } else {
                        net.out_features()
                    };
                    entry.n_actions = actions;
                    let mut dqn = entry.instance.config.dqn.clone();
                    dqn.epsilon_start = 0.0;
                    dqn.epsilon_end = 0.0;
                    Backend::Reinforcement {
                        agent: Box::new(DqnAgent::with_network(inputs, actions, dqn, net)),
                        pending: None,
                        train_steps: 0,
                    }
                }
            });
        }
        self.shared.registry.insert(name, entry)
    }

    /// `au_config` with a caller-built network — the paper's escape hatch:
    /// "We also provide a callback function in which the users can create
    /// arbitrary neural networks from scratch". The network's input/output
    /// widths are fixed by the caller; `algorithm` selects supervised or
    /// Q-learning use.
    ///
    /// # Errors
    ///
    /// [`AuError::ModelExists`] if the name is already configured.
    pub fn au_config_custom(
        &self,
        name: &str,
        algorithm: Algorithm,
        network: Network,
    ) -> Result<(), AuError> {
        let _s = t_span!("au_config_custom", model = name);
        t_count!("au_core.au_config_calls");
        if self.shared.registry.contains(name) {
            return Err(AuError::ModelExists(name.to_owned()));
        }
        let config = match algorithm {
            Algorithm::AdamOpt => ModelConfig::dnn(&[]),
            Algorithm::QLearn => ModelConfig::q_dnn(&[]),
        };
        let mut entry = ModelEntry::new(ModelInstance::new(config));
        entry.instance.backend = Some(match algorithm {
            Algorithm::AdamOpt => Backend::Supervised {
                net: Arc::new(network),
                opt: Adam::new(1e-3),
                train_steps: 0,
            },
            Algorithm::QLearn => {
                let inputs = network.in_features();
                let n_actions = network.out_features();
                entry.n_actions = n_actions;
                Backend::Reinforcement {
                    agent: Box::new(DqnAgent::with_network(
                        inputs,
                        n_actions,
                        entry.instance.config.dqn.clone(),
                        network,
                    )),
                    pending: None,
                    train_steps: 0,
                }
            }
        });
        self.shared.registry.insert_new(name, entry)
    }

    /// Persists the database store π to a JSON file — the paper's runtime
    /// "saves [feature values] to database"; a later process (offline SL
    /// training) loads them back with [`EngineHandle::load_db`].
    ///
    /// # Errors
    ///
    /// [`AuError::Backend`] on I/O failure.
    pub fn save_db(&self, path: impl AsRef<std::path::Path>) -> Result<(), AuError> {
        let _t = t_time!("au_core.db_save");
        t_count!("au_core.db_saves");
        let json = {
            let d = pi_lock(&self.shared.db);
            let map: BTreeMap<&str, &[f64]> = d.db.iter().collect();
            serde_json::to_string(&map).expect("db serializes")
        };
        std::fs::write(path, json).map_err(|e| AuError::Backend(e.into()))?;
        Ok(())
    }

    /// Loads a database store saved by [`EngineHandle::save_db`], replacing π.
    ///
    /// # Errors
    ///
    /// [`AuError::Backend`] on I/O failure or malformed content.
    pub fn load_db(&self, path: impl AsRef<std::path::Path>) -> Result<(), AuError> {
        let _t = t_time!("au_core.db_load");
        t_count!("au_core.db_loads");
        let raw = std::fs::read_to_string(path).map_err(|e| AuError::Backend(e.into()))?;
        let map: BTreeMap<String, Vec<f64>> = serde_json::from_str(&raw)
            .map_err(|e| AuError::Backend(au_nn::NnError::Format(e.to_string())))?;
        let mut loaded = 0u64;
        let mut db = DbStore::new();
        for (name, values) in map {
            db.append(&name, &values);
            loaded += values.len() as u64;
        }
        pi_lock(&self.shared.db).db = db;
        self.shared
            .extracted_total
            .fetch_add(loaded, Ordering::Relaxed);
        Ok(())
    }

    /// `@au_extract(extName, size, data)` — rule EXTRACT.
    ///
    /// Appends the current values of a feature variable to the π list named
    /// `name`. The slice length plays the role of the paper's `size`.
    pub fn au_extract(&self, name: &str, values: &[f64]) {
        let _t = t_time!("au_core.au_extract");
        t_count!("au_core.extract_rows", values.len() as u64);
        self.shared
            .extracted_total
            .fetch_add(values.len() as u64, Ordering::Relaxed);
        pi_lock(&self.shared.db).db.append(name, values);
    }

    /// `@au_extract` for native-`f32` feature vectors — the hot-path twin
    /// of [`EngineHandle::au_extract`]. Each value is widened exactly
    /// (every `f32` is representable as an `f64`) straight into π with no
    /// intermediate buffer, so extract→serve loops built on
    /// [`FeatureBuffer`] and [`EngineHandle::predict_f32_into`] never
    /// convert through `f64` on their own account.
    pub fn au_extract_f32(&self, name: &str, values: &[f32]) {
        let _t = t_time!("au_core.au_extract");
        t_count!("au_core.extract_rows", values.len() as u64);
        self.shared
            .extracted_total
            .fetch_add(values.len() as u64, Ordering::Relaxed);
        pi_lock(&self.shared.db).db.append_f32(name, values);
    }

    /// Extracts a staged [`FeatureBuffer`] under `name` and clears the
    /// buffer for the next frame, keeping its capacity.
    pub fn au_extract_buffer(&self, name: &str, buf: &mut FeatureBuffer) {
        self.au_extract_f32(name, buf.as_slice());
        buf.clear();
    }

    /// Lifetime count of scalars extracted through
    /// [`EngineHandle::au_extract`]. Unlike [`DbStore::total_appended`],
    /// this survives checkpoint restores — it is the paper's Table 2
    /// trace-size metric.
    pub fn total_extracted(&self) -> u64 {
        self.shared.extracted_total.load(Ordering::Relaxed)
    }

    /// `@au_serialize(t1, t2, …)` — rule SERIALIZE.
    ///
    /// Concatenates the named π lists into a single list (neural networks
    /// take vector inputs) stored under the concatenated name, which is
    /// returned for passing to [`EngineHandle::au_nn`]/
    /// [`EngineHandle::au_nn_rl`].
    ///
    /// The component lists are *consumed* (reset to ⊥): rule TRAIN/TEST
    /// resets only the combined `extName`, and without consuming the
    /// components a loop like Fig. 2's would feed an ever-growing input to
    /// a fixed-width model. Consuming keeps the semantics' invariant that
    /// each `au_NN` call sees exactly the values extracted since the last
    /// one.
    pub fn au_serialize(&self, names: &[&str]) -> String {
        let _t = t_time!("au_core.au_serialize");
        let mut d = pi_lock(&self.shared.db);
        let combined = d.db.serialize(names);
        for name in names {
            if **name != *combined {
                d.db.clear(name);
            }
        }
        combined
    }

    /// `@au_NN(modelName, extName, wbName1, …)` for supervised models —
    /// rules TRAIN and TEST.
    ///
    /// In TR mode, if π holds recorded desirable outputs under the `wb`
    /// names (the labels — e.g. the ideal parameter values for the current
    /// input), one gradient step is taken toward them. The model is then run
    /// on π(`ext`); its output is split across the `wb` names in π and the
    /// input list is reset to ⊥. Returns the flat model output.
    ///
    /// In TS mode with the output split already known, the whole call runs
    /// under a model *read* lock, so cloned handles serve concurrently.
    ///
    /// # Errors
    ///
    /// [`AuError::UnknownModel`] if `au_config` never ran for `model`;
    /// [`AuError::MissingData`] if π(`ext`) is empty or (on the first TR
    /// call) no labels exist to fix the output width;
    /// [`AuError::WrongAlgorithm`] for QLearn models.
    pub fn au_nn(&self, model: &str, ext: &str, wbs: &[&str]) -> Result<Vec<f64>, AuError> {
        let _s = t_span!("au_nn", model = model);
        let _t = t_time!("au_core.au_nn");
        let mode = self.mode();
        let input = pi_lock(&self.shared.db).db.get(ext).to_vec();
        if input.is_empty() {
            return Err(AuError::MissingData {
                name: ext.to_owned(),
                wanted: 1,
                available: 0,
            });
        }
        // Graceful degradation: once the monitor's fallback policy trips,
        // refuse to serve. The input is still consumed (π(ext) → ⊥) so the
        // caller's fallback path starts from a clean store.
        #[cfg(feature = "monitor")]
        if mode == Mode::Test && self.monitor_degraded(model) {
            pi_lock(&self.shared.db).db.clear(ext);
            return Err(AuError::ModelDegraded(model.to_owned()));
        }
        let entry = self
            .shared
            .registry
            .get(model)
            .ok_or_else(|| AuError::UnknownModel(model.to_owned()))?;
        let known_split = read(&entry).output_split.clone();
        // Labels recorded under the wb names (training mode only). After a
        // previous au_NN call, each wb list starts with that call's
        // prediction; a freshly extracted label is *appended* behind it. A
        // wb list counts as carrying a label only if au_extract has touched
        // it since the last au_NN call on this model, and once the output
        // split is known only the tail of each list is the label.
        let labels: Vec<Vec<f64>> = {
            let d = pi_lock(&self.shared.db);
            wbs.iter()
                .enumerate()
                .map(|(i, wb)| {
                    let mark_key = (model.to_owned(), (*wb).to_owned());
                    let fresh =
                        d.db.append_count(wb) > d.label_marks.get(&mark_key).copied().unwrap_or(0);
                    if !fresh {
                        return Vec::new();
                    }
                    let full = d.db.get(wb);
                    match &known_split {
                        Some(split) if full.len() >= split[i] && split[i] > 0 => {
                            full[full.len() - split[i]..].to_vec()
                        }
                        _ => full.to_vec(),
                    }
                })
                .collect()
        };
        let have_labels = mode == Mode::Train && labels.iter().all(|l| !l.is_empty());
        let label_flat: Vec<f64> = labels.iter().flatten().copied().collect();

        // Deployment fast path: split and backend already fixed ⇒ serve
        // under the model's read lock so clones predict in parallel.
        let mut fast: Option<(Vec<f64>, Vec<usize>)> = None;
        if mode == Mode::Test {
            let g = read(&entry);
            if let (Some(s), Some(Backend::Supervised { net, .. })) =
                (g.output_split.as_ref(), g.instance.backend.as_ref())
            {
                if s.len() == wbs.len() {
                    if net.in_features() != input.len() {
                        return Err(AuError::InputSizeChanged {
                            model: model.to_owned(),
                            built: net.in_features(),
                            got: input.len(),
                        });
                    }
                    t_count!("au_core.predictions_served");
                    fast = Some((run_model_ref(net, &input), s.clone()));
                }
            }
        }
        let (output, split) = match fast {
            Some(ready) => ready,
            None => {
                // Slow path: first call (split/backend unknown) or training
                // — serialize on the model's write lock.
                let mut g = write(&entry);
                let split: Vec<usize> = if let Some(split) = g.output_split.clone() {
                    split
                } else if have_labels {
                    labels.iter().map(Vec::len).collect()
                } else if let Some(Backend::Supervised { net, .. }) = g.instance.backend.as_ref() {
                    // Loaded model without sidecar: split evenly.
                    let out = net.out_features();
                    let each = out / wbs.len().max(1);
                    vec![each; wbs.len()]
                } else {
                    return Err(AuError::MissingData {
                        name: wbs.first().copied().unwrap_or("<wb>").to_owned(),
                        wanted: 1,
                        available: 0,
                    });
                };
                if split.len() != wbs.len() {
                    return Err(AuError::MissingData {
                        name: wbs.first().copied().unwrap_or("<wb>").to_owned(),
                        wanted: split.len(),
                        available: wbs.len(),
                    });
                }
                let out_width: usize = split.iter().sum();
                g.output_split = Some(split.clone());
                let backend = g
                    .instance
                    .ensure_supervised(model, input.len(), out_width)?;
                let output = match backend {
                    Backend::Supervised {
                        net,
                        opt,
                        train_steps,
                    } => {
                        if have_labels {
                            let loss = supervised_step(net_mut(net), opt, &input, &label_flat);
                            t_count!("au_core.rows_trained");
                            t_gauge!("au_core.last_loss", f64::from(loss));
                            *train_steps += 1;
                        }
                        t_count!("au_core.predictions_served");
                        run_model_ref(net, &input)
                    }
                    Backend::Reinforcement { .. } => unreachable!("ensure_supervised checked"),
                };
                (output, split)
            }
        };

        #[cfg(feature = "monitor")]
        {
            if mode == Mode::Train {
                // TR mode: grow the training baseline — input distribution
                // plus (when labels flowed) the post-step absolute error.
                let abs_err = if have_labels {
                    mean_abs_err(&output, &label_flat)
                } else {
                    None
                };
                lock(&self.shared.monitor).observe_training(model, &input, abs_err);
            } else if self.monitoring_enabled() {
                // TS mode: shadow accuracy — when ground-truth labels still
                // flow through au_extract, score the served prediction
                // against them.
                let outcome: Option<&[f64]> =
                    if !labels.is_empty() && labels.iter().all(|l| !l.is_empty()) {
                        Some(&label_flat)
                    } else {
                        None
                    };
                if self.monitor_observe(model, &input, &output, outcome) {
                    pi_lock(&self.shared.db).db.clear(ext);
                    return Err(AuError::ModelDegraded(model.to_owned()));
                }
            }
        }

        // π[wb_i → slice of output], extName → ⊥ — one π transaction.
        let mut d = pi_lock(&self.shared.db);
        let mut offset = 0;
        for (wb, width) in wbs.iter().zip(&split) {
            d.db.put(wb, output[offset..offset + width].to_vec());
            let count = d.db.append_count(wb);
            d.label_marks
                .insert((model.to_owned(), (*wb).to_owned()), count);
            offset += width;
        }
        d.db.clear(ext);
        drop(d);
        Ok(output)
    }

    /// `@au_NN(modelName, extName, reward, term, wbName)` for Q-learning
    /// models — the RL form used by the paper's game loop (Fig. 2).
    ///
    /// `n_actions` fixes the discrete action space (the paper derives it
    /// from the `size` argument of the matching `au_write_back`; here it is
    /// explicit). In TR mode the call completes the previous transition with
    /// `reward`/`terminal` and trains; in TS mode it only predicts — under a
    /// model *read* lock once the agent is built and no transition is
    /// pending.
    ///
    /// # Errors
    ///
    /// [`AuError::UnknownModel`], [`AuError::MissingData`] (empty π(`ext`)),
    /// or [`AuError::WrongAlgorithm`] for AdamOpt models.
    pub fn au_nn_rl(
        &self,
        model: &str,
        ext: &str,
        reward: f64,
        terminal: bool,
        wb: &str,
        n_actions: usize,
    ) -> Result<usize, AuError> {
        let _s = t_span!("au_nn_rl", model = model);
        let _t = t_time!("au_core.au_nn_rl");
        let mode = self.mode();
        let state = pi_lock(&self.shared.db).db.get(ext).to_vec();
        if state.is_empty() {
            return Err(AuError::MissingData {
                name: ext.to_owned(),
                wanted: 1,
                available: 0,
            });
        }
        #[cfg(feature = "monitor")]
        if mode == Mode::Test && self.monitor_degraded(model) {
            pi_lock(&self.shared.db).db.clear(ext);
            return Err(AuError::ModelDegraded(model.to_owned()));
        }
        let train = mode == Mode::Train;
        let entry = self
            .shared
            .registry
            .get(model)
            .ok_or_else(|| AuError::UnknownModel(model.to_owned()))?;
        // Deployment fast path: built agent, matching shape, no pending
        // transition to clear ⇒ greedy action under the read lock.
        let mut fast: Option<usize> = None;
        if !train {
            let g = read(&entry);
            if let Some(Backend::Reinforcement {
                agent,
                pending: None,
                ..
            }) = g.instance.backend.as_ref()
            {
                if agent.state_dim() == state.len() && agent.n_actions() == n_actions {
                    t_count!("au_core.predictions_served");
                    fast = Some(agent.greedy_action_ref(&to_f32(&state)));
                }
            }
        }
        let action = match fast {
            Some(a) => a,
            None => {
                let mut g = write(&entry);
                let backend = g
                    .instance
                    .ensure_reinforcement(model, state.len(), n_actions)?;
                let a = match backend {
                    Backend::Reinforcement {
                        agent,
                        pending,
                        train_steps,
                    } => {
                        let a = rl_step(agent, pending, &state, reward, terminal, train);
                        if train {
                            t_count!("au_core.rows_trained");
                            *train_steps += 1;
                        }
                        t_count!("au_core.predictions_served");
                        a
                    }
                    Backend::Supervised { .. } => unreachable!("ensure_reinforcement checked"),
                };
                g.n_actions = n_actions;
                a
            }
        };
        let mut one_hot = vec![0.0; n_actions];
        one_hot[action] = 1.0;
        #[cfg(feature = "monitor")]
        {
            if train {
                lock(&self.shared.monitor).observe_training(model, &state, None);
            } else if self.monitoring_enabled()
                && self.monitor_observe(model, &state, &one_hot, None)
            {
                pi_lock(&self.shared.db).db.clear(ext);
                return Err(AuError::ModelDegraded(model.to_owned()));
            }
        }
        let mut d = pi_lock(&self.shared.db);
        d.db.put(wb, one_hot);
        d.db.clear(ext);
        drop(d);
        Ok(action)
    }

    /// `@au_write_back(wbName, size, x)` — rule WRITE-BACK.
    ///
    /// Copies the first `dst.len()` values of π(`name`) into the program
    /// variable `dst` (the slice length plays the role of `size`).
    ///
    /// # Errors
    ///
    /// [`AuError::MissingData`] if π(`name`) holds fewer values than
    /// requested.
    pub fn au_write_back(&self, name: &str, dst: &mut [f64]) -> Result<(), AuError> {
        let _t = t_time!("au_core.au_write_back");
        t_count!("au_core.write_backs");
        let d = pi_lock(&self.shared.db);
        let src = d.db.get(name);
        if src.len() < dst.len() {
            return Err(AuError::MissingData {
                name: name.to_owned(),
                wanted: dst.len(),
                available: src.len(),
            });
        }
        dst.copy_from_slice(&src[..dst.len()]);
        Ok(())
    }

    /// Scalar convenience form of [`EngineHandle::au_write_back`].
    ///
    /// # Errors
    ///
    /// [`AuError::MissingData`] if π(`name`) is empty.
    pub fn au_write_back_scalar(&self, name: &str) -> Result<f64, AuError> {
        let mut v = [0.0];
        self.au_write_back(name, &mut v)?;
        Ok(v[0])
    }

    /// `@au_checkpoint()` over π only — rule CHECKPOINT, for host programs
    /// that snapshot their own σ (see [`EngineHandle::checkpoint_with`] for
    /// the combined form). Pushes onto a stack; [`EngineHandle::au_restore`]
    /// restores the most recent checkpoint without consuming it (the paper
    /// creates a checkpoint once and restores it at every episode end).
    pub fn au_checkpoint(&self) {
        let _t = t_time!("au_core.au_checkpoint");
        t_count!("au_core.checkpoints");
        let mut d = pi_lock(&self.shared.db);
        let snap = (d.db.clone(), d.label_marks.clone());
        d.checkpoints.push(snap);
    }

    /// `@au_restore()` over π only — rule RESTORE. The model store θ is
    /// deliberately untouched so learning accumulates.
    ///
    /// # Errors
    ///
    /// [`AuError::NoCheckpoint`] if no checkpoint exists (e.g. after
    /// `pop_checkpoint` emptied the stack).
    pub fn au_restore(&self) -> Result<(), AuError> {
        let _t = t_time!("au_core.au_restore");
        t_count!("au_core.restores");
        {
            let mut d = pi_lock(&self.shared.db);
            let (db, marks) = d.checkpoints.last().cloned().ok_or(AuError::NoCheckpoint)?;
            d.db = db;
            d.label_marks = marks;
        }
        self.invalidate_model_caches();
        Ok(())
    }

    /// Discards the most recent checkpoint (a no-op on an empty stack).
    pub fn pop_checkpoint(&self) {
        pi_lock(&self.shared.db).checkpoints.pop();
    }

    /// Combined ⟨σ, π⟩ checkpoint: clones the host program state `S`
    /// together with π, keeping both consistent as the semantics require.
    pub fn checkpoint_with<S: Clone>(&self, program: &S) -> Checkpoint<S> {
        let d = pi_lock(&self.shared.db);
        Checkpoint {
            program: program.clone(),
            db: d.db.clone(),
            label_marks: d.label_marks.clone(),
        }
    }

    /// Restores a combined checkpoint, returning the program state to
    /// reinstall. θ is untouched.
    pub fn restore_with<S: Clone>(&self, ckpt: &Checkpoint<S>) -> S {
        {
            let mut d = pi_lock(&self.shared.db);
            d.db = ckpt.db.clone();
            d.label_marks = ckpt.label_marks.clone();
        }
        self.invalidate_model_caches();
        ckpt.program.clone()
    }

    /// Drops every model's cached weight views (transposed-weight
    /// tensors). Restores roll program state back while θ keeps learning,
    /// and the rolled-back host may have mutated parameters through any
    /// handle; a stale cached view would serve a transpose of weights that
    /// no longer exist. π lock and entry locks are never held together.
    fn invalidate_model_caches(&self) {
        for entry in self.shared.registry.entries() {
            write(&entry).instance.invalidate_cached_weights();
        }
    }

    // ------------------------------------------------------------------
    // Model persistence and experiment support
    // ------------------------------------------------------------------

    /// Persists a trained model (plus its output-split sidecar) to the
    /// model directory so a TS-mode run can `au_config`-load it.
    ///
    /// # Errors
    ///
    /// [`AuError::UnknownModel`] if unknown, [`AuError::ModelNotTrained`] if
    /// the backend was never built, or [`AuError::Backend`] on I/O failure.
    pub fn save_model(&self, name: &str) -> Result<(), AuError> {
        let dir = self.model_dir_or_cwd();
        std::fs::create_dir_all(&dir).map_err(|e| AuError::Backend(e.into()))?;
        let entry = self
            .shared
            .registry
            .get(name)
            .ok_or_else(|| AuError::UnknownModel(name.to_owned()))?;
        let (net_json, output_split, n_actions) = {
            let g = read(&entry);
            let json = match g.instance.backend.as_ref() {
                Some(Backend::Supervised { net, .. }) => net.to_json(),
                Some(Backend::Reinforcement { agent, .. }) => agent.network().to_json(),
                None => return Err(AuError::ModelNotTrained(name.to_owned())),
            };
            (
                json,
                g.output_split.clone().unwrap_or_default(),
                g.n_actions,
            )
        };
        std::fs::write(dir.join(format!("{name}.json")), net_json)
            .map_err(|e| AuError::Backend(e.into()))?;
        #[cfg(feature = "monitor")]
        let (baseline_mae, feature_baseline) = {
            let st = lock(&self.shared.monitor);
            (
                st.training_mae(name),
                st.training_baseline(name)
                    .as_ref()
                    .map(BaselineMeta::from_baseline),
            )
        };
        #[cfg(not(feature = "monitor"))]
        let (baseline_mae, feature_baseline) = (None, None);
        let meta = ModelMeta {
            output_split,
            n_actions,
            baseline_mae,
            feature_baseline,
        };
        let meta_json = serde_json::to_string(&meta).expect("meta serializes");
        std::fs::write(dir.join(format!("{name}.meta.json")), meta_json)
            .map_err(|e| AuError::Backend(e.into()))?;
        Ok(())
    }

    fn load_model_files(&self, name: &str) -> Result<(Network, ModelMeta), AuError> {
        let dir = self.model_dir_or_cwd();
        let net_path = dir.join(format!("{name}.json"));
        if !net_path.exists() {
            return Err(AuError::ModelNotTrained(name.to_owned()));
        }
        let net = Network::load(&net_path)?;
        let meta_path = dir.join(format!("{name}.meta.json"));
        let meta = if meta_path.exists() {
            let raw =
                std::fs::read_to_string(&meta_path).map_err(|e| AuError::Backend(e.into()))?;
            serde_json::from_str(&raw)
                .map_err(|e| AuError::Backend(au_nn::NnError::Format(e.to_string())))?
        } else {
            ModelMeta {
                output_split: Vec::new(),
                n_actions: 0,
                baseline_mae: None,
                feature_baseline: None,
            }
        };
        Ok((net, meta))
    }

    /// Offline supervised training over a dataset — the paper trains SL
    /// models "offline after execution" on the collected traces. One epoch
    /// performs one gradient step per `(x, y)` pair. Returns the mean loss
    /// of the final epoch.
    ///
    /// # Errors
    ///
    /// Same conditions as [`EngineHandle::au_nn`].
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `ys` lengths differ or the dataset is empty.
    pub fn train_supervised(
        &self,
        model: &str,
        xs: &[Vec<f64>],
        ys: &[Vec<f64>],
        epochs: usize,
    ) -> Result<f64, AuError> {
        assert_eq!(xs.len(), ys.len(), "dataset inputs and labels must pair up");
        assert!(!xs.is_empty(), "dataset must be non-empty");
        let _s = t_span!(
            "train_supervised",
            model = model,
            pairs = xs.len(),
            epochs = epochs
        );
        let _t = t_time!("au_core.train_supervised");
        let entry = self
            .shared
            .registry
            .get(model)
            .ok_or_else(|| AuError::UnknownModel(model.to_owned()))?;
        let last_epoch_loss = {
            let mut g = write(&entry);
            let backend = g
                .instance
                .ensure_supervised(model, xs[0].len(), ys[0].len())?;
            let last_epoch_loss = match backend {
                Backend::Supervised {
                    net,
                    opt,
                    train_steps,
                } => {
                    // One copy-on-write unshare for the whole training run,
                    // not one per gradient step.
                    let net = net_mut(net);
                    let mut last_epoch_loss = 0.0f64;
                    for _ in 0..epochs {
                        let _e = t_time!("au_core.train_epoch");
                        let mut total = 0.0f64;
                        for (x, y) in xs.iter().zip(ys) {
                            total += f64::from(supervised_step(net, opt, x, y));
                            *train_steps += 1;
                        }
                        t_count!("au_core.rows_trained", xs.len() as u64);
                        last_epoch_loss = total / xs.len() as f64;
                        t_gauge!("au_core.last_loss", last_epoch_loss);
                    }
                    last_epoch_loss
                }
                Backend::Reinforcement { .. } => unreachable!("ensure_supervised checked"),
            };
            if g.output_split.is_none() {
                g.output_split = Some(vec![ys[0].len()]);
            }
            last_epoch_loss
        };
        // With monitoring on, one extra pass over the dataset records the
        // trained model's input distribution and per-sample absolute error —
        // the baselines the deployed monitor will compare against.
        #[cfg(feature = "monitor")]
        if self.monitoring_enabled() {
            for (x, y) in xs.iter().zip(ys) {
                let pred = self.predict(model, x)?;
                lock(&self.shared.monitor).observe_training(model, x, mean_abs_err(&pred, y));
            }
        }
        Ok(last_epoch_loss)
    }

    /// Direct prediction bypassing π — used by experiment harnesses to
    /// score models on held-out inputs. Runs entirely under the model's
    /// read lock.
    ///
    /// # Errors
    ///
    /// [`AuError::UnknownModel`] or [`AuError::ModelNotTrained`].
    pub fn predict(&self, model: &str, x: &[f64]) -> Result<Vec<f64>, AuError> {
        let _s = t_span!("predict", model = model);
        let _t = t_time!("au_core.predict");
        t_count!("au_core.predictions_served");
        let entry = self
            .shared
            .registry
            .get(model)
            .ok_or_else(|| AuError::UnknownModel(model.to_owned()))?;
        let g = read(&entry);
        match g.instance.backend.as_ref() {
            Some(Backend::Supervised { net, .. }) => Ok(run_model_ref(net, x)),
            Some(Backend::Reinforcement { agent, .. }) => Ok(agent
                .q_values_ref(&to_f32(x))
                .into_iter()
                .map(f64::from)
                .collect()),
            None => Err(AuError::ModelNotTrained(model.to_owned())),
        }
    }

    /// Batched [`EngineHandle::predict`]: one registry lookup, one read
    /// lock, and one `[batch, features]` forward pass for the whole slice,
    /// amortizing per-call overhead across the batch.
    ///
    /// # Errors
    ///
    /// [`AuError::UnknownModel`], [`AuError::ModelNotTrained`], or
    /// [`AuError::InputSizeChanged`] if any row's width differs from the
    /// built network's input width.
    pub fn predict_batch(&self, model: &str, xs: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, AuError> {
        let _s = t_span!("predict_batch", model = model, rows = xs.len());
        let _t = t_time!("au_core.predict_batch");
        if xs.is_empty() {
            return Ok(Vec::new());
        }
        let entry = self
            .shared
            .registry
            .get(model)
            .ok_or_else(|| AuError::UnknownModel(model.to_owned()))?;
        let g = read(&entry);
        // Supervised models share an `Arc<Network>`: clone the handle and
        // release the read lock, so the batch runs on the persistent pool
        // (jobs are `'static`) without holding the model entry.
        let pooled = match g.instance.backend.as_ref() {
            Some(Backend::Supervised { net, .. }) => Some(Arc::clone(net)),
            Some(Backend::Reinforcement { .. }) => None,
            None => return Err(AuError::ModelNotTrained(model.to_owned())),
        };
        if let Some(net) = pooled {
            drop(g);
            let width = net.in_features();
            check_batch_widths(model, xs, width)?;
            // One f64→f32 conversion pass over the whole batch; pool jobs
            // slice it read-only. Per-range tensor contents are exactly
            // what the old borrowed path built, and every kernel preserves
            // per-element accumulation order, so the result is bit-identical
            // to one full-batch forward pass for every thread count. Inside
            // a worker the kernels themselves stay serial (nested-region
            // suppression); with a single range this runs inline and the
            // kernels may parallelize instead.
            let mut flat = Vec::with_capacity(xs.len() * width);
            for x in xs {
                flat.extend(x.iter().map(|&v| v as f32));
            }
            let flat = Arc::new(flat);
            let chunks = au_par::pool_map_ranges(xs.len(), PREDICT_MIN_ROWS, move |r| {
                let rows = r.len();
                let batch = Tensor::from_vec(
                    &[rows, width],
                    flat[r.start * width..r.end * width].to_vec(),
                );
                let out = net.infer(&batch);
                (0..rows)
                    .map(|i| out.row_slice(i).iter().map(|&v| f64::from(v)).collect())
                    .collect::<Vec<Vec<f64>>>()
            });
            t_count!("au_core.predictions_served", xs.len() as u64);
            return Ok(chunks.into_iter().flatten().collect());
        }
        // RL agents expose only a borrowed view of their network, so the
        // batch fans out on the borrowing scoped path under the read lock.
        let net = match g.instance.backend.as_ref() {
            Some(Backend::Reinforcement { agent, .. }) => agent.network(),
            _ => unreachable!("checked above"),
        };
        let width = net.in_features();
        check_batch_widths(model, xs, width)?;
        let chunks = au_par::par_map_ranges(xs.len(), PREDICT_MIN_ROWS, |r| {
            let rows = &xs[r];
            let mut flat = Vec::with_capacity(rows.len() * width);
            for x in rows {
                flat.extend(x.iter().map(|&v| v as f32));
            }
            let batch = Tensor::from_vec(&[rows.len(), width], flat);
            let out = net.infer(&batch);
            (0..rows.len())
                .map(|i| out.row_slice(i).iter().map(|&v| f64::from(v)).collect())
                .collect::<Vec<Vec<f64>>>()
        });
        t_count!("au_core.predictions_served", xs.len() as u64);
        Ok(chunks.into_iter().flatten().collect())
    }

    /// Native-`f32` [`EngineHandle::predict`]: no `f64` boundary
    /// conversions at all. See [`EngineHandle::predict_f32_into`] for the
    /// allocation-free form.
    ///
    /// # Errors
    ///
    /// Same conditions as [`EngineHandle::predict_f32_into`].
    pub fn predict_f32(&self, model: &str, x: &[f32]) -> Result<Vec<f32>, AuError> {
        let mut out = Vec::new();
        self.predict_f32_into(model, x, &mut out)?;
        Ok(out)
    }

    /// The hot serving path: runs the model on one `f32` feature row,
    /// appending the outputs to `out`. All intermediate buffers come from
    /// per-thread scratch, so the steady state performs **zero** heap
    /// allocations and zero `f64`↔`f32` conversions. Runs entirely under
    /// the model's read lock; cloned handles serve concurrently.
    ///
    /// # Errors
    ///
    /// [`AuError::UnknownModel`], [`AuError::ModelNotTrained`], or
    /// [`AuError::InputSizeChanged`] if `x`'s width differs from the built
    /// network's input width.
    pub fn predict_f32_into(
        &self,
        model: &str,
        x: &[f32],
        out: &mut Vec<f32>,
    ) -> Result<(), AuError> {
        let _s = t_span!("predict_f32", model = model);
        let _t = t_time!("au_core.predict_f32");
        t_count!("au_core.predictions_served");
        let entry = self
            .shared
            .registry
            .get(model)
            .ok_or_else(|| AuError::UnknownModel(model.to_owned()))?;
        let g = read(&entry);
        match g.instance.backend.as_ref() {
            Some(Backend::Supervised { net, .. }) => {
                if net.in_features() != x.len() {
                    return Err(AuError::InputSizeChanged {
                        model: model.to_owned(),
                        built: net.in_features(),
                        got: x.len(),
                    });
                }
                run_model_f32_into(net, x, out);
                Ok(())
            }
            Some(Backend::Reinforcement { agent, .. }) => {
                if agent.state_dim() != x.len() {
                    return Err(AuError::InputSizeChanged {
                        model: model.to_owned(),
                        built: agent.state_dim(),
                        got: x.len(),
                    });
                }
                out.extend(agent.q_values_ref(x));
                Ok(())
            }
            None => Err(AuError::ModelNotTrained(model.to_owned())),
        }
    }

    /// Native-`f32` [`EngineHandle::predict_batch`] over a flat row-major
    /// matrix: `xs.len()` must be a multiple of the model's input width,
    /// and the result is the flat row-major `[rows × out_width]` output.
    /// Supervised batches fan out across the persistent worker pool.
    ///
    /// # Errors
    ///
    /// [`AuError::UnknownModel`], [`AuError::ModelNotTrained`], or
    /// [`AuError::InputSizeChanged`] if `xs.len()` is not a multiple of the
    /// built network's input width.
    pub fn predict_batch_f32(&self, model: &str, xs: &[f32]) -> Result<Vec<f32>, AuError> {
        let _t = t_time!("au_core.predict_batch");
        if xs.is_empty() {
            return Ok(Vec::new());
        }
        let entry = self
            .shared
            .registry
            .get(model)
            .ok_or_else(|| AuError::UnknownModel(model.to_owned()))?;
        let g = read(&entry);
        let pooled = match g.instance.backend.as_ref() {
            Some(Backend::Supervised { net, .. }) => Some(Arc::clone(net)),
            Some(Backend::Reinforcement { .. }) => None,
            None => return Err(AuError::ModelNotTrained(model.to_owned())),
        };
        let infer_chunk = |net: &Network, chunk: &[f32], width: usize| {
            let rows = chunk.len() / width;
            let batch = Tensor::from_vec(&[rows, width], chunk.to_vec());
            net.infer(&batch).into_vec()
        };
        if let Some(net) = pooled {
            drop(g);
            let width = net.in_features();
            let rows = check_flat_width(model, xs, width)?;
            t_count!("au_core.predictions_served", rows as u64);
            if rows <= PREDICT_MIN_ROWS {
                // A batch this small is always a single range: skip the
                // shared-`Arc` copy and feed the caller's rows directly.
                return Ok(infer_chunk(&net, xs, width));
            }
            let flat: Arc<Vec<f32>> = Arc::new(xs.to_vec());
            let chunks = au_par::pool_map_ranges(rows, PREDICT_MIN_ROWS, move |r| {
                infer_chunk(&net, &flat[r.start * width..r.end * width], width)
            });
            return Ok(chunks.concat());
        }
        let net = match g.instance.backend.as_ref() {
            Some(Backend::Reinforcement { agent, .. }) => agent.network(),
            _ => unreachable!("checked above"),
        };
        let width = net.in_features();
        let rows = check_flat_width(model, xs, width)?;
        t_count!("au_core.predictions_served", rows as u64);
        let chunks = au_par::par_map_ranges(rows, PREDICT_MIN_ROWS, |r| {
            infer_chunk(net, &xs[r.start * width..r.end * width], width)
        });
        Ok(chunks.concat())
    }

    /// Size/training statistics for a built model (Table 2's model size).
    pub fn model_stats(&self, name: &str) -> Option<ModelStats> {
        let entry = self.shared.registry.get(name)?;
        let mut g = write(&entry);
        g.instance.stats()
    }

    /// Names of configured models, sorted.
    pub fn model_names(&self) -> Vec<String> {
        self.shared.registry.names()
    }

    /// Registered-model count per registry shard, in shard order — the θ
    /// occupancy stats the observability plane reports on `/health`.
    pub fn registry_shard_sizes(&self) -> Vec<usize> {
        self.shared.registry.shard_sizes()
    }

    /// Human-readable report of the global telemetry recorder: every
    /// counter, gauge, and latency histogram the runtime has touched.
    /// Returns an empty-ish header until `au_telemetry::enable()` has been
    /// called and instrumented paths have run.
    #[cfg(feature = "telemetry")]
    pub fn telemetry_report(&self) -> String {
        au_telemetry::global().summary()
    }

    // ------------------------------------------------------------------
    // Monitoring (the `monitor` feature)
    // ------------------------------------------------------------------

    /// Switches prediction-quality monitoring on for this runtime.
    ///
    /// Call *before* `au_config` in TS mode so loaded models pick up their
    /// persisted training baselines. In TR mode the runtime accumulates
    /// baselines from the training stream and persists them with
    /// [`EngineHandle::save_model`]; an in-process TR→TS switch hands them
    /// to the monitor directly. Runtimes created after
    /// [`crate::set_default_monitor_config`] start monitored automatically.
    #[cfg(feature = "monitor")]
    pub fn set_monitor_config(&self, config: au_monitor::MonitorConfig) {
        lock(&self.shared.monitor).config = Some(config);
    }

    /// Whether monitoring is active on this runtime.
    #[cfg(feature = "monitor")]
    pub fn monitoring_enabled(&self) -> bool {
        lock(&self.shared.monitor).enabled()
    }

    /// The live monitor for a model, once it has served in TS mode.
    /// Returns a guard ([`MonitorRef`]) — drop it before the next serving
    /// call.
    #[cfg(feature = "monitor")]
    pub fn monitor(&self, model: &str) -> Option<MonitorRef<'_>> {
        let guard = lock(&self.shared.monitor);
        if guard.monitors.contains_key(model) {
            Some(MonitorRef {
                guard,
                model: model.to_owned(),
            })
        } else {
            None
        }
    }

    /// Re-arms a model degraded by the fallback policy (e.g. after
    /// retraining, or an operator decision to trust it again).
    #[cfg(feature = "monitor")]
    pub fn clear_degraded(&self, model: &str) {
        if let Some(m) = lock(&self.shared.monitor).monitors.get_mut(model) {
            m.clear_degraded();
            #[cfg(feature = "telemetry")]
            if au_telemetry::enabled() {
                au_telemetry::global()
                    .gauge(&format!("au_monitor.{model}.degraded"))
                    .set(0.0);
            }
        }
    }

    /// Human-readable monitoring report across every observed model — the
    /// monitoring sibling of [`EngineHandle::telemetry_report`].
    #[cfg(feature = "monitor")]
    pub fn monitor_report(&self) -> String {
        let st = lock(&self.shared.monitor);
        let mut out = String::from("== monitor report ==\n");
        if !st.enabled() {
            out.push_str("(monitoring disabled)\n");
            return out;
        }
        if st.monitors.is_empty() {
            out.push_str("(no models observed in TS mode yet)\n");
            return out;
        }
        for (name, m) in &st.monitors {
            out.push_str(&format!("  {name}: {}\n", m.report()));
        }
        out
    }

    /// Structured monitoring reports for every observed model, in name
    /// order — the machine-readable sibling of
    /// [`EngineHandle::monitor_report`], consumed by the observability
    /// plane's `/health` and `/snapshot.json` endpoints.
    #[cfg(feature = "monitor")]
    pub fn monitor_reports(&self) -> Vec<(String, au_monitor::MonitorReport)> {
        let st = lock(&self.shared.monitor);
        st.monitors
            .iter()
            .map(|(name, m)| (name.clone(), m.report()))
            .collect()
    }

    /// Names of models the fallback policy has currently degraded.
    #[cfg(feature = "monitor")]
    pub fn degraded_models(&self) -> Vec<String> {
        let st = lock(&self.shared.monitor);
        st.monitors
            .iter()
            .filter(|(_, m)| m.is_degraded())
            .map(|(name, _)| name.clone())
            .collect()
    }

    /// Dumps a model's flight recorder to `<model>.flight.jsonl` in the
    /// model directory, returning the path. Also invoked automatically when
    /// a critical alert fires.
    ///
    /// # Errors
    ///
    /// [`AuError::UnknownModel`] if the model has no monitor yet;
    /// [`AuError::Backend`] on I/O failure.
    #[cfg(feature = "monitor")]
    pub fn dump_flight_recorder(&self, model: &str) -> Result<PathBuf, AuError> {
        let buf = {
            let st = lock(&self.shared.monitor);
            let mon = st
                .monitors
                .get(model)
                .ok_or_else(|| AuError::UnknownModel(model.to_owned()))?;
            let mut buf = Vec::new();
            mon.flight()
                .write_jsonl(&mut buf)
                .map_err(|e| AuError::Backend(e.into()))?;
            buf
        };
        self.write_flight_dump(model, &buf)
    }

    /// Writes already serialized flight-recorder bytes with no lock held.
    #[cfg(feature = "monitor")]
    fn write_flight_dump(&self, model: &str, buf: &[u8]) -> Result<PathBuf, AuError> {
        let dir = self.model_dir_or_cwd();
        std::fs::create_dir_all(&dir).map_err(|e| AuError::Backend(e.into()))?;
        let path = dir.join(format!("{model}.flight.jsonl"));
        std::fs::write(&path, buf).map_err(|e| AuError::Backend(e.into()))?;
        Ok(path)
    }

    /// Whether the fallback policy has already degraded `model`.
    #[cfg(feature = "monitor")]
    pub(crate) fn monitor_degraded(&self, model: &str) -> bool {
        lock(&self.shared.monitor)
            .monitors
            .get(model)
            .is_some_and(au_monitor::ModelMonitor::is_degraded)
    }

    /// Feeds one TS-mode observation to the model's monitor, emits any
    /// newly raised alerts, dumps the flight recorder on a critical alert,
    /// and returns whether the model is now degraded (fallback policy).
    #[cfg(feature = "monitor")]
    fn monitor_observe(
        &self,
        model: &str,
        features: &[f64],
        prediction: &[f64],
        outcome: Option<&[f64]>,
    ) -> bool {
        // The lifetime extracted-scalar count doubles as a correlation id:
        // it lines the flight record up with the trace position at serve
        // time (spans have no exposed ids).
        let corr = self.shared.extracted_total.load(Ordering::Relaxed);
        let (flight, degraded) = {
            let mut st = lock(&self.shared.monitor);
            match st.ensure_monitor(model) {
                Some(mon) => {
                    let alerts = mon.observe(features, prediction, outcome, corr);
                    let critical = alerts
                        .iter()
                        .any(|a| a.level == au_monitor::AlertLevel::Critical);
                    crate::monitoring::emit_alerts(model, &alerts);
                    // Black-box discipline: persist the moments leading up
                    // to the incident while they are still in the ring
                    // buffer. Serialize under the lock, write the file after
                    // release (the monitor mutex is not re-entrant).
                    let flight = if critical {
                        let mut buf = Vec::new();
                        match mon.flight().write_jsonl(&mut buf) {
                            Ok(()) => Some(buf),
                            Err(e) => {
                                eprintln!(
                                    "au_core.monitor: flight-recorder dump for `{model}` failed: {e}"
                                );
                                None
                            }
                        }
                    } else {
                        None
                    };
                    #[cfg(feature = "telemetry")]
                    publish_monitor_gauges(model, mon);
                    (flight, mon.is_degraded())
                }
                None => (None, false),
            }
        };
        if let Some(buf) = flight {
            if let Err(e) = self.write_flight_dump(model, &buf) {
                eprintln!("au_core.monitor: flight-recorder dump for `{model}` failed: {e}");
            }
        }
        degraded
    }
}

/// Mirrors one model's monitor state into live gauges
/// (`au_monitor.<model>.rolling_mae` / `.drift_score` / `.flight_depth` /
/// `.degraded`) so the observability plane's `/metrics` scrape sees the
/// current values without locking the monitor map. Gauge names are built
/// per model, so this goes through `au_telemetry::global()` directly
/// rather than the per-callsite-cached `t_gauge!` shim.
#[cfg(all(feature = "monitor", feature = "telemetry"))]
fn publish_monitor_gauges(model: &str, mon: &au_monitor::ModelMonitor) {
    if !au_telemetry::enabled() {
        return;
    }
    let rec = au_telemetry::global();
    if let Some(mae) = mon.quality().rolling_mae() {
        rec.gauge(&format!("au_monitor.{model}.rolling_mae"))
            .set(mae);
    }
    if let Some(drift) = mon.last_drift() {
        rec.gauge(&format!("au_monitor.{model}.drift_score"))
            .set(drift.score);
    }
    rec.gauge(&format!("au_monitor.{model}.flight_depth"))
        .set(mon.flight().len() as f64);
    rec.gauge(&format!("au_monitor.{model}.degraded"))
        .set(if mon.is_degraded() { 1.0 } else { 0.0 });
}

/// A reusable `f32` feature-vector staging buffer for the native-`f32`
/// serving path: host code pushes the frame's features, hands the buffer
/// to [`EngineHandle::au_extract_buffer`] (or reads it back with
/// [`FeatureBuffer::as_slice`] for [`EngineHandle::predict_f32_into`]),
/// and reuses the allocation every frame.
#[derive(Debug, Clone, Default)]
pub struct FeatureBuffer {
    values: Vec<f32>,
}

impl FeatureBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        FeatureBuffer::default()
    }

    /// An empty buffer with room for `cap` features.
    pub fn with_capacity(cap: usize) -> Self {
        FeatureBuffer {
            values: Vec::with_capacity(cap),
        }
    }

    /// Stages one feature value.
    pub fn push(&mut self, value: f32) {
        self.values.push(value);
    }

    /// Stages a slice of feature values.
    pub fn extend_from_slice(&mut self, values: &[f32]) {
        self.values.extend_from_slice(values);
    }

    /// The staged features, in push order.
    pub fn as_slice(&self) -> &[f32] {
        &self.values
    }

    /// Number of staged features.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Clears the staged features, keeping the allocation.
    pub fn clear(&mut self) {
        self.values.clear();
    }
}

/// Checks every row of a nested batch against the built input width.
fn check_batch_widths(model: &str, xs: &[Vec<f64>], width: usize) -> Result<(), AuError> {
    for x in xs {
        if x.len() != width {
            return Err(AuError::InputSizeChanged {
                model: model.to_owned(),
                built: width,
                got: x.len(),
            });
        }
    }
    Ok(())
}

/// Checks a flat row-major batch divides evenly into `width`-wide rows,
/// returning the row count.
fn check_flat_width(model: &str, xs: &[f32], width: usize) -> Result<usize, AuError> {
    if width == 0 || !xs.len().is_multiple_of(width) {
        return Err(AuError::InputSizeChanged {
            model: model.to_owned(),
            built: width,
            got: xs.len(),
        });
    }
    Ok(xs.len() / width)
}

/// Mean absolute element-wise error over the overlapping prefix; `None`
/// when either side is empty.
#[cfg(feature = "monitor")]
fn mean_abs_err(prediction: &[f64], truth: &[f64]) -> Option<f64> {
    let n = prediction.len().min(truth.len());
    if n == 0 {
        return None;
    }
    let sum: f64 = prediction
        .iter()
        .zip(truth.iter())
        .map(|(p, t)| (p - t).abs())
        .sum();
    Some(sum / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_is_send_sync_and_clone() {
        fn assert_bounds<T: Send + Sync + Clone>() {}
        assert_bounds::<EngineHandle>();
    }

    #[test]
    fn clones_share_state() {
        let h = EngineHandle::new(Mode::Train);
        let h2 = h.clone();
        h.au_extract("A", &[1.0, 2.0]);
        assert_eq!(h2.db().get("A"), &[1.0, 2.0]);
        h2.set_mode(Mode::Test);
        assert_eq!(h.mode(), Mode::Test);
        assert_eq!(h.total_extracted(), 2);
    }

    #[test]
    fn predict_batch_matches_predict() {
        au_nn::set_init_seed(77);
        let h = EngineHandle::new(Mode::Train);
        h.au_config("M", ModelConfig::dnn(&[8])).unwrap();
        let xs: Vec<Vec<f64>> = (0..6)
            .map(|i| vec![i as f64 / 6.0, 1.0 - i as f64 / 6.0])
            .collect();
        let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![x[0] * 2.0]).collect();
        h.train_supervised("M", &xs, &ys, 5).unwrap();
        let batched = h.predict_batch("M", &xs).unwrap();
        for (x, row) in xs.iter().zip(&batched) {
            assert_eq!(&h.predict("M", x).unwrap(), row);
        }
    }

    #[test]
    fn predict_batch_checks_width() {
        au_nn::set_init_seed(78);
        let h = EngineHandle::new(Mode::Train);
        h.au_config("M", ModelConfig::dnn(&[4])).unwrap();
        h.train_supervised("M", &[vec![0.1, 0.2]], &[vec![0.3]], 1)
            .unwrap();
        assert!(h.predict_batch("M", &[]).unwrap().is_empty());
        assert!(matches!(
            h.predict_batch("M", &[vec![0.1, 0.2], vec![0.5]]),
            Err(AuError::InputSizeChanged {
                built: 2,
                got: 1,
                ..
            })
        ));
    }
}
