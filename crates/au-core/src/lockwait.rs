//! Contention observability for the runtime's two hottest shared locks:
//! the π-store mutex ([`crate::handle`]'s `shared.db`) and the registry
//! shard `RwLock`s.
//!
//! Each wrapper tries the lock first; the uncontended fast path is one
//! `try_lock` (no clock read, no recorder touch). Only when that fails
//! does it time the blocking acquire and record the wait into a
//! histogram plus a contended-acquisition counter on the global
//! recorder:
//!
//! | series                        | kind      | meaning                          |
//! |-------------------------------|-----------|----------------------------------|
//! | `au_core.pi_lock_wait`        | histogram | ns blocked on the π-store mutex  |
//! | `au_core.pi_lock_contended`   | counter   | contended π-store acquisitions   |
//! | `au_core.shard_lock_wait`     | histogram | ns blocked on a registry shard   |
//! | `au_core.shard_lock_contended`| counter   | contended shard acquisitions     |
//!
//! Poisoning recovers via `into_inner` exactly like the plain helpers in
//! [`crate::registry`]. Without the `telemetry` feature the wrappers
//! *are* the plain helpers.

#[cfg(feature = "telemetry")]
use std::sync::OnceLock;
#[cfg(feature = "telemetry")]
use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, TryLockError};

#[cfg(not(feature = "telemetry"))]
pub(crate) use crate::registry::lock as pi_lock;
#[cfg(not(feature = "telemetry"))]
pub(crate) use crate::registry::read as shard_read;
#[cfg(not(feature = "telemetry"))]
pub(crate) use crate::registry::write as shard_write;

/// One instrumented lock site: lazily registered histogram + counter.
#[cfg(feature = "telemetry")]
struct Site {
    wait: &'static str,
    contended: &'static str,
    cell: OnceLock<(au_telemetry::Histogram, au_telemetry::Counter)>,
}

#[cfg(feature = "telemetry")]
impl Site {
    const fn new(wait: &'static str, contended: &'static str) -> Self {
        Site {
            wait,
            contended,
            cell: OnceLock::new(),
        }
    }

    fn record(&self, ns: u64) {
        let (hist, count) = self.cell.get_or_init(|| {
            (
                au_telemetry::histogram(self.wait),
                au_telemetry::counter(self.contended),
            )
        });
        hist.record(ns);
        count.add(1);
    }
}

#[cfg(feature = "telemetry")]
static PI: Site = Site::new("au_core.pi_lock_wait", "au_core.pi_lock_contended");
#[cfg(feature = "telemetry")]
static SHARD: Site = Site::new("au_core.shard_lock_wait", "au_core.shard_lock_contended");

/// Locks the π-store mutex, timing the wait when contended.
#[cfg(feature = "telemetry")]
pub(crate) fn pi_lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.try_lock() {
        Ok(g) => return g,
        Err(TryLockError::Poisoned(e)) => return e.into_inner(),
        Err(TryLockError::WouldBlock) => {}
    }
    timed(&PI, || crate::registry::lock(m))
}

/// Read-locks a registry shard, timing the wait when contended.
#[cfg(feature = "telemetry")]
pub(crate) fn shard_read<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    match l.try_read() {
        Ok(g) => return g,
        Err(TryLockError::Poisoned(e)) => return e.into_inner(),
        Err(TryLockError::WouldBlock) => {}
    }
    timed(&SHARD, || crate::registry::read(l))
}

/// Write-locks a registry shard, timing the wait when contended.
#[cfg(feature = "telemetry")]
pub(crate) fn shard_write<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    match l.try_write() {
        Ok(g) => return g,
        Err(TryLockError::Poisoned(e)) => return e.into_inner(),
        Err(TryLockError::WouldBlock) => {}
    }
    timed(&SHARD, || crate::registry::write(l))
}

/// Times a blocking acquire; skips the recorder (but still acquires)
/// when telemetry capture is globally off.
#[cfg(feature = "telemetry")]
fn timed<G>(site: &Site, acquire: impl FnOnce() -> G) -> G {
    if !au_telemetry::enabled() {
        return acquire();
    }
    let start = std::time::Instant::now();
    let g = acquire();
    site.record(start.elapsed().as_nanos() as u64);
    g
}
