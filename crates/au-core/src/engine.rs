//! The single-owner facade over the layered Autonomizer runtime.
//!
//! [`Engine`] keeps the original exclusive-ownership API (`&mut self`
//! primitives) that host programs, AuLang, and the benchmark harnesses were
//! written against, while delegating every operation to a
//! [`crate::EngineHandle`] — the cloneable, `&self` entry point for
//! concurrent serving. Call [`Engine::handle`] to fan the same runtime out
//! across threads.

use crate::error::AuError;
use crate::handle::{Checkpoint, DbRef, EngineHandle, Mode};
use crate::model::{ModelConfig, ModelStats};
use au_nn::Network;
use std::path::PathBuf;

/// The Autonomizer runtime: database store π, model store θ, and the
/// primitive operations of the paper's execution model.
///
/// One engine serves one program; it supports multiple named model instances
/// (the paper: "Autonomizer supports multiple model instances in one
/// execution"). Internally this is a thin facade over [`EngineHandle`];
/// [`Engine::handle`] exposes the shared runtime for multi-threaded serving.
#[derive(Debug)]
pub struct Engine {
    handle: EngineHandle,
}

impl Engine {
    /// Creates an engine in the given mode.
    pub fn new(mode: Mode) -> Self {
        Engine {
            handle: EngineHandle::new(mode),
        }
    }

    /// A cloneable handle to this engine's shared runtime. Clones serve
    /// predictions concurrently from `&self`; they observe (and make)
    /// exactly the same state changes as calls through this facade.
    pub fn handle(&self) -> EngineHandle {
        self.handle.clone()
    }

    /// Consumes the facade, returning the underlying handle.
    pub fn into_handle(self) -> EngineHandle {
        self.handle
    }

    /// Current execution mode.
    pub fn mode(&self) -> Mode {
        self.handle.mode()
    }

    /// Switches mode (e.g. finish training, then deploy in the same
    /// process — the in-process equivalent of the paper's two executables).
    pub fn set_mode(&mut self, mode: Mode) {
        self.handle.set_mode(mode);
    }

    /// Directory used to persist and load trained models.
    pub fn set_model_dir(&mut self, dir: impl Into<PathBuf>) {
        self.handle.set_model_dir(dir);
    }

    /// Read access to the database store π. Returns a lock guard — drop it
    /// before the next primitive call.
    pub fn db(&self) -> DbRef<'_> {
        self.handle.db()
    }

    // ------------------------------------------------------------------
    // Primitives (see EngineHandle for the full rule-by-rule docs)
    // ------------------------------------------------------------------

    /// `@au_config(modelName, modelType, algo, layers, n1, …)` — rules
    /// CONFIG-TRAIN and CONFIG-TEST.
    ///
    /// # Errors
    ///
    /// [`AuError::ModelExists`] if the name is taken by a *different*
    /// configuration; [`AuError::ModelNotTrained`] in TS mode when no saved
    /// model exists; [`AuError::Backend`] if a saved model fails to parse.
    pub fn au_config(&mut self, name: &str, config: ModelConfig) -> Result<(), AuError> {
        self.handle.au_config(name, config)
    }

    /// `au_config` with a caller-built network — the paper's escape hatch
    /// for arbitrary architectures.
    ///
    /// # Errors
    ///
    /// [`AuError::ModelExists`] if the name is already configured.
    pub fn au_config_custom(
        &mut self,
        name: &str,
        algorithm: crate::model::Algorithm,
        network: Network,
    ) -> Result<(), AuError> {
        self.handle.au_config_custom(name, algorithm, network)
    }

    /// Persists the database store π to a JSON file.
    ///
    /// # Errors
    ///
    /// [`AuError::Backend`] on I/O failure.
    pub fn save_db(&self, path: impl AsRef<std::path::Path>) -> Result<(), AuError> {
        self.handle.save_db(path)
    }

    /// Loads a database store saved by [`Engine::save_db`], replacing π.
    ///
    /// # Errors
    ///
    /// [`AuError::Backend`] on I/O failure or malformed content.
    pub fn load_db(&mut self, path: impl AsRef<std::path::Path>) -> Result<(), AuError> {
        self.handle.load_db(path)
    }

    /// `@au_extract(extName, size, data)` — rule EXTRACT.
    pub fn au_extract(&mut self, name: &str, values: &[f64]) {
        self.handle.au_extract(name, values);
    }

    /// `@au_extract` for native-`f32` feature vectors — see
    /// [`EngineHandle::au_extract_f32`].
    pub fn au_extract_f32(&mut self, name: &str, values: &[f32]) {
        self.handle.au_extract_f32(name, values);
    }

    /// Extracts a staged [`crate::FeatureBuffer`] under `name` and clears
    /// the buffer, keeping its allocation for the next frame.
    pub fn au_extract_buffer(&mut self, name: &str, buf: &mut crate::FeatureBuffer) {
        self.handle.au_extract_buffer(name, buf);
    }

    /// Lifetime count of scalars extracted through [`Engine::au_extract`]
    /// (the paper's Table 2 trace-size metric; survives restores).
    pub fn total_extracted(&self) -> u64 {
        self.handle.total_extracted()
    }

    /// `@au_serialize(t1, t2, …)` — rule SERIALIZE. Component lists are
    /// consumed; returns the combined name.
    pub fn au_serialize(&mut self, names: &[&str]) -> String {
        self.handle.au_serialize(names)
    }

    /// `@au_NN(modelName, extName, wbName1, …)` for supervised models —
    /// rules TRAIN and TEST.
    ///
    /// # Errors
    ///
    /// [`AuError::UnknownModel`], [`AuError::MissingData`], or
    /// [`AuError::WrongAlgorithm`] — see [`EngineHandle::au_nn`].
    pub fn au_nn(&mut self, model: &str, ext: &str, wbs: &[&str]) -> Result<Vec<f64>, AuError> {
        self.handle.au_nn(model, ext, wbs)
    }

    /// `@au_NN(modelName, extName, reward, term, wbName)` for Q-learning
    /// models — the RL form used by the paper's game loop (Fig. 2).
    ///
    /// # Errors
    ///
    /// [`AuError::UnknownModel`], [`AuError::MissingData`], or
    /// [`AuError::WrongAlgorithm`] — see [`EngineHandle::au_nn_rl`].
    pub fn au_nn_rl(
        &mut self,
        model: &str,
        ext: &str,
        reward: f64,
        terminal: bool,
        wb: &str,
        n_actions: usize,
    ) -> Result<usize, AuError> {
        self.handle
            .au_nn_rl(model, ext, reward, terminal, wb, n_actions)
    }

    /// `@au_write_back(wbName, size, x)` — rule WRITE-BACK.
    ///
    /// # Errors
    ///
    /// [`AuError::MissingData`] if π(`name`) holds fewer values than
    /// requested.
    pub fn au_write_back(&mut self, name: &str, dst: &mut [f64]) -> Result<(), AuError> {
        self.handle.au_write_back(name, dst)
    }

    /// Scalar convenience form of [`Engine::au_write_back`].
    ///
    /// # Errors
    ///
    /// [`AuError::MissingData`] if π(`name`) is empty.
    pub fn au_write_back_scalar(&mut self, name: &str) -> Result<f64, AuError> {
        self.handle.au_write_back_scalar(name)
    }

    /// `@au_checkpoint()` over π only — rule CHECKPOINT.
    pub fn au_checkpoint(&mut self) {
        self.handle.au_checkpoint();
    }

    /// `@au_restore()` over π only — rule RESTORE. θ is untouched.
    ///
    /// # Errors
    ///
    /// [`AuError::NoCheckpoint`] if no checkpoint exists (e.g. after
    /// `pop_checkpoint` emptied the stack).
    pub fn au_restore(&mut self) -> Result<(), AuError> {
        self.handle.au_restore()
    }

    /// Discards the most recent checkpoint (a no-op on an empty stack).
    pub fn pop_checkpoint(&mut self) {
        self.handle.pop_checkpoint();
    }

    /// Combined ⟨σ, π⟩ checkpoint: clones the host program state `S`
    /// together with π.
    pub fn checkpoint_with<S: Clone>(&self, program: &S) -> Checkpoint<S> {
        self.handle.checkpoint_with(program)
    }

    /// Restores a combined checkpoint, returning the program state to
    /// reinstall. θ is untouched.
    pub fn restore_with<S: Clone>(&mut self, ckpt: &Checkpoint<S>) -> S {
        self.handle.restore_with(ckpt)
    }

    // ------------------------------------------------------------------
    // Model persistence and experiment support
    // ------------------------------------------------------------------

    /// Persists a trained model (plus its output-split sidecar) to the
    /// model directory so a TS-mode run can `au_config`-load it.
    ///
    /// # Errors
    ///
    /// [`AuError::UnknownModel`], [`AuError::ModelNotTrained`], or
    /// [`AuError::Backend`] on I/O failure.
    pub fn save_model(&mut self, name: &str) -> Result<(), AuError> {
        self.handle.save_model(name)
    }

    /// Offline supervised training over a dataset. Returns the mean loss of
    /// the final epoch.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Engine::au_nn`].
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `ys` lengths differ or the dataset is empty.
    pub fn train_supervised(
        &mut self,
        model: &str,
        xs: &[Vec<f64>],
        ys: &[Vec<f64>],
        epochs: usize,
    ) -> Result<f64, AuError> {
        self.handle.train_supervised(model, xs, ys, epochs)
    }

    /// Direct prediction bypassing π — used by experiment harnesses to
    /// score models on held-out inputs.
    ///
    /// # Errors
    ///
    /// [`AuError::UnknownModel`] or [`AuError::ModelNotTrained`].
    pub fn predict(&mut self, model: &str, x: &[f64]) -> Result<Vec<f64>, AuError> {
        self.handle.predict(model, x)
    }

    /// Batched [`Engine::predict`]: one lock and one `[batch, features]`
    /// forward pass for the whole slice.
    ///
    /// # Errors
    ///
    /// [`AuError::UnknownModel`], [`AuError::ModelNotTrained`], or
    /// [`AuError::InputSizeChanged`] on a row-width mismatch.
    pub fn predict_batch(
        &mut self,
        model: &str,
        xs: &[Vec<f64>],
    ) -> Result<Vec<Vec<f64>>, AuError> {
        self.handle.predict_batch(model, xs)
    }

    /// Native-`f32` [`Engine::predict`] — no `f64` boundary conversions.
    ///
    /// # Errors
    ///
    /// Same conditions as [`EngineHandle::predict_f32_into`].
    pub fn predict_f32(&mut self, model: &str, x: &[f32]) -> Result<Vec<f32>, AuError> {
        self.handle.predict_f32(model, x)
    }

    /// Allocation-free native-`f32` prediction — see
    /// [`EngineHandle::predict_f32_into`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`EngineHandle::predict_f32_into`].
    pub fn predict_f32_into(
        &mut self,
        model: &str,
        x: &[f32],
        out: &mut Vec<f32>,
    ) -> Result<(), AuError> {
        self.handle.predict_f32_into(model, x, out)
    }

    /// Native-`f32` [`Engine::predict_batch`] over a flat row-major matrix
    /// — see [`EngineHandle::predict_batch_f32`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`EngineHandle::predict_batch_f32`].
    pub fn predict_batch_f32(&mut self, model: &str, xs: &[f32]) -> Result<Vec<f32>, AuError> {
        self.handle.predict_batch_f32(model, xs)
    }

    /// Size/training statistics for a built model (Table 2's model size).
    pub fn model_stats(&mut self, name: &str) -> Option<ModelStats> {
        self.handle.model_stats(name)
    }

    /// Names of configured models, sorted.
    pub fn model_names(&self) -> Vec<String> {
        self.handle.model_names()
    }

    /// Human-readable report of the global telemetry recorder.
    #[cfg(feature = "telemetry")]
    pub fn telemetry_report(&self) -> String {
        self.handle.telemetry_report()
    }

    // ------------------------------------------------------------------
    // Monitoring (the `monitor` feature)
    // ------------------------------------------------------------------

    /// Switches prediction-quality monitoring on for this engine. See
    /// [`EngineHandle::set_monitor_config`].
    #[cfg(feature = "monitor")]
    pub fn set_monitor_config(&mut self, config: au_monitor::MonitorConfig) {
        self.handle.set_monitor_config(config);
    }

    /// Whether monitoring is active on this engine.
    #[cfg(feature = "monitor")]
    pub fn monitoring_enabled(&self) -> bool {
        self.handle.monitoring_enabled()
    }

    /// The live monitor for a model, once it has served in TS mode. Returns
    /// a lock guard — drop it before the next serving call.
    #[cfg(feature = "monitor")]
    pub fn monitor(&self, model: &str) -> Option<crate::handle::MonitorRef<'_>> {
        self.handle.monitor(model)
    }

    /// Re-arms a model degraded by the fallback policy.
    #[cfg(feature = "monitor")]
    pub fn clear_degraded(&mut self, model: &str) {
        self.handle.clear_degraded(model);
    }

    /// Human-readable monitoring report across every observed model.
    #[cfg(feature = "monitor")]
    pub fn monitor_report(&self) -> String {
        self.handle.monitor_report()
    }

    /// Dumps a model's flight recorder to `<model>.flight.jsonl` in the
    /// model directory, returning the path.
    ///
    /// # Errors
    ///
    /// [`AuError::UnknownModel`] if the model has no monitor yet;
    /// [`AuError::Backend`] on I/O failure.
    #[cfg(feature = "monitor")]
    pub fn dump_flight_recorder(&self, model: &str) -> Result<PathBuf, AuError> {
        self.handle.dump_flight_recorder(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;

    #[test]
    fn extract_then_write_back_round_trip() {
        let mut e = Engine::new(Mode::Train);
        e.au_extract("A", &[1.0, 2.0, 3.0]);
        let mut out = [0.0; 2];
        e.au_write_back("A", &mut out).unwrap();
        assert_eq!(out, [1.0, 2.0]);
    }

    #[test]
    fn write_back_checks_availability() {
        let mut e = Engine::new(Mode::Train);
        e.au_extract("A", &[1.0]);
        let mut out = [0.0; 3];
        assert!(matches!(
            e.au_write_back("A", &mut out),
            Err(AuError::MissingData {
                wanted: 3,
                available: 1,
                ..
            })
        ));
    }

    #[test]
    fn au_nn_requires_config() {
        let mut e = Engine::new(Mode::Train);
        e.au_extract("F", &[1.0]);
        assert!(matches!(
            e.au_nn("nope", "F", &["P"]),
            Err(AuError::UnknownModel(_))
        ));
    }

    #[test]
    fn au_nn_requires_input() {
        let mut e = Engine::new(Mode::Train);
        e.au_config("M", ModelConfig::dnn(&[4])).unwrap();
        assert!(matches!(
            e.au_nn("M", "F", &["P"]),
            Err(AuError::MissingData { .. })
        ));
    }

    #[test]
    fn au_nn_trains_toward_labels_and_clears_input() {
        au_nn::set_init_seed(21);
        let mut e = Engine::new(Mode::Train);
        e.au_config("M", ModelConfig::dnn(&[16]).with_learning_rate(0.02))
            .unwrap();
        // learn y = 2x on [0,1]
        for step in 0..300 {
            let x = (step % 20) as f64 / 20.0;
            e.au_extract("F", &[x]);
            e.au_extract("P", &[2.0 * x]);
            e.au_nn("M", "F", &["P"]).unwrap();
            assert_eq!(e.db().get("F"), &[] as &[f64], "ext reset to ⊥");
        }
        e.au_extract("F", &[0.5]);
        // Deployment-style call: π("P") holds the last prediction, which is
        // stale (not freshly extracted), so no label flows.
        e.set_mode(Mode::Test);
        e.au_nn("M", "F", &["P"]).unwrap();
        let p = e.au_write_back_scalar("P").unwrap();
        assert!((p - 1.0).abs() < 0.25, "predicted {p}, want ≈1.0");
    }

    #[test]
    fn au_nn_splits_outputs_across_wb_names() {
        let mut e = Engine::new(Mode::Train);
        e.au_config("M", ModelConfig::dnn(&[8])).unwrap();
        e.au_extract("HIST", &[0.1, 0.2]);
        e.au_extract("LO", &[0.3]);
        e.au_extract("HI", &[0.9]);
        let out = e.au_nn("M", "HIST", &["LO", "HI"]).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(e.db().get("LO").len(), 1);
        assert_eq!(e.db().get("HI").len(), 1);
    }

    #[test]
    fn au_nn_rl_returns_action_and_one_hot() {
        let mut e = Engine::new(Mode::Train);
        e.au_config("Mario", ModelConfig::q_dnn(&[8])).unwrap();
        e.au_extract("PX", &[0.5]);
        e.au_extract("PY", &[0.25]);
        let ser = e.au_serialize(&["PX", "PY"]);
        let action = e.au_nn_rl("Mario", &ser, 0.0, false, "output", 5).unwrap();
        assert!(action < 5);
        let out = e.db().get("output").to_vec();
        assert_eq!(out.len(), 5);
        assert_eq!(out.iter().filter(|&&v| v == 1.0).count(), 1);
        assert_eq!(out[action], 1.0);
        let mut keys = vec![0.0; 5];
        e.au_write_back("output", &mut keys).unwrap();
        assert_eq!(keys[action], 1.0);
    }

    #[test]
    fn algorithm_mismatch_is_rejected() {
        let mut e = Engine::new(Mode::Train);
        e.au_config("SL", ModelConfig::dnn(&[4])).unwrap();
        e.au_config("RL", ModelConfig::q_dnn(&[4])).unwrap();
        e.au_extract("F", &[1.0]);
        assert!(matches!(
            e.au_nn_rl("SL", "F", 0.0, false, "o", 2),
            Err(AuError::WrongAlgorithm { .. })
        ));
        e.au_extract("F", &[1.0]);
        e.au_extract("L", &[1.0]);
        assert!(matches!(
            e.au_nn("RL", "F", &["L"]),
            Err(AuError::WrongAlgorithm { .. })
        ));
    }

    #[test]
    fn reconfiguring_same_model_is_idempotent() {
        let mut e = Engine::new(Mode::Train);
        e.au_config("M", ModelConfig::dnn(&[4])).unwrap();
        assert!(e.au_config("M", ModelConfig::dnn(&[4])).is_ok());
        assert!(matches!(
            e.au_config("M", ModelConfig::dnn(&[8])),
            Err(AuError::ModelExists(_))
        ));
    }

    #[test]
    fn checkpoint_restores_db_but_not_model() {
        au_nn::set_init_seed(22);
        let mut e = Engine::new(Mode::Train);
        e.au_config("M", ModelConfig::dnn(&[4])).unwrap();
        e.au_extract("STATE", &[42.0]);
        e.au_checkpoint();
        e.au_extract("STATE", &[99.0]);
        // Train a little so θ changes after the checkpoint.
        e.au_extract("F", &[1.0]);
        e.au_extract("L", &[0.5]);
        e.au_nn("M", "F", &["L"]).unwrap();
        let steps_before = e.model_stats("M").unwrap().train_steps;
        e.au_restore().unwrap();
        assert_eq!(e.db().get("STATE"), &[42.0], "π rolled back");
        assert_eq!(
            e.model_stats("M").unwrap().train_steps,
            steps_before,
            "θ untouched by restore"
        );
        // Restore is repeatable (the paper restores every episode).
        e.au_extract("STATE", &[7.0]);
        e.au_restore().unwrap();
        assert_eq!(e.db().get("STATE"), &[42.0]);
    }

    #[test]
    fn restore_without_checkpoint_errors() {
        let mut e = Engine::new(Mode::Train);
        assert!(matches!(e.au_restore(), Err(AuError::NoCheckpoint)));
    }

    #[test]
    fn restore_invalidates_cached_weight_views() {
        // Training builds cached transposed-weight views inside the layers;
        // a restore must drop them so later passes never use a transpose of
        // parameters that have since been replaced. Observable contract:
        // predictions are unchanged across restore (θ untouched, caches
        // rebuilt from live weights) and training keeps working afterwards.
        au_nn::set_init_seed(31);
        let mut e = Engine::new(Mode::Train);
        e.au_config("M", ModelConfig::dnn(&[8]).with_learning_rate(0.05))
            .unwrap();
        e.au_checkpoint();
        for step in 0..50 {
            let x = (step % 10) as f64 / 10.0;
            e.au_extract("F", &[x]);
            e.au_extract("L", &[2.0 * x]);
            e.au_nn("M", "F", &["L"]).unwrap();
        }
        let before = e.predict("M", &[0.5]).unwrap();
        e.au_restore().unwrap();
        let after = e.predict("M", &[0.5]).unwrap();
        assert_eq!(before, after, "θ and its served values survive restore");
        // Backward passes after the restore rebuild caches from live
        // weights and keep learning.
        for step in 0..200 {
            let x = (step % 10) as f64 / 10.0;
            e.au_extract("F", &[x]);
            e.au_extract("L", &[2.0 * x]);
            e.au_nn("M", "F", &["L"]).unwrap();
        }
        let p = e.predict("M", &[0.5]).unwrap()[0];
        assert!((p - 1.0).abs() < 0.3, "still converging after restore: {p}");
    }

    #[test]
    fn restore_after_pop_on_empty_stack_is_typed_error() {
        let mut e = Engine::new(Mode::Train);
        // Popping an empty stack is a no-op, and restoring afterwards must
        // surface the typed error, not panic.
        e.pop_checkpoint();
        assert!(matches!(e.au_restore(), Err(AuError::NoCheckpoint)));
        e.au_extract("S", &[1.0]);
        e.au_checkpoint();
        e.pop_checkpoint();
        assert!(matches!(e.au_restore(), Err(AuError::NoCheckpoint)));
        // π is untouched by the failed restores.
        assert_eq!(e.db().get("S"), &[1.0]);
    }

    #[test]
    fn combined_checkpoint_round_trip() {
        let mut e = Engine::new(Mode::Train);
        e.au_extract("D", &[1.0]);
        let game_state = (3usize, vec![1.0f64, 2.0]);
        let ckpt = e.checkpoint_with(&game_state);
        e.au_extract("D", &[2.0]);
        let restored = e.restore_with(&ckpt);
        assert_eq!(restored, game_state);
        assert_eq!(e.db().get("D"), &[1.0]);
    }

    #[test]
    fn save_and_load_model_across_modes() {
        au_nn::set_init_seed(23);
        let dir = std::env::temp_dir().join("au_core_engine_test");
        let _ = std::fs::remove_dir_all(&dir);

        // TR run: train y = x + 1 and save.
        let mut tr = Engine::new(Mode::Train);
        tr.set_model_dir(&dir);
        tr.au_config("M", ModelConfig::dnn(&[16]).with_learning_rate(0.02))
            .unwrap();
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 20.0]).collect();
        let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![x[0] + 1.0]).collect();
        tr.train_supervised("M", &xs, &ys, 150).unwrap();
        tr.save_model("M").unwrap();

        // TS run in a fresh engine: au_config loads the trained model.
        let mut ts = Engine::new(Mode::Test);
        ts.set_model_dir(&dir);
        ts.au_config("M", ModelConfig::dnn(&[16]).with_learning_rate(0.02))
            .unwrap();
        ts.au_extract("F", &[0.5]);
        ts.au_nn("M", "F", &["P"]).unwrap();
        let p = ts.au_write_back_scalar("P").unwrap();
        assert!(
            (p - 1.5).abs() < 0.3,
            "loaded model predicts {p}, want ≈1.5"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn test_mode_config_without_saved_model_errors() {
        let dir = std::env::temp_dir().join("au_core_missing_model");
        let _ = std::fs::remove_dir_all(&dir);
        let mut ts = Engine::new(Mode::Test);
        ts.set_model_dir(&dir);
        assert!(matches!(
            ts.au_config("Ghost", ModelConfig::dnn(&[4])),
            Err(AuError::ModelNotTrained(_))
        ));
    }

    #[test]
    fn rl_model_save_load_round_trip() {
        au_nn::set_init_seed(24);
        let dir = std::env::temp_dir().join("au_core_rl_model");
        let _ = std::fs::remove_dir_all(&dir);
        let mut tr = Engine::new(Mode::Train);
        tr.set_model_dir(&dir);
        tr.au_config("Q", ModelConfig::q_dnn(&[8])).unwrap();
        for _ in 0..5 {
            tr.au_extract("S", &[0.5]);
            tr.au_nn_rl("Q", "S", 1.0, false, "out", 3).unwrap();
        }
        tr.save_model("Q").unwrap();

        let mut ts = Engine::new(Mode::Test);
        ts.set_model_dir(&dir);
        ts.au_config("Q", ModelConfig::q_dnn(&[8])).unwrap();
        ts.au_extract("S", &[0.5]);
        let a = ts.au_nn_rl("Q", "S", 0.0, false, "out", 3).unwrap();
        assert!(a < 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn custom_network_config_works_for_both_algorithms() {
        use au_nn::Activation;
        au_nn::set_init_seed(55);
        let mut e = Engine::new(Mode::Train);
        let sl_net = Network::builder(3)
            .dense(6)
            .activation(Activation::Tanh)
            .dense(1)
            .build();
        e.au_config_custom("CustomSL", crate::model::Algorithm::AdamOpt, sl_net)
            .unwrap();
        e.au_extract("F", &[0.1, 0.2, 0.3]);
        e.au_extract("Y", &[1.0]);
        e.au_nn("CustomSL", "F", &["Y"]).unwrap();
        assert_eq!(e.model_stats("CustomSL").unwrap().train_steps, 1);

        let rl_net = Network::builder(2).dense(8).dense(3).build();
        e.au_config_custom("CustomRL", crate::model::Algorithm::QLearn, rl_net)
            .unwrap();
        e.au_extract("S", &[0.5, -0.5]);
        let a = e.au_nn_rl("CustomRL", "S", 0.0, false, "out", 3).unwrap();
        assert!(a < 3);
        // Duplicate registration is rejected.
        let dup = Network::builder(2).dense(3).build();
        assert!(matches!(
            e.au_config_custom("CustomRL", crate::model::Algorithm::QLearn, dup),
            Err(AuError::ModelExists(_))
        ));
    }

    #[test]
    fn db_save_load_round_trip() {
        let dir = std::env::temp_dir().join("au_core_db_roundtrip.json");
        let mut e = Engine::new(Mode::Train);
        e.au_extract("A", &[1.0, 2.0]);
        e.au_extract("B", &[3.0]);
        e.save_db(&dir).unwrap();

        let mut fresh = Engine::new(Mode::Train);
        fresh.load_db(&dir).unwrap();
        assert_eq!(fresh.db().get("A"), &[1.0, 2.0]);
        assert_eq!(fresh.db().get("B"), &[3.0]);
        assert_eq!(fresh.total_extracted(), 3);
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn supervised_cnn_model_works_through_primitives() {
        au_nn::set_init_seed(56);
        let mut e = Engine::new(Mode::Train);
        // The SL Raw setting with a convolutional front end: an 8x8 frame
        // in, one parameter out.
        e.au_config(
            "RawSL",
            ModelConfig::cnn(1, 8, 8, &[16]).with_learning_rate(5e-3),
        )
        .unwrap();
        for step in 0..30 {
            let brightness = (step % 10) as f64 / 10.0;
            let frame = vec![brightness; 64];
            e.au_extract("IMG", &frame);
            e.au_extract("P", &[brightness * 2.0]);
            e.au_nn("RawSL", "IMG", &["P"]).unwrap();
        }
        let stats = e.model_stats("RawSL").unwrap();
        assert_eq!(stats.train_steps, 30);
        // Conv stack parameters present (not just the dense head).
        assert!(stats.param_count > 16);
        e.set_mode(Mode::Test);
        e.au_extract("IMG", &vec![0.5; 64]);
        e.au_nn("RawSL", "IMG", &["P"]).unwrap();
        let p = e.au_write_back_scalar("P").unwrap();
        assert!(p.is_finite());
    }

    /// Trains y = 2x on a monitored engine and returns it switched to TS
    /// mode, ready to serve.
    #[cfg(feature = "monitor")]
    fn monitored_engine(config: au_monitor::MonitorConfig) -> Engine {
        au_nn::set_init_seed(31);
        let mut e = Engine::new(Mode::Train);
        e.set_monitor_config(config);
        e.au_config("M", ModelConfig::dnn(&[16]).with_learning_rate(0.02))
            .unwrap();
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0]).collect();
        let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![2.0 * x[0]]).collect();
        e.train_supervised("M", &xs, &ys, 120).unwrap();
        e.set_mode(Mode::Test);
        e
    }

    #[cfg(feature = "monitor")]
    #[test]
    fn monitored_clean_stream_raises_no_alerts() {
        let mut e = monitored_engine(au_monitor::MonitorConfig::default());
        for i in 0..40 {
            let x = ((i * 13) % 40) as f64 / 40.0;
            e.au_extract("F", &[x]);
            e.au_nn("M", "F", &["P"]).unwrap();
        }
        let m = e.monitor("M").expect("monitor exists after TS serving");
        assert!(m.alerts().is_empty(), "clean run alerted: {:?}", m.alerts());
        assert!(!m.is_degraded());
        drop(m); // release the monitor lock before the report re-takes it
        let report = e.monitor_report();
        assert!(report.contains("M:"), "{report}");
        assert!(report.contains("observations=40"), "{report}");
    }

    #[cfg(feature = "monitor")]
    #[test]
    fn monitored_corrupted_stream_alerts_and_degrades() {
        let dir = std::env::temp_dir().join("au_core_monitor_degrade");
        let _ = std::fs::remove_dir_all(&dir);
        let mut e = monitored_engine(au_monitor::MonitorConfig::default().with_fallback(true));
        e.set_model_dir(&dir);
        // Sensor corruption: inputs far outside the trained [0, 1) range.
        let mut served_err = false;
        for _ in 0..40 {
            e.au_extract("F", &[250.0]);
            match e.au_nn("M", "F", &["P"]) {
                Ok(_) => {}
                Err(AuError::ModelDegraded(name)) => {
                    assert_eq!(name, "M");
                    served_err = true;
                    break;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(served_err, "fallback must kick in on a corrupted stream");
        let m = e.monitor("M").unwrap();
        assert!(m.is_degraded());
        assert!(!m.alerts().is_empty());
        drop(m);
        // The critical alert auto-dumped the black box.
        let flight = dir.join("M.flight.jsonl");
        assert!(flight.exists(), "flight recorder dumped on critical alert");
        let text = std::fs::read_to_string(&flight).unwrap();
        assert!(text.lines().count() >= 1);
        assert!(text.contains("\"features\":[250"), "{text}");
        // Degraded models keep refusing until re-armed; π(ext) is consumed.
        e.au_extract("F", &[0.5]);
        assert!(matches!(
            e.au_nn("M", "F", &["P"]),
            Err(AuError::ModelDegraded(_))
        ));
        assert!(e.db().get("F").is_empty(), "input consumed on refusal");
        e.clear_degraded("M");
        e.au_extract("F", &[0.5]);
        e.au_nn("M", "F", &["P"]).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(feature = "monitor")]
    #[test]
    fn baseline_persists_through_model_sidecar() {
        au_nn::set_init_seed(32);
        let dir = std::env::temp_dir().join("au_core_monitor_sidecar");
        let _ = std::fs::remove_dir_all(&dir);
        let mut tr = Engine::new(Mode::Train);
        tr.set_monitor_config(au_monitor::MonitorConfig::default());
        tr.set_model_dir(&dir);
        tr.au_config("M", ModelConfig::dnn(&[16]).with_learning_rate(0.02))
            .unwrap();
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 30.0, 5.0]).collect();
        let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![x[0] + 1.0]).collect();
        tr.train_supervised("M", &xs, &ys, 100).unwrap();
        tr.save_model("M").unwrap();
        // The sidecar carries the training distribution and baseline MAE.
        let raw = std::fs::read_to_string(dir.join("M.meta.json")).unwrap();
        assert!(raw.contains("feature_baseline"), "{raw}");
        assert!(raw.contains("baseline_mae"), "{raw}");

        // A fresh TS engine picks the baseline up and detects drift with it.
        let mut ts = Engine::new(Mode::Test);
        ts.set_monitor_config(au_monitor::MonitorConfig::default());
        ts.set_model_dir(&dir);
        ts.au_config("M", ModelConfig::dnn(&[16]).with_learning_rate(0.02))
            .unwrap();
        let m = ts.monitor("M").expect("monitor installed at load");
        assert!(m.report().has_baseline, "loaded baseline attached");
        assert!((m.baseline_mae().unwrap()) < 0.5, "plausible training MAE");
        drop(m);
        ts.au_extract("F", &[99.0, 99.0]);
        ts.au_nn("M", "F", &["P"]).unwrap();
        let m = ts.monitor("M").unwrap();
        assert_eq!(
            m.last_drift().unwrap().out_of_range,
            2,
            "out-of-range flagged against the persisted baseline"
        );
        drop(m);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(feature = "monitor")]
    #[test]
    fn sidecar_without_monitoring_still_loads() {
        // A meta written by a non-monitored run has null baselines; a
        // monitored TS engine must load it and run with drift inert.
        au_nn::set_init_seed(33);
        let dir = std::env::temp_dir().join("au_core_monitor_nullmeta");
        let _ = std::fs::remove_dir_all(&dir);
        let mut tr = Engine::new(Mode::Train);
        tr.set_model_dir(&dir);
        tr.au_config("M", ModelConfig::dnn(&[8])).unwrap();
        let xs = vec![vec![0.1], vec![0.9]];
        let ys = vec![vec![0.2], vec![1.8]];
        tr.train_supervised("M", &xs, &ys, 10).unwrap();
        tr.save_model("M").unwrap();

        let mut ts = Engine::new(Mode::Test);
        ts.set_monitor_config(au_monitor::MonitorConfig::default());
        ts.set_model_dir(&dir);
        ts.au_config("M", ModelConfig::dnn(&[8])).unwrap();
        ts.au_extract("F", &[0.5]);
        ts.au_nn("M", "F", &["P"]).unwrap();
        let m = ts.monitor("M").unwrap();
        assert!(!m.report().has_baseline);
        assert!(m.alerts().is_empty());
        drop(m);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(feature = "monitor")]
    #[test]
    fn rl_monitoring_flags_out_of_range_states() {
        au_nn::set_init_seed(34);
        let mut e = Engine::new(Mode::Train);
        e.set_monitor_config(au_monitor::MonitorConfig::default());
        e.au_config("Q", ModelConfig::q_dnn(&[8])).unwrap();
        for i in 0..30 {
            e.au_extract("S", &[(i % 10) as f64 / 10.0, 0.5]);
            e.au_nn_rl("Q", "S", 0.1, false, "out", 3).unwrap();
        }
        e.set_mode(Mode::Test);
        e.au_extract("S", &[42.0, -3.0]);
        e.au_nn_rl("Q", "S", 0.0, false, "out", 3).unwrap();
        let m = e.monitor("Q").expect("RL model monitored");
        assert_eq!(m.last_drift().unwrap().out_of_range, 2);
        assert!(m
            .alerts()
            .iter()
            .any(|a| a.kind == au_monitor::AlertKind::OutOfRange));
    }

    #[test]
    fn serialize_matches_fig2_usage() {
        let mut e = Engine::new(Mode::Train);
        e.au_extract("PX", &[1.0]);
        e.au_extract("PY", &[2.0]);
        e.au_extract("MnX", &[3.0]);
        e.au_extract("MnY", &[4.0]);
        e.au_extract("Obj", &[5.0]);
        let name = e.au_serialize(&["PX", "PY", "MnX", "MnY", "Obj"]);
        assert_eq!(e.db().get(&name), &[1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn facade_and_handle_share_one_runtime() {
        let mut e = Engine::new(Mode::Train);
        let h = e.handle();
        e.au_extract("A", &[1.0]);
        h.au_extract("A", &[2.0]);
        assert_eq!(e.db().get("A"), &[1.0, 2.0]);
        assert_eq!(e.total_extracted(), 2);
    }
}
