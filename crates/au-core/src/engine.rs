//! The Autonomizer runtime engine: primitives over the stores and models.

use crate::error::AuError;
use crate::model::{rl_step, run_model, supervised_step, Backend, ModelConfig, ModelInstance, ModelStats};
use crate::monitoring::BaselineMeta;
use crate::store::DbStore;
use au_nn::rl::DqnAgent;
use au_nn::{Adam, Network};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Execution mode ω from Fig. 8: training (TR) or deployment/testing (TS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// TR — the program's execution trains the model(s) while running.
    Train,
    /// TS — trained models replace human interaction; no learning happens.
    Test,
}

/// A combined snapshot of host program state `S` and the database store π.
///
/// Fig. 8's CHECKPOINT rule snapshots ⟨σ, π⟩ *together* (their consistency
/// matters) while the model store θ is exempt so learning accumulates across
/// episode rollbacks.
#[derive(Debug, Clone)]
pub struct Checkpoint<S> {
    program: S,
    db: DbStore,
    /// Label-freshness marks are derived from π's append counters, so they
    /// roll back with it.
    label_marks: BTreeMap<(String, String), u64>,
}

#[derive(Serialize, Deserialize)]
struct ModelMeta {
    output_split: Vec<usize>,
    n_actions: usize,
    /// Mean absolute training error, when monitoring collected one; the
    /// deployed monitor compares live rolling MAE against it.
    baseline_mae: Option<f64>,
    /// Per-feature training input distribution, when monitoring collected
    /// one; the deployed monitor detects drift against it.
    feature_baseline: Option<BaselineMeta>,
}

/// Per (model, wb-name) append-counter marks distinguishing fresh labels
/// from stale predictions in `au_nn`.
type LabelMarks = BTreeMap<(String, String), u64>;

/// The Autonomizer runtime: database store π, model store θ, and the
/// primitive operations of the paper's execution model.
///
/// One engine serves one program; it supports multiple named model instances
/// (the paper: "Autonomizer supports multiple model instances in one
/// execution").
#[derive(Debug)]
pub struct Engine {
    mode: Mode,
    db: DbStore,
    models: BTreeMap<String, ModelInstance>,
    /// Split of the flat model output across the `wb` names of `au_nn`,
    /// fixed the first time labels are seen (persisted alongside the model).
    output_splits: BTreeMap<String, Vec<usize>>,
    /// RL action counts per model (persisted alongside the model).
    action_counts: BTreeMap<String, usize>,
    model_dir: Option<PathBuf>,
    /// Internal π-only checkpoint stack for `au_checkpoint`/`au_restore`
    /// (each entry pairs π with the label marks derived from it).
    db_checkpoints: Vec<(DbStore, LabelMarks)>,
    /// Per (model, wb-name) append-counter marks distinguishing fresh
    /// labels from stale predictions in `au_nn`.
    label_marks: LabelMarks,
    /// Lifetime count of scalars extracted, *not* rolled back by
    /// checkpoint restores — the paper's trace-size metric (Table 2).
    extracted_total: u64,
    /// Per-model monitors, baseline accumulators, and the active monitor
    /// configuration (inert until monitoring is switched on).
    #[cfg(feature = "monitor")]
    monitor_state: crate::monitoring::MonitorState,
}

impl Engine {
    /// Creates an engine in the given mode.
    pub fn new(mode: Mode) -> Self {
        Engine {
            mode,
            db: DbStore::new(),
            models: BTreeMap::new(),
            output_splits: BTreeMap::new(),
            action_counts: BTreeMap::new(),
            model_dir: None,
            db_checkpoints: Vec::new(),
            label_marks: BTreeMap::new(),
            extracted_total: 0,
            #[cfg(feature = "monitor")]
            monitor_state: crate::monitoring::MonitorState::new(),
        }
    }

    /// Current execution mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Switches mode (e.g. finish training, then deploy in the same
    /// process — the in-process equivalent of the paper's two executables).
    pub fn set_mode(&mut self, mode: Mode) {
        self.mode = mode;
    }

    /// Directory used to persist and load trained models.
    pub fn set_model_dir(&mut self, dir: impl Into<PathBuf>) {
        self.model_dir = Some(dir.into());
    }

    /// Read access to the database store π.
    pub fn db(&self) -> &DbStore {
        &self.db
    }

    // ------------------------------------------------------------------
    // Primitives
    // ------------------------------------------------------------------

    /// `@au_config(modelName, modelType, algo, layers, n1, …)`.
    ///
    /// Rule CONFIG-TRAIN: in TR mode, registers a fresh model (a no-op if
    /// the same configuration is already registered). Rule CONFIG-TEST: in
    /// TS mode, loads the trained model from the model directory.
    ///
    /// # Errors
    ///
    /// [`AuError::ModelExists`] if the name is taken by a *different*
    /// configuration; [`AuError::ModelNotTrained`] in TS mode when no saved
    /// model exists; [`AuError::Backend`] if a saved model fails to parse.
    pub fn au_config(&mut self, name: &str, config: ModelConfig) -> Result<(), AuError> {
        let _s = t_span!("au_config", model = name);
        t_count!("au_core.au_config_calls");
        if let Some(existing) = self.models.get(name) {
            if existing.config == config {
                return Ok(()); // θ(mdName) ≢ ⊥ ⇒ θ′ = θ
            }
            return Err(AuError::ModelExists(name.to_owned()));
        }
        let mut instance = ModelInstance::new(config);
        if self.mode == Mode::Test {
            let (net, meta) = self.load_model_files(name)?;
            if !meta.output_split.is_empty() {
                self.output_splits
                    .insert(name.to_owned(), meta.output_split.clone());
            }
            self.action_counts.insert(name.to_owned(), meta.n_actions);
            #[cfg(feature = "monitor")]
            self.monitor_state
                .install_loaded(name, meta.feature_baseline.as_ref(), meta.baseline_mae);
            instance.backend = Some(match instance.config.algorithm {
                crate::model::Algorithm::AdamOpt => Backend::Supervised {
                    net,
                    opt: Adam::new(instance.config.learning_rate),
                    train_steps: 0,
                },
                crate::model::Algorithm::QLearn => {
                    let inputs = net.in_features();
                    let n_actions = meta_actions(&self.action_counts, name, &net);
                    let mut dqn = instance.config.dqn.clone();
                    dqn.epsilon_start = 0.0;
                    dqn.epsilon_end = 0.0;
                    Backend::Reinforcement {
                        agent: Box::new(DqnAgent::with_network(inputs, n_actions, dqn, net)),
                        pending: None,
                        train_steps: 0,
                    }
                }
            });
        }
        self.models.insert(name.to_owned(), instance);
        Ok(())
    }

    /// `au_config` with a caller-built network — the paper's escape hatch:
    /// "We also provide a callback function in which the users can create
    /// arbitrary neural networks from scratch". The network's input/output
    /// widths are fixed by the caller; `algorithm` selects supervised or
    /// Q-learning use.
    ///
    /// # Errors
    ///
    /// [`AuError::ModelExists`] if the name is already configured.
    pub fn au_config_custom(
        &mut self,
        name: &str,
        algorithm: crate::model::Algorithm,
        network: Network,
    ) -> Result<(), AuError> {
        let _s = t_span!("au_config_custom", model = name);
        t_count!("au_core.au_config_calls");
        if self.models.contains_key(name) {
            return Err(AuError::ModelExists(name.to_owned()));
        }
        let config = match algorithm {
            crate::model::Algorithm::AdamOpt => ModelConfig::dnn(&[]),
            crate::model::Algorithm::QLearn => ModelConfig::q_dnn(&[]),
        };
        let mut instance = ModelInstance::new(config);
        instance.backend = Some(match algorithm {
            crate::model::Algorithm::AdamOpt => Backend::Supervised {
                net: network,
                opt: Adam::new(1e-3),
                train_steps: 0,
            },
            crate::model::Algorithm::QLearn => {
                let inputs = network.in_features();
                let n_actions = network.out_features();
                self.action_counts.insert(name.to_owned(), n_actions);
                Backend::Reinforcement {
                    agent: Box::new(DqnAgent::with_network(
                        inputs,
                        n_actions,
                        instance.config.dqn.clone(),
                        network,
                    )),
                    pending: None,
                    train_steps: 0,
                }
            }
        });
        self.models.insert(name.to_owned(), instance);
        Ok(())
    }

    /// Persists the database store π to a JSON file — the paper's runtime
    /// "saves [feature values] to database"; a later process (offline SL
    /// training) loads them back with [`Engine::load_db`].
    ///
    /// # Errors
    ///
    /// [`AuError::Backend`] on I/O failure.
    pub fn save_db(&self, path: impl AsRef<std::path::Path>) -> Result<(), AuError> {
        let _t = t_time!("au_core.db_save");
        t_count!("au_core.db_saves");
        let map: BTreeMap<&str, &[f64]> = self.db.iter().collect();
        let json = serde_json::to_string(&map).expect("db serializes");
        std::fs::write(path, json).map_err(|e| AuError::Backend(e.into()))?;
        Ok(())
    }

    /// Loads a database store saved by [`Engine::save_db`], replacing π.
    ///
    /// # Errors
    ///
    /// [`AuError::Backend`] on I/O failure or malformed content.
    pub fn load_db(&mut self, path: impl AsRef<std::path::Path>) -> Result<(), AuError> {
        let _t = t_time!("au_core.db_load");
        t_count!("au_core.db_loads");
        let raw = std::fs::read_to_string(path).map_err(|e| AuError::Backend(e.into()))?;
        let map: BTreeMap<String, Vec<f64>> = serde_json::from_str(&raw)
            .map_err(|e| AuError::Backend(au_nn::NnError::Format(e.to_string())))?;
        self.db = DbStore::new();
        for (name, values) in map {
            self.db.append(&name, &values);
            self.extracted_total += values.len() as u64;
        }
        Ok(())
    }

    /// `@au_extract(extName, size, data)` — rule EXTRACT.
    ///
    /// Appends the current values of a feature variable to the π list named
    /// `name`. The slice length plays the role of the paper's `size`.
    pub fn au_extract(&mut self, name: &str, values: &[f64]) {
        let _t = t_time!("au_core.au_extract");
        t_count!("au_core.extract_rows", values.len() as u64);
        self.extracted_total += values.len() as u64;
        self.db.append(name, values);
    }

    /// Lifetime count of scalars extracted through [`Engine::au_extract`].
    /// Unlike [`DbStore::total_appended`], this survives checkpoint
    /// restores — it is the paper's Table 2 trace-size metric.
    pub fn total_extracted(&self) -> u64 {
        self.extracted_total
    }

    /// `@au_serialize(t1, t2, …)` — rule SERIALIZE.
    ///
    /// Concatenates the named π lists into a single list (neural networks
    /// take vector inputs) stored under the concatenated name, which is
    /// returned for passing to [`Engine::au_nn`]/[`Engine::au_nn_rl`].
    ///
    /// The component lists are *consumed* (reset to ⊥): rule TRAIN/TEST
    /// resets only the combined `extName`, and without consuming the
    /// components a loop like Fig. 2's would feed an ever-growing input to
    /// a fixed-width model. Consuming keeps the semantics' invariant that
    /// each `au_NN` call sees exactly the values extracted since the last
    /// one.
    pub fn au_serialize(&mut self, names: &[&str]) -> String {
        let _t = t_time!("au_core.au_serialize");
        let combined = self.db.serialize(names);
        for name in names {
            if **name != *combined {
                self.db.clear(name);
            }
        }
        combined
    }

    /// `@au_NN(modelName, extName, wbName1, …)` for supervised models —
    /// rules TRAIN and TEST.
    ///
    /// In TR mode, if π holds recorded desirable outputs under the `wb`
    /// names (the labels — e.g. the ideal parameter values for the current
    /// input), one gradient step is taken toward them. The model is then run
    /// on π(`ext`); its output is split across the `wb` names in π and the
    /// input list is reset to ⊥. Returns the flat model output.
    ///
    /// # Errors
    ///
    /// [`AuError::UnknownModel`] if `au_config` never ran for `model`;
    /// [`AuError::MissingData`] if π(`ext`) is empty or (on the first TR
    /// call) no labels exist to fix the output width;
    /// [`AuError::WrongAlgorithm`] for QLearn models.
    pub fn au_nn(&mut self, model: &str, ext: &str, wbs: &[&str]) -> Result<Vec<f64>, AuError> {
        let _s = t_span!("au_nn", model = model);
        let _t = t_time!("au_core.au_nn");
        let input = self.db.get(ext).to_vec();
        if input.is_empty() {
            return Err(AuError::MissingData {
                name: ext.to_owned(),
                wanted: 1,
                available: 0,
            });
        }
        // Graceful degradation: once the monitor's fallback policy trips,
        // refuse to serve. The input is still consumed (π(ext) → ⊥) so the
        // caller's fallback path starts from a clean store.
        #[cfg(feature = "monitor")]
        if self.mode == Mode::Test && self.monitor_degraded(model) {
            self.db.clear(ext);
            return Err(AuError::ModelDegraded(model.to_owned()));
        }
        // Labels recorded under the wb names (training mode only). After a
        // previous au_NN call, each wb list starts with that call's
        // prediction; a freshly extracted label is *appended* behind it. A
        // wb list counts as carrying a label only if au_extract has touched
        // it since the last au_NN call on this model, and once the output
        // split is known only the tail of each list is the label.
        let known_split = self.output_splits.get(model).cloned();
        let labels: Vec<Vec<f64>> = wbs
            .iter()
            .enumerate()
            .map(|(i, wb)| {
                let mark_key = (model.to_owned(), (*wb).to_owned());
                let fresh = self.db.append_count(wb) > self.label_marks.get(&mark_key).copied().unwrap_or(0);
                if !fresh {
                    return Vec::new();
                }
                let full = self.db.get(wb);
                match &known_split {
                    Some(split) if full.len() >= split[i] && split[i] > 0 => {
                        full[full.len() - split[i]..].to_vec()
                    }
                    _ => full.to_vec(),
                }
            })
            .collect();
        let have_labels = self.mode == Mode::Train && labels.iter().all(|l| !l.is_empty());

        let instance = self
            .models
            .get_mut(model)
            .ok_or_else(|| AuError::UnknownModel(model.to_owned()))?;

        // Determine the output split: from labels, from a previous call, or
        // from an already built/loaded backend.
        let split: Vec<usize> = if let Some(split) = known_split {
            split
        } else if have_labels {
            labels.iter().map(Vec::len).collect()
        } else if let Some(Backend::Supervised { net, .. }) = instance.backend.as_ref() {
            // Loaded model without sidecar: split evenly.
            let out = net.out_features();
            let each = out / wbs.len().max(1);
            vec![each; wbs.len()]
        } else {
            return Err(AuError::MissingData {
                name: wbs.first().copied().unwrap_or("<wb>").to_owned(),
                wanted: 1,
                available: 0,
            });
        };
        if split.len() != wbs.len() {
            return Err(AuError::MissingData {
                name: wbs.first().copied().unwrap_or("<wb>").to_owned(),
                wanted: split.len(),
                available: wbs.len(),
            });
        }
        let out_width: usize = split.iter().sum();
        self.output_splits.insert(model.to_owned(), split.clone());

        let backend = instance.ensure_supervised(model, input.len(), out_width)?;
        let output = match backend {
            Backend::Supervised {
                net,
                opt,
                train_steps,
            } => {
                if have_labels {
                    let label_flat: Vec<f64> = labels.iter().flatten().copied().collect();
                    let loss = supervised_step(net, opt, &input, &label_flat);
                    t_count!("au_core.rows_trained");
                    t_gauge!("au_core.last_loss", f64::from(loss));
                    *train_steps += 1;
                }
                t_count!("au_core.predictions_served");
                run_model(net, &input)
            }
            Backend::Reinforcement { .. } => unreachable!("ensure_supervised checked"),
        };

        #[cfg(feature = "monitor")]
        {
            if self.mode == Mode::Train {
                // TR mode: grow the training baseline — input distribution
                // plus (when labels flowed) the post-step absolute error.
                let abs_err = if have_labels {
                    mean_abs_err(&output, &labels.iter().flatten().copied().collect::<Vec<f64>>())
                } else {
                    None
                };
                self.monitor_state.observe_training(model, &input, abs_err);
            } else if self.monitor_state.enabled() {
                // TS mode: shadow accuracy — when ground-truth labels still
                // flow through au_extract, score the served prediction
                // against them.
                let outcome: Option<Vec<f64>> =
                    if !labels.is_empty() && labels.iter().all(|l| !l.is_empty()) {
                        Some(labels.iter().flatten().copied().collect())
                    } else {
                        None
                    };
                if self.monitor_observe(model, &input, &output, outcome.as_deref()) {
                    self.db.clear(ext);
                    return Err(AuError::ModelDegraded(model.to_owned()));
                }
            }
        }

        // π[wb_i → slice of output], extName → ⊥.
        let mut offset = 0;
        for (wb, width) in wbs.iter().zip(&split) {
            self.db.put(wb, output[offset..offset + width].to_vec());
            self.label_marks.insert(
                (model.to_owned(), (*wb).to_owned()),
                self.db.append_count(wb),
            );
            offset += width;
        }
        self.db.clear(ext);
        Ok(output)
    }

    /// `@au_NN(modelName, extName, reward, term, wbName)` for Q-learning
    /// models — the RL form used by the paper's game loop (Fig. 2).
    ///
    /// `n_actions` fixes the discrete action space (the paper derives it
    /// from the `size` argument of the matching `au_write_back`; here it is
    /// explicit). In TR mode the call completes the previous transition with
    /// `reward`/`terminal` and trains; in TS mode it only predicts. The
    /// selected action is written to π(`wb`) as a one-hot vector of length
    /// `n_actions`, the input list is reset to ⊥, and the action index is
    /// returned.
    ///
    /// # Errors
    ///
    /// [`AuError::UnknownModel`], [`AuError::MissingData`] (empty π(`ext`)),
    /// or [`AuError::WrongAlgorithm`] for AdamOpt models.
    pub fn au_nn_rl(
        &mut self,
        model: &str,
        ext: &str,
        reward: f64,
        terminal: bool,
        wb: &str,
        n_actions: usize,
    ) -> Result<usize, AuError> {
        let _s = t_span!("au_nn_rl", model = model);
        let _t = t_time!("au_core.au_nn_rl");
        let state = self.db.get(ext).to_vec();
        if state.is_empty() {
            return Err(AuError::MissingData {
                name: ext.to_owned(),
                wanted: 1,
                available: 0,
            });
        }
        #[cfg(feature = "monitor")]
        if self.mode == Mode::Test && self.monitor_degraded(model) {
            self.db.clear(ext);
            return Err(AuError::ModelDegraded(model.to_owned()));
        }
        let train = self.mode == Mode::Train;
        let instance = self
            .models
            .get_mut(model)
            .ok_or_else(|| AuError::UnknownModel(model.to_owned()))?;
        let backend = instance.ensure_reinforcement(model, state.len(), n_actions)?;
        let action = match backend {
            Backend::Reinforcement {
                agent,
                pending,
                train_steps,
            } => {
                let a = rl_step(agent, pending, &state, reward, terminal, train);
                if train {
                    t_count!("au_core.rows_trained");
                    *train_steps += 1;
                }
                t_count!("au_core.predictions_served");
                a
            }
            Backend::Supervised { .. } => unreachable!("ensure_reinforcement checked"),
        };
        self.action_counts.insert(model.to_owned(), n_actions);
        let mut one_hot = vec![0.0; n_actions];
        one_hot[action] = 1.0;
        #[cfg(feature = "monitor")]
        {
            if train {
                self.monitor_state.observe_training(model, &state, None);
            } else if self.monitor_state.enabled()
                && self.monitor_observe(model, &state, &one_hot, None)
            {
                self.db.clear(ext);
                return Err(AuError::ModelDegraded(model.to_owned()));
            }
        }
        self.db.put(wb, one_hot);
        self.db.clear(ext);
        Ok(action)
    }

    /// `@au_write_back(wbName, size, x)` — rule WRITE-BACK.
    ///
    /// Copies the first `dst.len()` values of π(`name`) into the program
    /// variable `dst` (the slice length plays the role of `size`).
    ///
    /// # Errors
    ///
    /// [`AuError::MissingData`] if π(`name`) holds fewer values than
    /// requested.
    pub fn au_write_back(&mut self, name: &str, dst: &mut [f64]) -> Result<(), AuError> {
        let _t = t_time!("au_core.au_write_back");
        t_count!("au_core.write_backs");
        let src = self.db.get(name);
        if src.len() < dst.len() {
            return Err(AuError::MissingData {
                name: name.to_owned(),
                wanted: dst.len(),
                available: src.len(),
            });
        }
        dst.copy_from_slice(&src[..dst.len()]);
        Ok(())
    }

    /// Scalar convenience form of [`Engine::au_write_back`].
    ///
    /// # Errors
    ///
    /// [`AuError::MissingData`] if π(`name`) is empty.
    pub fn au_write_back_scalar(&mut self, name: &str) -> Result<f64, AuError> {
        let mut v = [0.0];
        self.au_write_back(name, &mut v)?;
        Ok(v[0])
    }

    /// `@au_checkpoint()` over π only — rule CHECKPOINT, for host programs
    /// that snapshot their own σ (see [`Engine::checkpoint_with`] for the
    /// combined form). Pushes onto a stack; [`Engine::au_restore`] restores
    /// the most recent checkpoint without consuming it (the paper creates a
    /// checkpoint once and restores it at every episode end).
    pub fn au_checkpoint(&mut self) {
        let _t = t_time!("au_core.au_checkpoint");
        t_count!("au_core.checkpoints");
        self.db_checkpoints
            .push((self.db.clone(), self.label_marks.clone()));
    }

    /// `@au_restore()` over π only — rule RESTORE. The model store θ is
    /// deliberately untouched so learning accumulates.
    ///
    /// # Errors
    ///
    /// [`AuError::NoCheckpoint`] if no checkpoint exists.
    pub fn au_restore(&mut self) -> Result<(), AuError> {
        let _t = t_time!("au_core.au_restore");
        t_count!("au_core.restores");
        let (db, marks) = self.db_checkpoints.last().ok_or(AuError::NoCheckpoint)?;
        self.db = db.clone();
        self.label_marks = marks.clone();
        Ok(())
    }

    /// Discards the most recent checkpoint.
    pub fn pop_checkpoint(&mut self) {
        self.db_checkpoints.pop();
    }

    /// Combined ⟨σ, π⟩ checkpoint: clones the host program state `S`
    /// together with π, keeping both consistent as the semantics require.
    pub fn checkpoint_with<S: Clone>(&self, program: &S) -> Checkpoint<S> {
        Checkpoint {
            program: program.clone(),
            db: self.db.clone(),
            label_marks: self.label_marks.clone(),
        }
    }

    /// Restores a combined checkpoint, returning the program state to
    /// reinstall. θ is untouched.
    pub fn restore_with<S: Clone>(&mut self, ckpt: &Checkpoint<S>) -> S {
        self.db = ckpt.db.clone();
        self.label_marks = ckpt.label_marks.clone();
        ckpt.program.clone()
    }

    // ------------------------------------------------------------------
    // Model persistence and experiment support
    // ------------------------------------------------------------------

    /// Persists a trained model (plus its output-split sidecar) to the
    /// model directory so a TS-mode run can `au_config`-load it.
    ///
    /// # Errors
    ///
    /// [`AuError::UnknownModel`] if unknown, [`AuError::ModelNotTrained`] if
    /// the backend was never built, or [`AuError::Backend`] on I/O failure.
    pub fn save_model(&mut self, name: &str) -> Result<(), AuError> {
        let dir = self
            .model_dir
            .clone()
            .unwrap_or_else(|| PathBuf::from("."));
        std::fs::create_dir_all(&dir).map_err(|e| AuError::Backend(e.into()))?;
        let instance = self
            .models
            .get_mut(name)
            .ok_or_else(|| AuError::UnknownModel(name.to_owned()))?;
        let net_json = match instance.backend.as_mut() {
            Some(Backend::Supervised { net, .. }) => net.to_json(),
            Some(Backend::Reinforcement { agent, .. }) => agent.network_mut().to_json(),
            None => return Err(AuError::ModelNotTrained(name.to_owned())),
        };
        std::fs::write(dir.join(format!("{name}.json")), net_json)
            .map_err(|e| AuError::Backend(e.into()))?;
        let meta = ModelMeta {
            output_split: self.output_splits.get(name).cloned().unwrap_or_default(),
            n_actions: self.action_counts.get(name).copied().unwrap_or(0),
            #[cfg(feature = "monitor")]
            baseline_mae: self.monitor_state.training_mae(name),
            #[cfg(not(feature = "monitor"))]
            baseline_mae: None,
            #[cfg(feature = "monitor")]
            feature_baseline: self
                .monitor_state
                .training_baseline(name)
                .as_ref()
                .map(BaselineMeta::from_baseline),
            #[cfg(not(feature = "monitor"))]
            feature_baseline: None,
        };
        let meta_json = serde_json::to_string(&meta).expect("meta serializes");
        std::fs::write(dir.join(format!("{name}.meta.json")), meta_json)
            .map_err(|e| AuError::Backend(e.into()))?;
        Ok(())
    }

    fn load_model_files(&self, name: &str) -> Result<(Network, ModelMeta), AuError> {
        let dir = self
            .model_dir
            .clone()
            .unwrap_or_else(|| PathBuf::from("."));
        let net_path = dir.join(format!("{name}.json"));
        if !net_path.exists() {
            return Err(AuError::ModelNotTrained(name.to_owned()));
        }
        let net = Network::load(&net_path)?;
        let meta_path = dir.join(format!("{name}.meta.json"));
        let meta = if meta_path.exists() {
            let raw = std::fs::read_to_string(&meta_path).map_err(|e| AuError::Backend(e.into()))?;
            serde_json::from_str(&raw)
                .map_err(|e| AuError::Backend(au_nn::NnError::Format(e.to_string())))?
        } else {
            ModelMeta {
                output_split: Vec::new(),
                n_actions: 0,
                baseline_mae: None,
                feature_baseline: None,
            }
        };
        Ok((net, meta))
    }

    /// Offline supervised training over a dataset — the paper trains SL
    /// models "offline after execution" on the collected traces. One epoch
    /// performs one gradient step per `(x, y)` pair. Returns the mean loss
    /// of the final epoch.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Engine::au_nn`].
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `ys` lengths differ or the dataset is empty.
    pub fn train_supervised(
        &mut self,
        model: &str,
        xs: &[Vec<f64>],
        ys: &[Vec<f64>],
        epochs: usize,
    ) -> Result<f64, AuError> {
        assert_eq!(xs.len(), ys.len(), "dataset inputs and labels must pair up");
        assert!(!xs.is_empty(), "dataset must be non-empty");
        let _s = t_span!("train_supervised", model = model, pairs = xs.len(), epochs = epochs);
        let _t = t_time!("au_core.train_supervised");
        let instance = self
            .models
            .get_mut(model)
            .ok_or_else(|| AuError::UnknownModel(model.to_owned()))?;
        let backend = instance.ensure_supervised(model, xs[0].len(), ys[0].len())?;
        self.output_splits
            .entry(model.to_owned())
            .or_insert_with(|| vec![ys[0].len()]);
        let last_epoch_loss = match backend {
            Backend::Supervised {
                net,
                opt,
                train_steps,
            } => {
                let mut last_epoch_loss = 0.0f64;
                for _ in 0..epochs {
                    let _e = t_time!("au_core.train_epoch");
                    let mut total = 0.0f64;
                    for (x, y) in xs.iter().zip(ys) {
                        total += f64::from(supervised_step(net, opt, x, y));
                        *train_steps += 1;
                    }
                    t_count!("au_core.rows_trained", xs.len() as u64);
                    last_epoch_loss = total / xs.len() as f64;
                    t_gauge!("au_core.last_loss", last_epoch_loss);
                }
                last_epoch_loss
            }
            Backend::Reinforcement { .. } => unreachable!("ensure_supervised checked"),
        };
        // With monitoring on, one extra pass over the dataset records the
        // trained model's input distribution and per-sample absolute error —
        // the baselines the deployed monitor will compare against.
        #[cfg(feature = "monitor")]
        if self.monitor_state.enabled() {
            for (x, y) in xs.iter().zip(ys) {
                let pred = self.predict(model, x)?;
                self.monitor_state
                    .observe_training(model, x, mean_abs_err(&pred, y));
            }
        }
        Ok(last_epoch_loss)
    }

    /// Direct prediction bypassing π — used by experiment harnesses to
    /// score models on held-out inputs.
    ///
    /// # Errors
    ///
    /// [`AuError::UnknownModel`] or [`AuError::ModelNotTrained`].
    pub fn predict(&mut self, model: &str, x: &[f64]) -> Result<Vec<f64>, AuError> {
        let _t = t_time!("au_core.predict");
        t_count!("au_core.predictions_served");
        let instance = self
            .models
            .get_mut(model)
            .ok_or_else(|| AuError::UnknownModel(model.to_owned()))?;
        match instance.backend.as_mut() {
            Some(Backend::Supervised { net, .. }) => Ok(run_model(net, x)),
            Some(Backend::Reinforcement { agent, .. }) => {
                let q = agent.q_values(&crate::model::to_f32(x));
                Ok(q.into_iter().map(f64::from).collect())
            }
            None => Err(AuError::ModelNotTrained(model.to_owned())),
        }
    }

    /// Size/training statistics for a built model (Table 2's model size).
    pub fn model_stats(&mut self, name: &str) -> Option<ModelStats> {
        self.models.get_mut(name)?.stats()
    }

    /// Names of configured models.
    pub fn model_names(&self) -> Vec<&str> {
        self.models.keys().map(String::as_str).collect()
    }

    /// Human-readable report of the global telemetry recorder: every
    /// counter, gauge, and latency histogram the runtime has touched.
    /// Returns an empty-ish header until `au_telemetry::enable()` has been
    /// called and instrumented paths have run.
    #[cfg(feature = "telemetry")]
    pub fn telemetry_report(&self) -> String {
        au_telemetry::global().summary()
    }

    // ------------------------------------------------------------------
    // Monitoring (the `monitor` feature)
    // ------------------------------------------------------------------

    /// Switches prediction-quality monitoring on for this engine.
    ///
    /// Call *before* `au_config` in TS mode so loaded models pick up their
    /// persisted training baselines. In TR mode the engine accumulates
    /// baselines from the training stream and persists them with
    /// [`Engine::save_model`]; an in-process TR→TS switch hands them to the
    /// monitor directly. Engines created after
    /// [`crate::set_default_monitor_config`] start monitored automatically.
    #[cfg(feature = "monitor")]
    pub fn set_monitor_config(&mut self, config: au_monitor::MonitorConfig) {
        self.monitor_state.config = Some(config);
    }

    /// Whether monitoring is active on this engine.
    #[cfg(feature = "monitor")]
    pub fn monitoring_enabled(&self) -> bool {
        self.monitor_state.enabled()
    }

    /// The live monitor for a model, once it has served in TS mode.
    #[cfg(feature = "monitor")]
    pub fn monitor(&self, model: &str) -> Option<&au_monitor::ModelMonitor> {
        self.monitor_state.monitors.get(model)
    }

    /// Re-arms a model degraded by the fallback policy (e.g. after
    /// retraining, or an operator decision to trust it again).
    #[cfg(feature = "monitor")]
    pub fn clear_degraded(&mut self, model: &str) {
        if let Some(m) = self.monitor_state.monitors.get_mut(model) {
            m.clear_degraded();
        }
    }

    /// Human-readable monitoring report across every observed model — the
    /// monitoring sibling of [`Engine::telemetry_report`].
    #[cfg(feature = "monitor")]
    pub fn monitor_report(&self) -> String {
        let mut out = String::from("== monitor report ==\n");
        if !self.monitor_state.enabled() {
            out.push_str("(monitoring disabled)\n");
            return out;
        }
        if self.monitor_state.monitors.is_empty() {
            out.push_str("(no models observed in TS mode yet)\n");
            return out;
        }
        for (name, m) in &self.monitor_state.monitors {
            out.push_str(&format!("  {name}: {}\n", m.report()));
        }
        out
    }

    /// Dumps a model's flight recorder to `<model>.flight.jsonl` in the
    /// model directory, returning the path. Also invoked automatically when
    /// a critical alert fires.
    ///
    /// # Errors
    ///
    /// [`AuError::UnknownModel`] if the model has no monitor yet;
    /// [`AuError::Backend`] on I/O failure.
    #[cfg(feature = "monitor")]
    pub fn dump_flight_recorder(&self, model: &str) -> Result<PathBuf, AuError> {
        let mon = self
            .monitor_state
            .monitors
            .get(model)
            .ok_or_else(|| AuError::UnknownModel(model.to_owned()))?;
        let dir = self
            .model_dir
            .clone()
            .unwrap_or_else(|| PathBuf::from("."));
        std::fs::create_dir_all(&dir).map_err(|e| AuError::Backend(e.into()))?;
        let path = dir.join(format!("{model}.flight.jsonl"));
        let mut file = std::fs::File::create(&path).map_err(|e| AuError::Backend(e.into()))?;
        mon.flight()
            .write_jsonl(&mut file)
            .map_err(|e| AuError::Backend(e.into()))?;
        Ok(path)
    }

    /// Whether the fallback policy has already degraded `model`.
    #[cfg(feature = "monitor")]
    fn monitor_degraded(&self, model: &str) -> bool {
        self.monitor_state
            .monitors
            .get(model)
            .is_some_and(au_monitor::ModelMonitor::is_degraded)
    }

    /// Feeds one TS-mode observation to the model's monitor, emits any
    /// newly raised alerts, dumps the flight recorder on a critical alert,
    /// and returns whether the model is now degraded (fallback policy).
    #[cfg(feature = "monitor")]
    fn monitor_observe(
        &mut self,
        model: &str,
        features: &[f64],
        prediction: &[f64],
        outcome: Option<&[f64]>,
    ) -> bool {
        // The lifetime extracted-scalar count doubles as a correlation id:
        // it lines the flight record up with the trace position at serve
        // time (spans have no exposed ids).
        let corr = self.extracted_total;
        let (critical, degraded) = match self.monitor_state.ensure_monitor(model) {
            Some(mon) => {
                let alerts = mon.observe(features, prediction, outcome, corr);
                let critical = alerts
                    .iter()
                    .any(|a| a.level == au_monitor::AlertLevel::Critical);
                crate::monitoring::emit_alerts(model, &alerts);
                (critical, mon.is_degraded())
            }
            None => (false, false),
        };
        if critical {
            // Black-box discipline: persist the moments leading up to the
            // incident while they are still in the ring buffer.
            if let Err(e) = self.dump_flight_recorder(model) {
                eprintln!("au_core.monitor: flight-recorder dump for `{model}` failed: {e}");
            }
        }
        degraded
    }
}

/// Mean absolute element-wise error over the overlapping prefix; `None`
/// when either side is empty.
#[cfg(feature = "monitor")]
fn mean_abs_err(prediction: &[f64], truth: &[f64]) -> Option<f64> {
    let n = prediction.len().min(truth.len());
    if n == 0 {
        return None;
    }
    let sum: f64 = prediction
        .iter()
        .zip(truth.iter())
        .map(|(p, t)| (p - t).abs())
        .sum();
    Some(sum / n as f64)
}

fn meta_actions(counts: &BTreeMap<String, usize>, name: &str, net: &Network) -> usize {
    let n = counts.get(name).copied().unwrap_or(0);
    if n > 0 {
        n
    } else {
        net.out_features()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;

    #[test]
    fn extract_then_write_back_round_trip() {
        let mut e = Engine::new(Mode::Train);
        e.au_extract("A", &[1.0, 2.0, 3.0]);
        let mut out = [0.0; 2];
        e.au_write_back("A", &mut out).unwrap();
        assert_eq!(out, [1.0, 2.0]);
    }

    #[test]
    fn write_back_checks_availability() {
        let mut e = Engine::new(Mode::Train);
        e.au_extract("A", &[1.0]);
        let mut out = [0.0; 3];
        assert!(matches!(
            e.au_write_back("A", &mut out),
            Err(AuError::MissingData { wanted: 3, available: 1, .. })
        ));
    }

    #[test]
    fn au_nn_requires_config() {
        let mut e = Engine::new(Mode::Train);
        e.au_extract("F", &[1.0]);
        assert!(matches!(
            e.au_nn("nope", "F", &["P"]),
            Err(AuError::UnknownModel(_))
        ));
    }

    #[test]
    fn au_nn_requires_input() {
        let mut e = Engine::new(Mode::Train);
        e.au_config("M", ModelConfig::dnn(&[4])).unwrap();
        assert!(matches!(
            e.au_nn("M", "F", &["P"]),
            Err(AuError::MissingData { .. })
        ));
    }

    #[test]
    fn au_nn_trains_toward_labels_and_clears_input() {
        au_nn::set_init_seed(21);
        let mut e = Engine::new(Mode::Train);
        e.au_config("M", ModelConfig::dnn(&[16]).with_learning_rate(0.02))
            .unwrap();
        // learn y = 2x on [0,1]
        for step in 0..300 {
            let x = (step % 20) as f64 / 20.0;
            e.au_extract("F", &[x]);
            e.au_extract("P", &[2.0 * x]);
            e.au_nn("M", "F", &["P"]).unwrap();
            assert_eq!(e.db().get("F"), &[] as &[f64], "ext reset to ⊥");
        }
        e.au_extract("F", &[0.5]);
        // Deployment-style call: no labels (π("P") holds the last prediction,
        // but we clear it to simulate a fresh run).
        e.db.clear("P");
        e.set_mode(Mode::Test);
        e.au_nn("M", "F", &["P"]).unwrap();
        let p = e.au_write_back_scalar("P").unwrap();
        assert!((p - 1.0).abs() < 0.25, "predicted {p}, want ≈1.0");
    }

    #[test]
    fn au_nn_splits_outputs_across_wb_names() {
        let mut e = Engine::new(Mode::Train);
        e.au_config("M", ModelConfig::dnn(&[8])).unwrap();
        e.au_extract("HIST", &[0.1, 0.2]);
        e.au_extract("LO", &[0.3]);
        e.au_extract("HI", &[0.9]);
        let out = e.au_nn("M", "HIST", &["LO", "HI"]).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(e.db().get("LO").len(), 1);
        assert_eq!(e.db().get("HI").len(), 1);
    }

    #[test]
    fn au_nn_rl_returns_action_and_one_hot() {
        let mut e = Engine::new(Mode::Train);
        e.au_config("Mario", ModelConfig::q_dnn(&[8])).unwrap();
        e.au_extract("PX", &[0.5]);
        e.au_extract("PY", &[0.25]);
        let ser = e.au_serialize(&["PX", "PY"]);
        let action = e.au_nn_rl("Mario", &ser, 0.0, false, "output", 5).unwrap();
        assert!(action < 5);
        let out = e.db().get("output").to_vec();
        assert_eq!(out.len(), 5);
        assert_eq!(out.iter().filter(|&&v| v == 1.0).count(), 1);
        assert_eq!(out[action], 1.0);
        let mut keys = vec![0.0; 5];
        e.au_write_back("output", &mut keys).unwrap();
        assert_eq!(keys[action], 1.0);
    }

    #[test]
    fn algorithm_mismatch_is_rejected() {
        let mut e = Engine::new(Mode::Train);
        e.au_config("SL", ModelConfig::dnn(&[4])).unwrap();
        e.au_config("RL", ModelConfig::q_dnn(&[4])).unwrap();
        e.au_extract("F", &[1.0]);
        assert!(matches!(
            e.au_nn_rl("SL", "F", 0.0, false, "o", 2),
            Err(AuError::WrongAlgorithm { .. })
        ));
        e.au_extract("F", &[1.0]);
        e.au_extract("L", &[1.0]);
        assert!(matches!(
            e.au_nn("RL", "F", &["L"]),
            Err(AuError::WrongAlgorithm { .. })
        ));
    }

    #[test]
    fn reconfiguring_same_model_is_idempotent() {
        let mut e = Engine::new(Mode::Train);
        e.au_config("M", ModelConfig::dnn(&[4])).unwrap();
        assert!(e.au_config("M", ModelConfig::dnn(&[4])).is_ok());
        assert!(matches!(
            e.au_config("M", ModelConfig::dnn(&[8])),
            Err(AuError::ModelExists(_))
        ));
    }

    #[test]
    fn checkpoint_restores_db_but_not_model() {
        au_nn::set_init_seed(22);
        let mut e = Engine::new(Mode::Train);
        e.au_config("M", ModelConfig::dnn(&[4])).unwrap();
        e.au_extract("STATE", &[42.0]);
        e.au_checkpoint();
        e.au_extract("STATE", &[99.0]);
        // Train a little so θ changes after the checkpoint.
        e.au_extract("F", &[1.0]);
        e.au_extract("L", &[0.5]);
        e.au_nn("M", "F", &["L"]).unwrap();
        let steps_before = e.model_stats("M").unwrap().train_steps;
        e.au_restore().unwrap();
        assert_eq!(e.db().get("STATE"), &[42.0], "π rolled back");
        assert_eq!(
            e.model_stats("M").unwrap().train_steps,
            steps_before,
            "θ untouched by restore"
        );
        // Restore is repeatable (the paper restores every episode).
        e.au_extract("STATE", &[7.0]);
        e.au_restore().unwrap();
        assert_eq!(e.db().get("STATE"), &[42.0]);
    }

    #[test]
    fn restore_without_checkpoint_errors() {
        let mut e = Engine::new(Mode::Train);
        assert!(matches!(e.au_restore(), Err(AuError::NoCheckpoint)));
    }

    #[test]
    fn combined_checkpoint_round_trip() {
        let mut e = Engine::new(Mode::Train);
        e.au_extract("D", &[1.0]);
        let game_state = (3usize, vec![1.0f64, 2.0]);
        let ckpt = e.checkpoint_with(&game_state);
        e.au_extract("D", &[2.0]);
        let restored = e.restore_with(&ckpt);
        assert_eq!(restored, game_state);
        assert_eq!(e.db().get("D"), &[1.0]);
    }

    #[test]
    fn save_and_load_model_across_modes() {
        au_nn::set_init_seed(23);
        let dir = std::env::temp_dir().join("au_core_engine_test");
        let _ = std::fs::remove_dir_all(&dir);

        // TR run: train y = x + 1 and save.
        let mut tr = Engine::new(Mode::Train);
        tr.set_model_dir(&dir);
        tr.au_config("M", ModelConfig::dnn(&[16]).with_learning_rate(0.02))
            .unwrap();
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 20.0]).collect();
        let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![x[0] + 1.0]).collect();
        tr.train_supervised("M", &xs, &ys, 150).unwrap();
        tr.save_model("M").unwrap();

        // TS run in a fresh engine: au_config loads the trained model.
        let mut ts = Engine::new(Mode::Test);
        ts.set_model_dir(&dir);
        ts.au_config("M", ModelConfig::dnn(&[16]).with_learning_rate(0.02))
            .unwrap();
        ts.au_extract("F", &[0.5]);
        ts.au_nn("M", "F", &["P"]).unwrap();
        let p = ts.au_write_back_scalar("P").unwrap();
        assert!((p - 1.5).abs() < 0.3, "loaded model predicts {p}, want ≈1.5");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn test_mode_config_without_saved_model_errors() {
        let dir = std::env::temp_dir().join("au_core_missing_model");
        let _ = std::fs::remove_dir_all(&dir);
        let mut ts = Engine::new(Mode::Test);
        ts.set_model_dir(&dir);
        assert!(matches!(
            ts.au_config("Ghost", ModelConfig::dnn(&[4])),
            Err(AuError::ModelNotTrained(_))
        ));
    }

    #[test]
    fn rl_model_save_load_round_trip() {
        au_nn::set_init_seed(24);
        let dir = std::env::temp_dir().join("au_core_rl_model");
        let _ = std::fs::remove_dir_all(&dir);
        let mut tr = Engine::new(Mode::Train);
        tr.set_model_dir(&dir);
        tr.au_config("Q", ModelConfig::q_dnn(&[8])).unwrap();
        for _ in 0..5 {
            tr.au_extract("S", &[0.5]);
            tr.au_nn_rl("Q", "S", 1.0, false, "out", 3).unwrap();
        }
        tr.save_model("Q").unwrap();

        let mut ts = Engine::new(Mode::Test);
        ts.set_model_dir(&dir);
        ts.au_config("Q", ModelConfig::q_dnn(&[8])).unwrap();
        ts.au_extract("S", &[0.5]);
        let a = ts.au_nn_rl("Q", "S", 0.0, false, "out", 3).unwrap();
        assert!(a < 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn custom_network_config_works_for_both_algorithms() {
        use au_nn::Activation;
        au_nn::set_init_seed(55);
        let mut e = Engine::new(Mode::Train);
        let sl_net = Network::builder(3)
            .dense(6)
            .activation(Activation::Tanh)
            .dense(1)
            .build();
        e.au_config_custom("CustomSL", crate::model::Algorithm::AdamOpt, sl_net)
            .unwrap();
        e.au_extract("F", &[0.1, 0.2, 0.3]);
        e.au_extract("Y", &[1.0]);
        e.au_nn("CustomSL", "F", &["Y"]).unwrap();
        assert_eq!(e.model_stats("CustomSL").unwrap().train_steps, 1);

        let rl_net = Network::builder(2).dense(8).dense(3).build();
        e.au_config_custom("CustomRL", crate::model::Algorithm::QLearn, rl_net)
            .unwrap();
        e.au_extract("S", &[0.5, -0.5]);
        let a = e.au_nn_rl("CustomRL", "S", 0.0, false, "out", 3).unwrap();
        assert!(a < 3);
        // Duplicate registration is rejected.
        let dup = Network::builder(2).dense(3).build();
        assert!(matches!(
            e.au_config_custom("CustomRL", crate::model::Algorithm::QLearn, dup),
            Err(AuError::ModelExists(_))
        ));
    }

    #[test]
    fn db_save_load_round_trip() {
        let dir = std::env::temp_dir().join("au_core_db_roundtrip.json");
        let mut e = Engine::new(Mode::Train);
        e.au_extract("A", &[1.0, 2.0]);
        e.au_extract("B", &[3.0]);
        e.save_db(&dir).unwrap();

        let mut fresh = Engine::new(Mode::Train);
        fresh.load_db(&dir).unwrap();
        assert_eq!(fresh.db().get("A"), &[1.0, 2.0]);
        assert_eq!(fresh.db().get("B"), &[3.0]);
        assert_eq!(fresh.total_extracted(), 3);
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn supervised_cnn_model_works_through_primitives() {
        au_nn::set_init_seed(56);
        let mut e = Engine::new(Mode::Train);
        // The SL Raw setting with a convolutional front end: an 8x8 frame
        // in, one parameter out.
        e.au_config("RawSL", ModelConfig::cnn(1, 8, 8, &[16]).with_learning_rate(5e-3))
            .unwrap();
        for step in 0..30 {
            let brightness = (step % 10) as f64 / 10.0;
            let frame = vec![brightness; 64];
            e.au_extract("IMG", &frame);
            e.au_extract("P", &[brightness * 2.0]);
            e.au_nn("RawSL", "IMG", &["P"]).unwrap();
        }
        let stats = e.model_stats("RawSL").unwrap();
        assert_eq!(stats.train_steps, 30);
        // Conv stack parameters present (not just the dense head).
        assert!(stats.param_count > 16);
        e.set_mode(Mode::Test);
        e.au_extract("IMG", &vec![0.5; 64]);
        e.au_nn("RawSL", "IMG", &["P"]).unwrap();
        let p = e.au_write_back_scalar("P").unwrap();
        assert!(p.is_finite());
    }

    /// Trains y = 2x on a monitored engine and returns it switched to TS
    /// mode, ready to serve.
    #[cfg(feature = "monitor")]
    fn monitored_engine(config: au_monitor::MonitorConfig) -> Engine {
        au_nn::set_init_seed(31);
        let mut e = Engine::new(Mode::Train);
        e.set_monitor_config(config);
        e.au_config("M", ModelConfig::dnn(&[16]).with_learning_rate(0.02))
            .unwrap();
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0]).collect();
        let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![2.0 * x[0]]).collect();
        e.train_supervised("M", &xs, &ys, 120).unwrap();
        e.set_mode(Mode::Test);
        e
    }

    #[cfg(feature = "monitor")]
    #[test]
    fn monitored_clean_stream_raises_no_alerts() {
        let mut e = monitored_engine(au_monitor::MonitorConfig::default());
        for i in 0..40 {
            let x = ((i * 13) % 40) as f64 / 40.0;
            e.au_extract("F", &[x]);
            e.au_nn("M", "F", &["P"]).unwrap();
        }
        let m = e.monitor("M").expect("monitor exists after TS serving");
        assert!(m.alerts().is_empty(), "clean run alerted: {:?}", m.alerts());
        assert!(!m.is_degraded());
        let report = e.monitor_report();
        assert!(report.contains("M:"), "{report}");
        assert!(report.contains("observations=40"), "{report}");
    }

    #[cfg(feature = "monitor")]
    #[test]
    fn monitored_corrupted_stream_alerts_and_degrades() {
        let dir = std::env::temp_dir().join("au_core_monitor_degrade");
        let _ = std::fs::remove_dir_all(&dir);
        let mut e = monitored_engine(au_monitor::MonitorConfig::default().with_fallback(true));
        e.set_model_dir(&dir);
        // Sensor corruption: inputs far outside the trained [0, 1) range.
        let mut served_err = false;
        for _ in 0..40 {
            e.au_extract("F", &[250.0]);
            match e.au_nn("M", "F", &["P"]) {
                Ok(_) => {}
                Err(AuError::ModelDegraded(name)) => {
                    assert_eq!(name, "M");
                    served_err = true;
                    break;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(served_err, "fallback must kick in on a corrupted stream");
        let m = e.monitor("M").unwrap();
        assert!(m.is_degraded());
        assert!(!m.alerts().is_empty());
        // The critical alert auto-dumped the black box.
        let flight = dir.join("M.flight.jsonl");
        assert!(flight.exists(), "flight recorder dumped on critical alert");
        let text = std::fs::read_to_string(&flight).unwrap();
        assert!(text.lines().count() >= 1);
        assert!(text.contains("\"features\":[250"), "{text}");
        // Degraded models keep refusing until re-armed; π(ext) is consumed.
        e.au_extract("F", &[0.5]);
        assert!(matches!(
            e.au_nn("M", "F", &["P"]),
            Err(AuError::ModelDegraded(_))
        ));
        assert!(e.db().get("F").is_empty(), "input consumed on refusal");
        e.clear_degraded("M");
        e.au_extract("F", &[0.5]);
        e.au_nn("M", "F", &["P"]).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(feature = "monitor")]
    #[test]
    fn baseline_persists_through_model_sidecar() {
        au_nn::set_init_seed(32);
        let dir = std::env::temp_dir().join("au_core_monitor_sidecar");
        let _ = std::fs::remove_dir_all(&dir);
        let mut tr = Engine::new(Mode::Train);
        tr.set_monitor_config(au_monitor::MonitorConfig::default());
        tr.set_model_dir(&dir);
        tr.au_config("M", ModelConfig::dnn(&[16]).with_learning_rate(0.02))
            .unwrap();
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 30.0, 5.0]).collect();
        let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![x[0] + 1.0]).collect();
        tr.train_supervised("M", &xs, &ys, 100).unwrap();
        tr.save_model("M").unwrap();
        // The sidecar carries the training distribution and baseline MAE.
        let raw = std::fs::read_to_string(dir.join("M.meta.json")).unwrap();
        assert!(raw.contains("feature_baseline"), "{raw}");
        assert!(raw.contains("baseline_mae"), "{raw}");

        // A fresh TS engine picks the baseline up and detects drift with it.
        let mut ts = Engine::new(Mode::Test);
        ts.set_monitor_config(au_monitor::MonitorConfig::default());
        ts.set_model_dir(&dir);
        ts.au_config("M", ModelConfig::dnn(&[16]).with_learning_rate(0.02))
            .unwrap();
        let m = ts.monitor("M").expect("monitor installed at load");
        assert!(m.report().has_baseline, "loaded baseline attached");
        assert!((m.baseline_mae().unwrap()) < 0.5, "plausible training MAE");
        ts.au_extract("F", &[99.0, 99.0]);
        ts.au_nn("M", "F", &["P"]).unwrap();
        let m = ts.monitor("M").unwrap();
        assert_eq!(
            m.last_drift().unwrap().out_of_range,
            2,
            "out-of-range flagged against the persisted baseline"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(feature = "monitor")]
    #[test]
    fn sidecar_without_monitoring_still_loads() {
        // A meta written by a non-monitored run has null baselines; a
        // monitored TS engine must load it and run with drift inert.
        au_nn::set_init_seed(33);
        let dir = std::env::temp_dir().join("au_core_monitor_nullmeta");
        let _ = std::fs::remove_dir_all(&dir);
        let mut tr = Engine::new(Mode::Train);
        tr.set_model_dir(&dir);
        tr.au_config("M", ModelConfig::dnn(&[8])).unwrap();
        let xs = vec![vec![0.1], vec![0.9]];
        let ys = vec![vec![0.2], vec![1.8]];
        tr.train_supervised("M", &xs, &ys, 10).unwrap();
        tr.save_model("M").unwrap();

        let mut ts = Engine::new(Mode::Test);
        ts.set_monitor_config(au_monitor::MonitorConfig::default());
        ts.set_model_dir(&dir);
        ts.au_config("M", ModelConfig::dnn(&[8])).unwrap();
        ts.au_extract("F", &[0.5]);
        ts.au_nn("M", "F", &["P"]).unwrap();
        let m = ts.monitor("M").unwrap();
        assert!(!m.report().has_baseline);
        assert!(m.alerts().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(feature = "monitor")]
    #[test]
    fn rl_monitoring_flags_out_of_range_states() {
        au_nn::set_init_seed(34);
        let mut e = Engine::new(Mode::Train);
        e.set_monitor_config(au_monitor::MonitorConfig::default());
        e.au_config("Q", ModelConfig::q_dnn(&[8])).unwrap();
        for i in 0..30 {
            e.au_extract("S", &[(i % 10) as f64 / 10.0, 0.5]);
            e.au_nn_rl("Q", "S", 0.1, false, "out", 3).unwrap();
        }
        e.set_mode(Mode::Test);
        e.au_extract("S", &[42.0, -3.0]);
        e.au_nn_rl("Q", "S", 0.0, false, "out", 3).unwrap();
        let m = e.monitor("Q").expect("RL model monitored");
        assert_eq!(m.last_drift().unwrap().out_of_range, 2);
        assert!(m
            .alerts()
            .iter()
            .any(|a| a.kind == au_monitor::AlertKind::OutOfRange));
    }

    #[test]
    fn serialize_matches_fig2_usage() {
        let mut e = Engine::new(Mode::Train);
        e.au_extract("PX", &[1.0]);
        e.au_extract("PY", &[2.0]);
        e.au_extract("MnX", &[3.0]);
        e.au_extract("MnY", &[4.0]);
        e.au_extract("Obj", &[5.0]);
        let name = e.au_serialize(&["PX", "PY", "MnX", "MnY", "Obj"]);
        assert_eq!(e.db().get(&name), &[1.0, 2.0, 3.0, 4.0, 5.0]);
    }
}
