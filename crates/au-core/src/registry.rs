//! The model-registry layer: the model store θ behind per-model locks.
//!
//! The registry maps model names to [`ModelEntry`] values, each behind its
//! own `RwLock` so two threads serving *different* models never contend, and
//! threads serving the *same* model in deployment mode share a read lock.
//! The name→entry maps themselves are sharded to keep registration and
//! lookup from serializing on one lock.
//!
//! Lock discipline: the registry hands out `Arc`s to entries; callers lock
//! an entry only after releasing the shard lock, and the engine layer never
//! holds an entry lock and the π lock at the same time.

use crate::error::AuError;
use crate::lockwait::{shard_read, shard_write};
use crate::model::{ModelConfig, ModelInstance};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Number of independent name→entry maps. Eight is plenty: contention on a
/// shard only happens during registration, not serving.
const SHARDS: usize = 8;

/// Locks a mutex, recovering the data if a previous holder panicked — the
/// stores hold plain data that stays structurally valid across unwinds, so
/// poisoning must not cascade into every other serving thread.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Read-locks an `RwLock`, recovering from poisoning (see [`lock`]).
pub(crate) fn read<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

/// Write-locks an `RwLock`, recovering from poisoning (see [`lock`]).
pub(crate) fn write<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

/// Everything the runtime knows about one named model: the instance (config
/// plus lazily built backend) and the per-model bookkeeping that used to
/// live in separate `Engine` maps, now co-located under the entry's lock.
#[derive(Debug)]
pub(crate) struct ModelEntry {
    pub instance: ModelInstance,
    /// Split of the flat model output across the `wb` names of `au_nn`,
    /// fixed the first time labels are seen (persisted alongside the model).
    pub output_split: Option<Vec<usize>>,
    /// RL action count (persisted alongside the model).
    pub n_actions: usize,
}

impl ModelEntry {
    pub fn new(instance: ModelInstance) -> Self {
        ModelEntry {
            instance,
            output_split: None,
            n_actions: 0,
        }
    }
}

/// A shared, lockable handle to one model's entry.
pub(crate) type SharedEntry = Arc<RwLock<ModelEntry>>;

/// The model store θ: sharded name→entry maps with per-entry locks.
#[derive(Debug, Default)]
pub(crate) struct ModelRegistry {
    shards: [RwLock<BTreeMap<String, SharedEntry>>; SHARDS],
}

impl ModelRegistry {
    /// FNV-1a over the name selects the shard.
    fn shard_of(name: &str) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % SHARDS as u64) as usize
    }

    /// Looks a model up, returning a clone of its shared entry. The shard
    /// lock is released before the caller locks the entry.
    pub fn get(&self, name: &str) -> Option<SharedEntry> {
        shard_read(&self.shards[Self::shard_of(name)])
            .get(name)
            .cloned()
    }

    /// Registers a model, treating re-registration with an *identical*
    /// configuration as a no-op (rule CONFIG-TRAIN's θ(mdName) ≢ ⊥ case).
    ///
    /// # Errors
    ///
    /// [`AuError::ModelExists`] if the name is taken by a different
    /// configuration.
    pub fn insert(&self, name: &str, entry: ModelEntry) -> Result<(), AuError> {
        let mut shard = shard_write(&self.shards[Self::shard_of(name)]);
        match shard.get(name) {
            Some(existing) => {
                if read(existing).instance.config == entry.instance.config {
                    Ok(())
                } else {
                    Err(AuError::ModelExists(name.to_owned()))
                }
            }
            None => {
                shard.insert(name.to_owned(), Arc::new(RwLock::new(entry)));
                Ok(())
            }
        }
    }

    /// Registers a model that must not exist yet (custom networks carry no
    /// comparable configuration, so idempotent re-registration is unsound).
    ///
    /// # Errors
    ///
    /// [`AuError::ModelExists`] if the name is taken.
    pub fn insert_new(&self, name: &str, entry: ModelEntry) -> Result<(), AuError> {
        let mut shard = shard_write(&self.shards[Self::shard_of(name)]);
        if shard.contains_key(name) {
            return Err(AuError::ModelExists(name.to_owned()));
        }
        shard.insert(name.to_owned(), Arc::new(RwLock::new(entry)));
        Ok(())
    }

    /// Clones every registered entry handle. Shard locks are released
    /// before any entry is locked, preserving the lock discipline above.
    pub fn entries(&self) -> Vec<SharedEntry> {
        self.shards
            .iter()
            .flat_map(|s| shard_read(s).values().cloned().collect::<Vec<_>>())
            .collect()
    }

    /// Registered-model count per shard, in shard order — the occupancy
    /// stats surfaced by the observability plane's `/health` endpoint.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| shard_read(s).len()).collect()
    }

    /// Whether a model is registered.
    pub fn contains(&self, name: &str) -> bool {
        shard_read(&self.shards[Self::shard_of(name)]).contains_key(name)
    }

    /// All registered names in sorted order (the order the old single
    /// `BTreeMap` iterated in).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| shard_read(s).keys().cloned().collect::<Vec<_>>())
            .collect();
        names.sort();
        names
    }

    /// Validates a configuration against an existing entry, mirroring
    /// [`ModelRegistry::insert`]'s comparison without inserting.
    pub fn check_config(&self, name: &str, config: &ModelConfig) -> Option<Result<(), AuError>> {
        let entry = self.get(name)?;
        let same = read(&entry).instance.config == *config;
        Some(if same {
            Ok(())
        } else {
            Err(AuError::ModelExists(name.to_owned()))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;

    #[test]
    fn insert_then_get_round_trips() {
        let reg = ModelRegistry::default();
        reg.insert(
            "M",
            ModelEntry::new(ModelInstance::new(ModelConfig::dnn(&[4]))),
        )
        .unwrap();
        assert!(reg.contains("M"));
        let entry = reg.get("M").unwrap();
        assert_eq!(read(&entry).n_actions, 0);
        assert!(reg.get("other").is_none());
    }

    #[test]
    fn reinsert_same_config_is_idempotent() {
        let reg = ModelRegistry::default();
        reg.insert(
            "M",
            ModelEntry::new(ModelInstance::new(ModelConfig::dnn(&[4]))),
        )
        .unwrap();
        assert!(reg
            .insert(
                "M",
                ModelEntry::new(ModelInstance::new(ModelConfig::dnn(&[4])))
            )
            .is_ok());
        assert!(matches!(
            reg.insert(
                "M",
                ModelEntry::new(ModelInstance::new(ModelConfig::dnn(&[8])))
            ),
            Err(AuError::ModelExists(_))
        ));
        assert!(matches!(
            reg.insert_new(
                "M",
                ModelEntry::new(ModelInstance::new(ModelConfig::dnn(&[4])))
            ),
            Err(AuError::ModelExists(_))
        ));
    }

    #[test]
    fn names_are_sorted_across_shards() {
        let reg = ModelRegistry::default();
        for name in ["zeta", "alpha", "mid", "beta", "omega", "kappa"] {
            reg.insert(
                name,
                ModelEntry::new(ModelInstance::new(ModelConfig::dnn(&[2]))),
            )
            .unwrap();
        }
        assert_eq!(
            reg.names(),
            vec!["alpha", "beta", "kappa", "mid", "omega", "zeta"]
        );
    }
}
