//! Model configuration and backends (the model store θ).

use crate::error::AuError;
use au_nn::rl::{DqnAgent, DqnConfig, Transition};
use au_nn::{Activation, Adam, InferScratch, Loss, Network, Tensor};
use std::cell::RefCell;
use std::sync::Arc;

/// Model architecture family (`ModelType δ` in Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Fully connected network over flat features.
    Dnn,
    /// Convolutional network over raw pixel frames — the paper's `Raw`
    /// baseline architecture (conv → pool layers before the dense head).
    Cnn,
}

/// Learning algorithm (`Algorithm α` in Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Q-learning (reinforcement learning).
    QLearn,
    /// Adam-optimized supervised regression.
    AdamOpt,
}

/// Declarative model configuration passed to `au_config`.
///
/// Mirrors `@au_config(modelName, modelType, algo, layers, n1, …)`: the
/// hidden-layer widths are explicit while the input and output layer sizes
/// are computed automatically from the first data that reaches the model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Architecture family.
    pub kind: ModelKind,
    /// Learning algorithm.
    pub algorithm: Algorithm,
    /// Hidden dense-layer widths (the paper's `n1, n2, …`).
    pub hidden: Vec<usize>,
    /// Learning rate.
    pub learning_rate: f32,
    /// For [`ModelKind::Cnn`]: input frame shape `(channels, h, w)`.
    pub frame: Option<(usize, usize, usize)>,
    /// For [`Algorithm::QLearn`]: DQN hyperparameters (replay, ε, γ, …).
    pub dqn: DqnConfig,
}

impl ModelConfig {
    /// A supervised DNN (`au_config(name, DNN, AdamOpt, …)`), as used by all
    /// four SL benchmarks.
    pub fn dnn(hidden: &[usize]) -> Self {
        ModelConfig {
            kind: ModelKind::Dnn,
            algorithm: Algorithm::AdamOpt,
            hidden: hidden.to_vec(),
            learning_rate: 1e-3,
            frame: None,
            dqn: DqnConfig::default(),
        }
    }

    /// A Q-learning DNN over internal program state
    /// (`au_config(name, DNN, QLearn, …)`) — the paper's `All` RL setting.
    pub fn q_dnn(hidden: &[usize]) -> Self {
        let dqn = DqnConfig {
            hidden: hidden.to_vec(),
            ..DqnConfig::default()
        };
        ModelConfig {
            kind: ModelKind::Dnn,
            algorithm: Algorithm::QLearn,
            hidden: hidden.to_vec(),
            learning_rate: 1e-3,
            frame: None,
            dqn,
        }
    }

    /// A Q-learning CNN over raw frames — the paper's DeepMind-style `Raw`
    /// RL setting (`au_config(name, CNN, QLearn, …)`).
    pub fn q_cnn(channels: usize, h: usize, w: usize, hidden: &[usize]) -> Self {
        let mut cfg = ModelConfig::q_dnn(hidden);
        cfg.kind = ModelKind::Cnn;
        cfg.frame = Some((channels, h, w));
        cfg
    }

    /// A supervised CNN over raw frames — the SL `Raw` setting.
    pub fn cnn(channels: usize, h: usize, w: usize, hidden: &[usize]) -> Self {
        let mut cfg = ModelConfig::dnn(hidden);
        cfg.kind = ModelKind::Cnn;
        cfg.frame = Some((channels, h, w));
        cfg
    }

    /// Overrides the learning rate.
    pub fn with_learning_rate(mut self, lr: f32) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Overrides the DQN hyperparameters (QLearn models only).
    pub fn with_dqn(mut self, dqn: DqnConfig) -> Self {
        self.dqn = dqn;
        self
    }

    /// Builds the network for a given input/output width.
    pub(crate) fn build_network(&self, inputs: usize, outputs: usize) -> Network {
        match (self.kind, self.frame) {
            (ModelKind::Cnn, Some((c, h, w))) => {
                assert_eq!(c * h * w, inputs, "frame shape must match input width");
                // DeepMind-style preprocessing: conv+pool, conv, then the
                // configured dense head (Section 2: "three convolution
                // layers, each followed by a max pooling layer, and finally
                // two hidden layers"). We scale this down to two conv stages
                // since our frames are already small.
                let mut b = Network::builder(inputs)
                    .conv2d(c, h, w, 4, 3, 1)
                    .activation(Activation::Relu);
                let (h2, w2) = (h - 2, w - 2);
                b = b.max_pool2d(4, h2, w2, 2);
                let (h3, w3) = (h2 / 2, w2 / 2);
                b = b
                    .conv2d(4, h3, w3, 8, 3, 1)
                    .activation(Activation::Relu)
                    .flatten();
                for &n in &self.hidden {
                    b = b.dense(n).activation(Activation::Relu);
                }
                b.dense(outputs).build()
            }
            _ => {
                let mut b = Network::builder(inputs);
                for &n in &self.hidden {
                    b = b.dense(n).activation(Activation::Relu);
                }
                b.dense(outputs).build()
            }
        }
    }
}

/// Size and training statistics for a model — the raw material of the
/// paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelStats {
    /// Scalar parameter count.
    pub param_count: usize,
    /// Parameter bytes (`param_count × 4`).
    pub model_bytes: usize,
    /// Gradient/learning steps taken so far.
    pub train_steps: u64,
}

/// A live model instance: either a supervised regressor or a DQN agent.
///
/// The supervised network sits behind an `Arc` so the serving paths
/// (`predict_batch`'s pool jobs, snapshot readers) can clone a handle out
/// of the registry lock in O(1); training goes through [`net_mut`], which
/// rebuilds the network copy-on-write only when a snapshot is still alive.
#[derive(Debug)]
pub(crate) enum Backend {
    Supervised {
        net: Arc<Network>,
        opt: Adam,
        train_steps: u64,
    },
    Reinforcement {
        agent: Box<DqnAgent>,
        /// Pending (state, action) awaiting the next reward to complete a
        /// transition.
        pending: Option<(Vec<f32>, usize)>,
        train_steps: u64,
    },
}

/// A configured model: configuration plus a lazily built backend
/// (input/output widths become known at the first `au_NN` call).
#[derive(Debug)]
pub(crate) struct ModelInstance {
    pub config: ModelConfig,
    pub backend: Option<Backend>,
}

impl ModelInstance {
    pub fn new(config: ModelConfig) -> Self {
        ModelInstance {
            config,
            backend: None,
        }
    }

    /// Ensures a supervised backend of the given shape exists.
    pub fn ensure_supervised(
        &mut self,
        name: &str,
        inputs: usize,
        outputs: usize,
    ) -> Result<&mut Backend, AuError> {
        if self.config.algorithm != Algorithm::AdamOpt {
            return Err(AuError::WrongAlgorithm {
                model: name.to_owned(),
                expected: "supervised",
            });
        }
        if self.backend.is_none() {
            let net = Arc::new(self.config.build_network(inputs, outputs));
            let opt = Adam::new(self.config.learning_rate);
            self.backend = Some(Backend::Supervised {
                net,
                opt,
                train_steps: 0,
            });
        }
        match self.backend.as_mut().expect("just ensured") {
            Backend::Supervised { net, .. } => {
                if net.in_features() != inputs {
                    return Err(AuError::InputSizeChanged {
                        model: name.to_owned(),
                        built: net.in_features(),
                        got: inputs,
                    });
                }
            }
            Backend::Reinforcement { .. } => {
                return Err(AuError::WrongAlgorithm {
                    model: name.to_owned(),
                    expected: "supervised",
                })
            }
        }
        Ok(self.backend.as_mut().expect("just ensured"))
    }

    /// Ensures a reinforcement backend of the given shape exists.
    pub fn ensure_reinforcement(
        &mut self,
        name: &str,
        inputs: usize,
        n_actions: usize,
    ) -> Result<&mut Backend, AuError> {
        if self.config.algorithm != Algorithm::QLearn {
            return Err(AuError::WrongAlgorithm {
                model: name.to_owned(),
                expected: "reinforcement",
            });
        }
        if self.backend.is_none() {
            let mut dqn = self.config.dqn.clone();
            dqn.hidden = self.config.hidden.clone();
            let agent = match self.config.kind {
                ModelKind::Dnn => DqnAgent::new(inputs, n_actions, dqn),
                ModelKind::Cnn => {
                    let net = self.config.build_network(inputs, n_actions);
                    DqnAgent::with_network(inputs, n_actions, dqn, net)
                }
            };
            self.backend = Some(Backend::Reinforcement {
                agent: Box::new(agent),
                pending: None,
                train_steps: 0,
            });
        }
        match self.backend.as_mut().expect("just ensured") {
            Backend::Reinforcement { agent, .. } => {
                if agent.state_dim() != inputs {
                    return Err(AuError::InputSizeChanged {
                        model: name.to_owned(),
                        built: agent.state_dim(),
                        got: inputs,
                    });
                }
                if agent.n_actions() != n_actions {
                    return Err(AuError::InputSizeChanged {
                        model: name.to_owned(),
                        built: agent.n_actions(),
                        got: n_actions,
                    });
                }
            }
            Backend::Supervised { .. } => {
                return Err(AuError::WrongAlgorithm {
                    model: name.to_owned(),
                    expected: "reinforcement",
                })
            }
        }
        Ok(self.backend.as_mut().expect("just ensured"))
    }

    /// Current statistics, if the backend has been built.
    pub fn stats(&mut self) -> Option<ModelStats> {
        match self.backend.as_mut()? {
            Backend::Supervised {
                net, train_steps, ..
            } => {
                let n = net_mut(net).param_count();
                Some(ModelStats {
                    param_count: n,
                    model_bytes: n * 4,
                    train_steps: *train_steps,
                })
            }
            Backend::Reinforcement {
                agent, train_steps, ..
            } => {
                let n = agent.network_mut().param_count();
                Some(ModelStats {
                    param_count: n,
                    model_bytes: n * 4,
                    train_steps: *train_steps,
                })
            }
        }
    }

    /// Drops cached weight views (transposes) on every network the backend
    /// holds. Called on checkpoint restore: a host that rolls state back may
    /// have mutated parameters through any path, and a stale cached view
    /// would silently poison later backward passes.
    pub fn invalidate_cached_weights(&mut self) {
        match self.backend.as_mut() {
            Some(Backend::Supervised { net, .. }) => net_mut(net).invalidate_cached_weights(),
            Some(Backend::Reinforcement { agent, .. }) => agent.invalidate_cached_weights(),
            None => {}
        }
    }
}

/// Unique access to a shared supervised network, copy-on-write.
///
/// Training mutates the network in place when no inference snapshot holds
/// a second `Arc`; if serving overlaps training, the network is rebuilt
/// once (via `deep_clone`) and the snapshot keeps the old weights — the
/// same isolation the paper gets from its separate TR/TS processes.
pub(crate) fn net_mut(net: &mut Arc<Network>) -> &mut Network {
    if Arc::get_mut(net).is_none() {
        *net = Arc::new(net.deep_clone());
    }
    Arc::get_mut(net).expect("unique after copy-on-write rebuild")
}

/// Runs one supervised gradient step: trains `net` to map `input` to
/// `label` (Fig. 8 rule TRAIN's `gradient` statement).
pub(crate) fn supervised_step(
    net: &mut Network,
    opt: &mut Adam,
    input: &[f64],
    label: &[f64],
) -> f32 {
    let x = Tensor::row(&to_f32(input));
    let y = Tensor::row(&to_f32(label));
    net.train_batch(&x, &y, Loss::Mse, opt)
}

thread_local! {
    /// Per-thread single-row inference scratch: the input row tensor, the
    /// layer-output ping-pong buffers, and the f64→f32 conversion buffer.
    /// Reusing them makes the steady-state serve path allocation-free.
    static ROW_SCRATCH: RefCell<(Tensor, InferScratch, Vec<f32>)> =
        RefCell::new((Tensor::default(), InferScratch::default(), Vec::new()));
}

/// The native-`f32` serving core: runs the model on one feature row,
/// appending the outputs to `out`. All buffers come from thread-local
/// scratch, so the steady state performs zero heap allocations.
pub(crate) fn run_model_f32_into(net: &Network, input: &[f32], out: &mut Vec<f32>) {
    ROW_SCRATCH.with(|cell| {
        let (row, scratch, _) = &mut *cell.borrow_mut();
        row.set_row(input);
        let y = net.infer_reusing(row, scratch);
        out.extend_from_slice(y.data());
    });
}

/// Runs the model on `input` (Fig. 8's `runModel` statement). Uses the
/// pure `&self` inference path so deployment-mode callers can share the
/// network behind a read lock.
///
/// Runs the same scratch-buffer `f32` core as [`run_model_f32_into`] with
/// exactly one narrowing conversion on the way in and one (exact) widening
/// on the way out — the same two conversions the old all-allocating path
/// performed, so results are bit-identical to it.
pub(crate) fn run_model_ref(net: &Network, input: &[f64]) -> Vec<f64> {
    ROW_SCRATCH.with(|cell| {
        let (row, scratch, conv) = &mut *cell.borrow_mut();
        conv.clear();
        conv.extend(input.iter().map(|&v| v as f32));
        row.set_row(conv);
        let y = net.infer_reusing(row, scratch);
        y.data().iter().map(|&v| f64::from(v)).collect()
    })
}

/// Feeds one RL step to the agent: completes the pending transition with
/// `reward`/`terminal`, then selects the next action for `state`.
pub(crate) fn rl_step(
    agent: &mut DqnAgent,
    pending: &mut Option<(Vec<f32>, usize)>,
    state: &[f64],
    reward: f64,
    terminal: bool,
    train: bool,
) -> usize {
    let state32 = to_f32(state);
    if train {
        if let Some((prev_state, prev_action)) = pending.take() {
            agent.observe(Transition {
                state: prev_state,
                action: prev_action,
                reward: reward as f32,
                next_state: state32.clone(),
                terminal,
            });
        }
    }
    let action = if train {
        agent.select_action(&state32)
    } else {
        agent.greedy_action(&state32)
    };
    // Only training mode accumulates transitions; a TS-mode step must not
    // leave a stale pending pair that would pollute later training.
    if terminal || !train {
        *pending = None;
    } else {
        *pending = Some((state32, action));
    }
    action
}

pub(crate) fn to_f32(xs: &[f64]) -> Vec<f32> {
    xs.iter().map(|&x| x as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dnn_config_builds_expected_shape() {
        let cfg = ModelConfig::dnn(&[256, 64]);
        let mut net = cfg.build_network(10, 3);
        assert_eq!(net.in_features(), 10);
        assert_eq!(net.out_features(), 3);
        assert!(net.param_count() > 10 * 256);
    }

    #[test]
    fn cnn_config_builds_conv_stack() {
        let cfg = ModelConfig::q_cnn(1, 16, 16, &[32]);
        let net = cfg.build_network(256, 4);
        assert_eq!(net.in_features(), 256);
        assert_eq!(net.out_features(), 4);
        // A conv stack has strictly more layers than the dense equivalent.
        assert!(net.depth() > 4);
    }

    #[test]
    #[should_panic(expected = "frame shape")]
    fn cnn_rejects_mismatched_frame() {
        let cfg = ModelConfig::q_cnn(1, 16, 16, &[32]);
        let _ = cfg.build_network(100, 4);
    }

    #[test]
    fn instance_rejects_algorithm_mismatch() {
        let mut inst = ModelInstance::new(ModelConfig::dnn(&[8]));
        assert!(matches!(
            inst.ensure_reinforcement("m", 4, 2),
            Err(AuError::WrongAlgorithm { .. })
        ));
        let mut inst = ModelInstance::new(ModelConfig::q_dnn(&[8]));
        assert!(matches!(
            inst.ensure_supervised("m", 4, 2),
            Err(AuError::WrongAlgorithm { .. })
        ));
    }

    #[test]
    fn instance_detects_input_size_change() {
        let mut inst = ModelInstance::new(ModelConfig::dnn(&[4]));
        inst.ensure_supervised("m", 3, 1).unwrap();
        assert!(matches!(
            inst.ensure_supervised("m", 5, 1),
            Err(AuError::InputSizeChanged {
                built: 3,
                got: 5,
                ..
            })
        ));
    }

    #[test]
    fn stats_reflect_backend() {
        let mut inst = ModelInstance::new(ModelConfig::dnn(&[4]));
        assert!(inst.stats().is_none());
        inst.ensure_supervised("m", 2, 1).unwrap();
        let stats = inst.stats().unwrap();
        assert_eq!(stats.param_count, 2 * 4 + 4 + 4 + 1);
        assert_eq!(stats.model_bytes, stats.param_count * 4);
    }

    #[test]
    fn rl_step_completes_transitions() {
        let dqn = DqnConfig {
            hidden: vec![8],
            batch_size: 2,
            ..DqnConfig::default()
        };
        let mut agent = DqnAgent::new(1, 2, dqn);
        let mut pending = None;
        let a1 = rl_step(&mut agent, &mut pending, &[0.0], 0.0, false, true);
        assert!(a1 < 2);
        assert!(pending.is_some());
        let _ = rl_step(&mut agent, &mut pending, &[1.0], 1.0, true, true);
        assert!(pending.is_none(), "terminal clears the pending transition");
    }
}
