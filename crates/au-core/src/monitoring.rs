//! Engine-side monitoring support: the persisted feature-baseline sidecar
//! format and (with the `monitor` feature) the per-model monitor registry.
//!
//! The [`BaselineMeta`] type is compiled unconditionally so `<name>.meta.json`
//! sidecars keep one stable schema whether or not the writer had monitoring
//! enabled — the vendored serde stand-in errors on missing fields, so a
//! feature-gated field would make monitor and non-monitor builds unable to
//! read each other's models.

use serde::{Deserialize, Serialize};

/// Per-feature training distribution snapshot as persisted in a model's
/// `.meta.json` sidecar (columns parallel: index `i` describes feature `i`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineMeta {
    /// Training rows the statistics were computed over.
    pub count: u64,
    /// Per-feature minima.
    pub min: Vec<f64>,
    /// Per-feature maxima.
    pub max: Vec<f64>,
    /// Per-feature means.
    pub mean: Vec<f64>,
    /// Per-feature population variances.
    pub var: Vec<f64>,
}

#[cfg(feature = "monitor")]
pub use gated::*;

#[cfg(feature = "monitor")]
mod gated {
    use super::BaselineMeta;
    use au_monitor::{
        Alert, BaselineBuilder, FeatureBaseline, ModelMonitor, MonitorConfig, TraceSummary,
    };
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    impl BaselineMeta {
        pub(crate) fn from_baseline(b: &FeatureBaseline) -> Self {
            BaselineMeta {
                count: b.count,
                min: b.features.iter().map(|f| f.min).collect(),
                max: b.features.iter().map(|f| f.max).collect(),
                mean: b.features.iter().map(|f| f.mean).collect(),
                var: b.features.iter().map(|f| f.var).collect(),
            }
        }

        pub(crate) fn to_baseline(&self) -> FeatureBaseline {
            let n = self
                .min
                .len()
                .min(self.max.len())
                .min(self.mean.len())
                .min(self.var.len());
            FeatureBaseline {
                features: (0..n)
                    .map(|i| TraceSummary {
                        min: self.min[i],
                        max: self.max[i],
                        mean: self.mean[i],
                        var: self.var[i],
                    })
                    .collect(),
                count: self.count,
            }
        }
    }

    /// Process-wide default monitor configuration, consulted by
    /// [`crate::Engine::new`] so harness flags (e.g. `--monitor`) can switch
    /// monitoring on for every engine a binary creates.
    static DEFAULT_CONFIG: Mutex<Option<MonitorConfig>> = Mutex::new(None);

    /// Sets (or with `None` clears) the process-wide default
    /// [`MonitorConfig`] picked up by every subsequently created engine.
    pub fn set_default_monitor_config(config: Option<MonitorConfig>) {
        *DEFAULT_CONFIG.lock().unwrap() = config;
    }

    pub(crate) fn default_monitor_config() -> Option<MonitorConfig> {
        DEFAULT_CONFIG.lock().unwrap().clone()
    }

    /// Per-engine monitoring state: the active config plus per-model
    /// monitors, training-time baseline accumulators, and error sums.
    #[derive(Debug, Default)]
    pub(crate) struct MonitorState {
        pub(crate) config: Option<MonitorConfig>,
        pub(crate) monitors: BTreeMap<String, ModelMonitor>,
        /// TR-mode per-model input-distribution accumulators.
        pub(crate) builders: BTreeMap<String, BaselineBuilder>,
        /// TR-mode per-model `(sum of absolute errors, observations)`.
        pub(crate) err_acc: BTreeMap<String, (f64, u64)>,
    }

    impl MonitorState {
        pub(crate) fn new() -> Self {
            MonitorState {
                config: default_monitor_config(),
                ..MonitorState::default()
            }
        }

        pub(crate) fn enabled(&self) -> bool {
            self.config.is_some()
        }

        /// Records one TR-mode training observation for `model`.
        pub(crate) fn observe_training(
            &mut self,
            model: &str,
            input: &[f64],
            abs_err: Option<f64>,
        ) {
            if !self.enabled() {
                return;
            }
            self.builders
                .entry(model.to_owned())
                .or_default()
                .observe(input);
            if let Some(err) = abs_err {
                let acc = self.err_acc.entry(model.to_owned()).or_insert((0.0, 0));
                acc.0 += err;
                acc.1 += 1;
            }
        }

        /// Mean training error accumulated for `model`, when any.
        pub(crate) fn training_mae(&self, model: &str) -> Option<f64> {
            self.err_acc
                .get(model)
                .filter(|(_, n)| *n > 0)
                .map(|(sum, n)| sum / *n as f64)
        }

        /// The finished training baseline for `model`, when any rows flowed.
        pub(crate) fn training_baseline(&self, model: &str) -> Option<FeatureBaseline> {
            self.builders.get(model).and_then(BaselineBuilder::finish)
        }

        /// Installs a monitor for a model loaded from disk.
        pub(crate) fn install_loaded(
            &mut self,
            model: &str,
            baseline: Option<&BaselineMeta>,
            baseline_mae: Option<f64>,
        ) {
            let Some(config) = self.config.clone() else {
                return;
            };
            let mut m = ModelMonitor::new(config);
            if let Some(meta) = baseline {
                m = m.with_baseline(meta.to_baseline(), baseline_mae);
            }
            self.monitors.insert(model.to_owned(), m);
        }

        /// Returns the monitor for `model`, creating it on first TS-mode use
        /// from whatever TR-mode state this engine accumulated (the
        /// in-process train-then-deploy flow).
        pub(crate) fn ensure_monitor(&mut self, model: &str) -> Option<&mut ModelMonitor> {
            let config = self.config.clone()?;
            if !self.monitors.contains_key(model) {
                let mut m = ModelMonitor::new(config);
                if let Some(baseline) = self.training_baseline(model) {
                    m = m.with_baseline(baseline, self.training_mae(model));
                }
                self.monitors.insert(model.to_owned(), m);
            }
            self.monitors.get_mut(model)
        }
    }

    /// Routes newly raised alerts to the operator: through the telemetry
    /// recorder when the `telemetry` feature is compiled in, to stderr
    /// otherwise. Clean streams raise no alerts, so clean runs stay silent.
    pub(crate) fn emit_alerts(model: &str, alerts: &[Alert]) {
        for alert in alerts {
            #[cfg(feature = "telemetry")]
            {
                let level = match alert.level {
                    au_monitor::AlertLevel::Warn => au_telemetry::Level::Warn,
                    au_monitor::AlertLevel::Critical => au_telemetry::Level::Error,
                };
                au_telemetry::alert(
                    level,
                    "au_core.monitor",
                    &format!("model `{model}`: {alert}"),
                );
            }
            #[cfg(not(feature = "telemetry"))]
            eprintln!("[ALERT] au_core.monitor: model `{model}`: {alert}");
        }
    }
}
