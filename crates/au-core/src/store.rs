//! The two stores of the operational semantics.
//!
//! Fig. 8 defines a *program store* σ (`Var → Value`) and a *database store*
//! π (`String → list of Value`). They are isolated: data moves between them
//! only through the primitives.

use std::collections::BTreeMap;

/// A program-store value: a scalar or a numeric vector.
///
/// The paper's formalization treats all values as numbers (they are fed to
/// neural networks); vectors cover array-typed variables such as histograms
/// or image buffers.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A single number.
    Scalar(f64),
    /// A numeric array.
    Vector(Vec<f64>),
}

impl Value {
    /// Views the value as a flat slice of numbers.
    pub fn as_slice(&self) -> &[f64] {
        match self {
            Value::Scalar(v) => std::slice::from_ref(v),
            Value::Vector(v) => v,
        }
    }

    /// The scalar inside, if this is a scalar.
    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            Value::Scalar(v) => Some(*v),
            Value::Vector(_) => None,
        }
    }

    /// Number of scalars held.
    pub fn len(&self) -> usize {
        match self {
            Value::Scalar(_) => 1,
            Value::Vector(v) => v.len(),
        }
    }

    /// Whether the value holds no scalars (an empty vector).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Scalar(v)
    }
}

impl From<Vec<f64>> for Value {
    fn from(v: Vec<f64>) -> Self {
        Value::Vector(v)
    }
}

/// The program store σ: a map from variable names to current values.
///
/// Host programs embedding the engine usually keep their state in native
/// Rust variables; `ProgramStore` exists for interpreted programs (AuLang)
/// and for the semantics test harness.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProgramStore {
    vars: BTreeMap<String, Value>,
}

impl ProgramStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ProgramStore::default()
    }

    /// Rule ASSIGN: `σ[x ↦ v]`.
    pub fn assign(&mut self, var: &str, value: impl Into<Value>) {
        self.vars.insert(var.to_owned(), value.into());
    }

    /// Reads a variable.
    pub fn get(&self, var: &str) -> Option<&Value> {
        self.vars.get(var)
    }

    /// Reads a scalar variable.
    pub fn get_scalar(&self, var: &str) -> Option<f64> {
        self.vars.get(var).and_then(Value::as_scalar)
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Iterates variables in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.vars.iter().map(|(k, v)| (k.as_str(), v))
    }
}

/// One named π list: its values plus the append counter the engine uses to
/// tell freshly extracted labels apart from stale model predictions.
///
/// Keeping the counter next to the values (instead of in a parallel map)
/// means `append` — the hottest π write, fired by every `au_extract` — does
/// a single tree lookup with no key allocation on the hit path.
#[derive(Debug, Clone, Default, PartialEq)]
struct DbList {
    values: Vec<f64>,
    appends: u64,
}

/// The database store π: `String → list of values`.
///
/// `au_extract` appends here; `au_NN` reads model inputs from here and
/// writes model outputs back here; `au_write_back` copies values out to
/// program variables.
///
/// The write path is append-optimized: `append` touches the tree once, and
/// `clear` empties a list in place so the buffer's capacity is reused by the
/// next extract→serve cycle instead of reallocating every iteration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DbStore {
    lists: BTreeMap<String, DbList>,
    /// Total scalars ever appended — the paper's "trace size" metric
    /// (Table 2) in units of recorded values.
    appended: u64,
}

impl DbStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        DbStore::default()
    }

    /// Rule EXTRACT: appends `values` to the list under `name`.
    pub fn append(&mut self, name: &str, values: &[f64]) {
        self.appended += values.len() as u64;
        let list = match self.lists.get_mut(name) {
            Some(list) => list,
            None => self.lists.entry(name.to_owned()).or_default(),
        };
        list.appends += 1;
        list.values.extend_from_slice(values);
    }

    /// Rule EXTRACT for `f32` feature vectors: widens each value exactly
    /// (every `f32` is representable as an `f64`) straight into the list,
    /// with no intermediate `f64` buffer.
    pub fn append_f32(&mut self, name: &str, values: &[f32]) {
        self.appended += values.len() as u64;
        let list = match self.lists.get_mut(name) {
            Some(list) => list,
            None => self.lists.entry(name.to_owned()).or_default(),
        };
        list.appends += 1;
        list.values.extend(values.iter().map(|&v| f64::from(v)));
    }

    /// How many times [`DbStore::append`] has run for `name`. Survives
    /// [`DbStore::clear`] — label freshness tracking depends on it being
    /// monotonic for the store's lifetime.
    pub fn append_count(&self, name: &str) -> u64 {
        self.lists.get(name).map(|l| l.appends).unwrap_or(0)
    }

    /// Reads the list under `name` (empty slice if absent — the paper's ⊥).
    pub fn get(&self, name: &str) -> &[f64] {
        self.lists
            .get(name)
            .map(|l| l.values.as_slice())
            .unwrap_or(&[])
    }

    /// Replaces the list under `name`.
    pub fn put(&mut self, name: &str, values: Vec<f64>) {
        match self.lists.get_mut(name) {
            Some(list) => list.values = values,
            None => {
                self.lists.entry(name.to_owned()).or_default().values = values;
            }
        }
    }

    /// Rule TRAIN/TEST's `extName ↦ ⊥`: resets a list to empty. The backing
    /// buffer (and the append counter) survive so the next append reuses the
    /// capacity.
    pub fn clear(&mut self, name: &str) {
        if let Some(list) = self.lists.get_mut(name) {
            list.values.clear();
        }
    }

    /// Rule SERIALIZE: concatenates the lists under `names` into one list
    /// stored under the strcat of the names, returning the combined name.
    pub fn serialize(&mut self, names: &[&str]) -> String {
        let combined_name = names.concat();
        let total: usize = names.iter().map(|n| self.get(n).len()).sum();
        let mut combined = Vec::with_capacity(total);
        for name in names {
            combined.extend_from_slice(self.get(name));
        }
        self.put(&combined_name, combined);
        combined_name
    }

    /// Number of non-empty lists.
    pub fn len(&self) -> usize {
        self.iter().count()
    }

    /// Whether every list is ⊥.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total scalars appended over the store's lifetime (survives `clear`,
    /// reset by checkpointing restore only insofar as the snapshot's counter
    /// is restored).
    pub fn total_appended(&self) -> u64 {
        self.appended
    }

    /// Iterates non-empty lists in name order (cleared lists are ⊥ and
    /// indistinguishable from never-written ones).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[f64])> {
        self.lists
            .iter()
            .filter(|(_, l)| !l.values.is_empty())
            .map(|(k, l)| (k.as_str(), l.values.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_slice_views() {
        assert_eq!(Value::Scalar(2.0).as_slice(), &[2.0]);
        assert_eq!(Value::Vector(vec![1.0, 2.0]).as_slice(), &[1.0, 2.0]);
        assert_eq!(Value::Scalar(2.0).as_scalar(), Some(2.0));
        assert_eq!(Value::Vector(vec![]).as_scalar(), None);
        assert!(Value::Vector(vec![]).is_empty());
    }

    #[test]
    fn program_store_assign_overwrites() {
        let mut s = ProgramStore::new();
        s.assign("x", 1.0);
        s.assign("x", 2.0);
        assert_eq!(s.get_scalar("x"), Some(2.0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn db_append_accumulates_in_order() {
        let mut db = DbStore::new();
        db.append("A", &[1.0]);
        db.append("A", &[2.0, 3.0]);
        assert_eq!(db.get("A"), &[1.0, 2.0, 3.0]);
        assert_eq!(db.total_appended(), 3);
    }

    #[test]
    fn db_get_missing_is_bottom() {
        let db = DbStore::new();
        assert_eq!(db.get("nope"), &[] as &[f64]);
    }

    #[test]
    fn db_clear_resets_to_bottom() {
        let mut db = DbStore::new();
        db.append("A", &[1.0]);
        db.clear("A");
        assert_eq!(db.get("A"), &[] as &[f64]);
        // lifetime counter unaffected
        assert_eq!(db.total_appended(), 1);
    }

    #[test]
    fn serialize_concatenates_values_and_names() {
        let mut db = DbStore::new();
        db.append("PX", &[1.0]);
        db.append("PY", &[2.0]);
        db.append("MnX", &[3.0, 4.0]);
        let name = db.serialize(&["PX", "PY", "MnX"]);
        assert_eq!(name, "PXPYMnX");
        assert_eq!(db.get(&name), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn serialize_with_missing_list_uses_bottom() {
        let mut db = DbStore::new();
        db.append("A", &[1.0]);
        let name = db.serialize(&["A", "B"]);
        assert_eq!(db.get(&name), &[1.0]);
    }

    #[test]
    fn stores_are_isolated_types() {
        // A compile-time property, but assert the runtime surfaces differ:
        // ProgramStore has no append; DbStore has no assign. Nothing to do
        // beyond constructing both.
        let _ = (ProgramStore::new(), DbStore::new());
    }
}
