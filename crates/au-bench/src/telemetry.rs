//! `--telemetry <out.json>` support shared by the bench binaries.
//!
//! A binary calls [`init_from_args`] before its workload; if the flag is
//! present the global recorder starts capturing and the returned handle's
//! [`TelemetrySink::finish`] writes a Chrome `trace_event` JSON file (open
//! it in Perfetto or `chrome://tracing`) plus a sibling `.jsonl` event log,
//! and prints the human-readable summary to stderr.

use std::io::Write;
use std::path::PathBuf;

/// Active telemetry capture for one bench run.
pub struct TelemetrySink {
    out: PathBuf,
}

/// Parses `--telemetry <out.json>` from `args` and, when present, enables
/// the global recorder. Returns `None` (recording stays off) otherwise.
pub fn init_from_args(args: &[String]) -> Option<TelemetrySink> {
    let idx = args.iter().position(|a| a == "--telemetry")?;
    let out = args.get(idx + 1).map(PathBuf::from).unwrap_or_else(|| {
        eprintln!("--telemetry needs an output path; defaulting to out/trace.json");
        PathBuf::from("out/trace.json")
    });
    au_telemetry::enable();
    Some(TelemetrySink { out })
}

impl TelemetrySink {
    /// Writes the Chrome trace (and `.jsonl` sibling) and prints the
    /// summary. Call once, after the workload.
    pub fn finish(self) {
        let rec = au_telemetry::global();
        if let Some(parent) = self.out.parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("telemetry: cannot create {}: {e}", parent.display());
                    return;
                }
            }
        }
        match std::fs::File::create(&self.out) {
            Ok(mut f) => {
                if let Err(e) = rec.write_chrome_trace(&mut f).and_then(|()| f.flush()) {
                    eprintln!("telemetry: write {} failed: {e}", self.out.display());
                } else {
                    eprintln!("telemetry: chrome trace written to {}", self.out.display());
                }
            }
            Err(e) => eprintln!("telemetry: cannot create {}: {e}", self.out.display()),
        }
        let jsonl = self.out.with_extension("jsonl");
        match std::fs::File::create(&jsonl) {
            Ok(mut f) => {
                if let Err(e) = rec.write_jsonl(&mut f).and_then(|()| f.flush()) {
                    eprintln!("telemetry: write {} failed: {e}", jsonl.display());
                } else {
                    eprintln!("telemetry: event log written to {}", jsonl.display());
                }
            }
            Err(e) => eprintln!("telemetry: cannot create {}: {e}", jsonl.display()),
        }
        eprint!("{}", rec.summary());
    }
}
