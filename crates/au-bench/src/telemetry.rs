//! `--telemetry <out.json>` support shared by the bench binaries.
//!
//! A binary calls [`init_from_args`] before its workload; if the flag is
//! present the global recorder starts capturing and the returned handle's
//! [`TelemetrySink::finish`] writes a Chrome `trace_event` JSON file (open
//! it in Perfetto or `chrome://tracing`) plus a sibling `.jsonl` event log,
//! and prints the human-readable summary to stderr.
//!
//! `finish` returns the first I/O error it hit; binaries surface it and
//! exit non-zero so a CI run asking for a trace cannot silently produce
//! nothing (see [`finish_or_exit`]).

use std::io::Write;
use std::path::PathBuf;

/// Active telemetry capture for one bench run.
pub struct TelemetrySink {
    out: PathBuf,
}

/// Parses `--telemetry <out.json>` from `args` and, when present, enables
/// the global recorder. Returns `None` (recording stays off) otherwise.
pub fn init_from_args(args: &[String]) -> Option<TelemetrySink> {
    let idx = args.iter().position(|a| a == "--telemetry")?;
    let out = args.get(idx + 1).map(PathBuf::from).unwrap_or_else(|| {
        eprintln!("--telemetry needs an output path; defaulting to out/trace.json");
        PathBuf::from("out/trace.json")
    });
    au_telemetry::enable();
    Some(TelemetrySink::to_path(out))
}

/// Calls [`TelemetrySink::finish`] and exits with status 1 on failure —
/// the shared tail of every bench binary's `--telemetry` handling.
pub fn finish_or_exit(sink: TelemetrySink) {
    if let Err(e) = sink.finish() {
        eprintln!("telemetry: export failed: {e}");
        std::process::exit(1);
    }
}

impl TelemetrySink {
    /// Builds a sink writing to `out` without touching the global
    /// recorder's enablement — [`init_from_args`] is the CLI front door;
    /// this one exists for tests that point exports at controlled paths.
    pub fn to_path(out: PathBuf) -> Self {
        TelemetrySink { out }
    }

    /// Writes the Chrome trace (and `.jsonl` sibling) and prints the
    /// summary. Call once, after the workload.
    ///
    /// # Errors
    ///
    /// The first I/O error from creating or writing either output file;
    /// both files are still attempted, and the summary still prints.
    pub fn finish(self) -> std::io::Result<()> {
        let rec = au_telemetry::global();
        let mut first_err: Option<std::io::Error> = None;
        let mut note_err = |e: std::io::Error, what: &str| {
            eprintln!("telemetry: {what} failed: {e}");
            if first_err.is_none() {
                first_err = Some(e);
            }
        };
        if let Some(parent) = self.out.parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    note_err(e, &format!("creating {}", parent.display()));
                }
            }
        }
        match std::fs::File::create(&self.out) {
            Ok(mut f) => match rec.write_chrome_trace(&mut f).and_then(|()| f.flush()) {
                Ok(()) => {
                    eprintln!("telemetry: chrome trace written to {}", self.out.display());
                }
                Err(e) => note_err(e, &format!("writing {}", self.out.display())),
            },
            Err(e) => note_err(e, &format!("creating {}", self.out.display())),
        }
        let jsonl = self.out.with_extension("jsonl");
        match std::fs::File::create(&jsonl) {
            Ok(mut f) => match rec.write_jsonl(&mut f).and_then(|()| f.flush()) {
                Ok(()) => eprintln!("telemetry: event log written to {}", jsonl.display()),
                Err(e) => note_err(e, &format!("writing {}", jsonl.display())),
            },
            Err(e) => note_err(e, &format!("creating {}", jsonl.display())),
        }
        eprint!("{}", rec.summary());
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}
