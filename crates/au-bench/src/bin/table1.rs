//! Regenerates **Table 1**: program-analysis statistics — LOC, lines added
//! for autonomization, target variables, candidate feature variables, and
//! selected feature variables for all nine benchmarks.

use au_bench::stats::table1_rows;

fn main() {
    au_bench::monitor::init_from_env();
    println!("Table 1: Program analysis statistics");
    println!(
        "{:<18} {:>7} {:>10} {:>9} {:>15} {:>14}",
        "Program", "LOC", "Added LOC", "Trg Vars", "Candidate Vars", "Feature Vars"
    );
    for row in table1_rows() {
        println!(
            "{:<18} {:>7} {:>10} {:>9} {:>15} {:>14}",
            row.program,
            row.loc,
            row.added_loc,
            row.target_vars,
            row.candidate_vars,
            row.feature_vars_display()
        );
    }
    println!();
    println!("Notes: LOC counts the reimplemented benchmark sources; Added LOC counts");
    println!("primitive call sites and reward wiring in the corresponding example or");
    println!("harness; candidate/feature counts come from running Algorithms 1-2 on the");
    println!("recorded dynamic dependence facts (SL: Algorithm 1; RL: Algorithm 2 with");
    println!("the paper's TORCS thresholds eps1=0, eps2=0.01).");
}
