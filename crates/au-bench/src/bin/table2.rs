//! Regenerates **Table 2**: model statistics — trace sizes and model sizes
//! for `Raw`/`Med`/`Min` (SL) and `Raw`/`All` (RL), their ratios, and
//! checkpoint/restore times.
//!
//! Pass `--quick` for a fast smoke run.

use au_bench::rl::{RlConfig, Variant};
use au_bench::sl::{compare, Band, CannySl, PhylipSl, RothwellSl, SlConfig, SphinxSl};
use au_bench::stats::measure_checkpoint;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let telemetry = au_bench::telemetry::init_from_args(&args);
    au_bench::monitor::init_from_args(&args);
    let quick = args.iter().any(|a| a == "--quick");
    let sl_cfg = if quick {
        SlConfig {
            train_inputs: 8,
            test_inputs: 4,
            epochs: 4,
            ..SlConfig::default()
        }
    } else {
        SlConfig::default()
    };

    println!("Table 2: Model statistics");
    println!();
    println!("-- Supervised learning (trace bytes collected during a training pass; model bytes = 4 x params) --");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "Program",
        "Raw trace",
        "Raw model",
        "Med trace",
        "Med model",
        "Min trace",
        "Min model",
        "T ratio",
        "M ratio"
    );
    let comparisons = vec![
        compare(&CannySl, sl_cfg),
        compare(&RothwellSl, sl_cfg),
        compare(&PhylipSl::default(), sl_cfg),
        compare(&SphinxSl::default(), sl_cfg),
    ];
    for cmp in &comparisons {
        let get = |band: Band| {
            let b = cmp.band(band);
            (b.trace_values * 8, b.model_params * 4)
        };
        let (raw_t, raw_m) = get(Band::Raw);
        let (med_t, med_m) = get(Band::Med);
        let (min_t, min_m) = get(Band::Min);
        println!(
            "{:<10} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>9.2} {:>9.2}",
            cmp.program,
            raw_t,
            raw_m,
            med_t,
            med_m,
            min_t,
            min_m,
            raw_t as f64 / min_t.max(1) as f64,
            raw_m as f64 / min_m.max(1) as f64,
        );
    }

    println!();
    println!("-- Reinforcement learning (fixed training window; Raw = pixel frames, All = extracted state) --");
    let rl_cfg = RlConfig {
        max_episodes: if quick { 3 } else { 12 },
        max_steps: if quick { 60 } else { 300 },
        eval_episodes: 2,
        early_stop: false,
        eval_every: if quick { 3 } else { 12 },
        ..RlConfig::default()
    };
    println!(
        "{:<12} {:>14} {:>12} {:>14} {:>12} {:>9} {:>9}",
        "Program", "Raw trace", "Raw model", "All trace", "All model", "T ratio", "M ratio"
    );
    for factory in au_bench::rl::all_games(5) {
        let cmp = factory.compare(rl_cfg, &[Variant::Raw, Variant::All]);
        let raw = cmp.variant(Variant::Raw);
        let all = cmp.variant(Variant::All);
        println!(
            "{:<12} {:>14} {:>12} {:>14} {:>12} {:>9.2} {:>9.2}",
            cmp.game,
            raw.trace_values * 8,
            raw.model_params * 4,
            all.trace_values * 8,
            all.model_params * 4,
            (raw.trace_values * 8) as f64 / (all.trace_values * 8).max(1) as f64,
            (raw.model_params * 4) as f64 / (all.model_params * 4).max(1) as f64,
        );
    }

    println!();
    println!("-- Checkpoint/restore (in-memory snapshots replacing the paper's KVM; paper: ~26 s / ~7 s) --");
    let timing = measure_checkpoint(if quick { 20 } else { 200 });
    println!(
        "checkpoint: {:.3} us   restore: {:.3} us",
        timing.checkpoint_secs * 1e6,
        timing.restore_secs * 1e6
    );

    if let Some(sink) = telemetry {
        au_bench::telemetry::finish_or_exit(sink);
    }
}
