//! Regenerates **Fig. 13**: Canny prediction-score variation with training
//! epochs for Raw/Med/Min.

use au_bench::sl::{compare, Band, CannySl, SlConfig};

fn main() {
    au_bench::monitor::init_from_env();
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = SlConfig {
        train_inputs: if quick { 10 } else { 150 },
        test_inputs: 10,
        epochs: if quick { 10 } else { 30 },
        curve_every: 2,
        ..SlConfig::default()
    };
    let cmp = compare(&CannySl, cfg);
    println!("Fig. 13: Canny prediction score vs training epochs (test-set SSIM)");
    println!(
        "{:<7} {:>9} {:>9} {:>9} {:>9}",
        "Epoch", "Baseline", "Raw", "Med", "Min"
    );
    let raw = &cmp.band(Band::Raw).curve;
    let med = &cmp.band(Band::Med).curve;
    let min = &cmp.band(Band::Min).curve;
    for i in 0..raw.len() {
        println!(
            "{:<7} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            (i + 1) * cfg.curve_every,
            cmp.baseline_score,
            raw[i],
            med[i],
            min[i]
        );
    }
    println!();
    let wins = min
        .iter()
        .zip(raw.iter().zip(med))
        .filter(|&(m, (r, d))| m >= r && m >= d)
        .count();
    println!(
        "Min has the top score at {wins}/{} checkpoints (paper: Min consistently highest)",
        min.len()
    );
}
