//! Regenerates **Figs. 15–16**: the TORCS feature-pruning evidence —
//! near-identical traces (`posX` vs `roll`, pruned by ε₁) and a
//! near-constant trace (`accX`, pruned by ε₂) — plus the resulting
//! Algorithm 2 selection.

use au_games::{Game, Torcs};
use au_trace::{
    euclidean_distance, extract_rl_detailed, min_max_scale, variance, AnalysisDb, RlParams,
};

fn main() {
    au_bench::monitor::init_from_env();
    let mut game = Torcs::new(9);
    let mut db = AnalysisDb::new();
    game.record_dependences(&mut db);
    for _ in 0..150 {
        game.record_frame(&mut db);
        let action = game.oracle_action();
        if game.step(action).terminal {
            break;
        }
    }

    let series = |name: &str| -> Vec<f64> {
        let id = db.id(name).expect("variable traced");
        min_max_scale(db.trace(id))
    };
    let pos = series("posX");
    let roll = series("roll");
    let acc = series("accX");

    println!("Fig. 15: scaled traces of posX and roll (first 20 frames)");
    println!("{:<7} {:>8} {:>8}", "Frame", "posX", "roll");
    for i in 0..20.min(pos.len()) {
        println!("{:<7} {:>8.4} {:>8.4}", i, pos[i], roll[i]);
    }
    let dist = euclidean_distance(&pos, &roll);
    println!("EucDist(posX, roll) = {dist:.6}  (paper: ~0 -> roll pruned by eps1)");

    println!();
    println!("Fig. 16: scaled accX trace (first 20 frames)");
    for (i, v) in acc.iter().take(20).enumerate() {
        println!("{i:<7} {v:>8.4}");
    }
    let var = variance(&acc);
    println!("Variance(accX) = {var:.5}  (paper: ~0.007 <= eps2=0.01 -> accX pruned)");

    println!();
    let params = RlParams::default();
    let detailed = extract_rl_detailed(&db, params);
    let steer = db.id("steer").expect("target annotated");
    let extraction = &detailed[&steer];
    let names =
        |ids: &[au_trace::VarId]| -> Vec<&str> { ids.iter().map(|&v| db.name(v)).collect() };
    println!(
        "Algorithm 2 on steer (eps1={}, eps2={}):",
        params.epsilon1, params.epsilon2
    );
    println!("  candidates:        {:?}", names(&extraction.candidates));
    println!(
        "  pruned (eps1 dup): {:?}",
        names(&extraction.pruned_redundant)
    );
    println!(
        "  pruned (eps2 var): {:?}",
        names(&extraction.pruned_unchanging)
    );
    println!("  selected features: {:?}", names(&extraction.selected));
}
