//! Regenerates **Fig. 12**: Canny prediction scores on the 10 held-out test
//! images for baseline/Raw/Med/Min.

use au_bench::sl::{compare, CannySl, SlConfig};

fn main() {
    au_bench::monitor::init_from_env();
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = SlConfig {
        train_inputs: if quick { 10 } else { 150 },
        test_inputs: 10,
        epochs: if quick { 8 } else { 30 },
        ..SlConfig::default()
    };
    let cmp = compare(&CannySl, cfg);
    println!("Fig. 12: Canny predictions of 10 datasets (SSIM score per test image)");
    println!(
        "{:<9} {:>9} {:>9} {:>9} {:>9}",
        "Dataset", "Baseline", "Raw", "Med", "Min"
    );
    for (i, scores) in cmp.per_input.iter().enumerate() {
        println!(
            "{:<9} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            i + 1,
            scores[0],
            scores[1],
            scores[2],
            scores[3]
        );
    }
    let mean =
        |idx: usize| cmp.per_input.iter().map(|s| s[idx]).sum::<f64>() / cmp.per_input.len() as f64;
    println!(
        "{:<9} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
        "mean",
        mean(0),
        mean(1),
        mean(2),
        mean(3)
    );
    println!();
    println!(
        "Improvements over baseline: Raw {:+.0}%  Med {:+.0}%  Min {:+.0}%  (paper: ~20%/53%/70%)",
        cmp.improvement_pct(au_bench::sl::Band::Raw),
        cmp.improvement_pct(au_bench::sl::Band::Med),
        cmp.improvement_pct(au_bench::sl::Band::Min)
    );
}
