//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Algorithm 1 distance ranking** — does picking the *closest*
//!    features (Min) actually matter, or would any correlated candidate
//!    do? Compares Min/Med/Raw against a "NoRank" model fed the entire
//!    candidate set (Canny benchmark).
//! 2. **Algorithm 2 thresholds** — sweeps ε₁/ε₂ on TORCS and reports the
//!    surviving feature counts (the paper fixes ε₁=0, ε₂=0.01).
//! 3. **Static vs dynamic dependence analysis** — measures the
//!    false-positive gap that made the paper choose dynamic analysis
//!    (Section 4), on an AuLang program with data-dependent branches; then
//!    measures the flip side — how much of Algorithm 1's candidate set a
//!    static disjointness pre-pass (`extract_sl_pruned`) removes, and the
//!    resulting extraction speedup, with results asserted identical.
//!
//! Run with `cargo run --release -p au-bench --bin ablation [--quick]`.

use au_bench::sl::{compare, Band, CannySl, SlConfig, SlProgram};
use au_core::{Engine, Mode, ModelConfig};
use au_games::{Game, Torcs};
use au_lang::{parse, static_analysis, Interpreter, Value};
use au_trace::{
    extract_rl_detailed, extract_sl, extract_sl_pruned, AnalysisDb, RlParams, StaticFilter,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let telemetry = au_bench::telemetry::init_from_args(&args);
    au_bench::monitor::init_from_args(&args);
    let quick = args.iter().any(|a| a == "--quick");
    ranking_ablation(quick);
    println!();
    threshold_sweep();
    println!();
    static_vs_dynamic();
    if let Some(sink) = telemetry {
        au_bench::telemetry::finish_or_exit(sink);
    }
}

/// Part 1: the Min/Med/Raw comparison plus an unranked all-candidates
/// model.
fn ranking_ablation(quick: bool) {
    println!("-- Ablation 1: Algorithm 1 distance ranking (Canny) --");
    let cfg = SlConfig {
        train_inputs: if quick { 12 } else { 120 },
        test_inputs: 10,
        epochs: if quick { 6 } else { 40 },
        ..SlConfig::default()
    };
    let cmp = compare(&CannySl, cfg);
    for band in Band::ALL {
        println!(
            "{:>6}: score {:.3} ({:+.0}% vs baseline), {} features extracted",
            band.name(),
            cmp.band(band).score,
            cmp.improvement_pct(band),
            cmp.band(band).trace_values / cfg.train_inputs as u64,
        );
    }

    // NoRank: concatenate every band (the full candidate set, unranked).
    let program = CannySl;
    let train = program.dataset(cfg.train_inputs, cfg.seed);
    let test = program.dataset(cfg.test_inputs, cfg.seed.wrapping_add(0x9e37));
    let all_features = |scene: &au_image::scene::Scene| -> Vec<f64> {
        let mut f = program.features(scene, Band::Min);
        f.extend(program.features(scene, Band::Med));
        f.extend(program.features(scene, Band::Raw));
        f
    };
    au_nn::set_init_seed(cfg.seed ^ 0xFF);
    let mut engine = Engine::new(Mode::Train);
    engine
        .au_config(
            "NoRank",
            ModelConfig::dnn(&[cfg.hidden[0], cfg.hidden[1]]).with_learning_rate(cfg.learning_rate),
        )
        .expect("fresh engine");
    let xs: Vec<Vec<f64>> = train.iter().map(&all_features).collect();
    let ys: Vec<Vec<f64>> = train.iter().map(|s| program.ideal(s)).collect();
    engine
        .train_supervised("NoRank", &xs, &ys, cfg.epochs)
        .expect("training succeeds");
    let mut total = 0.0;
    for scene in &test {
        let p = engine
            .predict("NoRank", &all_features(scene))
            .expect("model built");
        total += program.score_with(scene, &p);
    }
    let norank = total / test.len() as f64;
    let baseline = cmp.baseline_score;
    println!(
        "NoRank: score {:.3} ({:+.0}% vs baseline) — all candidates, no ranking",
        norank,
        (norank - baseline) / baseline.abs() * 100.0
    );
    println!("expected: Min >= NoRank (ranking focuses the model) and Min > Raw");
}

/// Part 2: ε₁/ε₂ sweep on TORCS feature survival.
fn threshold_sweep() {
    println!("-- Ablation 2: Algorithm 2 threshold sweep (TORCS) --");
    let mut game = Torcs::new(9);
    let mut db = AnalysisDb::new();
    game.record_dependences(&mut db);
    for _ in 0..150 {
        game.record_frame(&mut db);
        let a = game.oracle_action();
        if game.step(a).terminal {
            break;
        }
    }
    let steer = db.id("steer").expect("target");
    println!(
        "{:>8} {:>8} {:>10} {:>8} {:>8}",
        "eps1", "eps2", "candidates", "pruned", "kept"
    );
    for &eps1 in &[0.0, 0.5, 2.0] {
        for &eps2 in &[0.0, 0.01, 0.05] {
            let detailed = extract_rl_detailed(
                &db,
                RlParams {
                    epsilon1: eps1,
                    epsilon2: eps2,
                },
            );
            let e = &detailed[&steer];
            println!(
                "{:>8} {:>8} {:>10} {:>8} {:>8}",
                eps1,
                eps2,
                e.candidates.len(),
                e.pruned_redundant.len() + e.pruned_unchanging.len(),
                e.selected.len()
            );
        }
    }
    println!("paper setting (eps1=0, eps2=0.01) keeps the informative features and");
    println!("prunes the duplicate/constant ones; larger eps1 starts deleting signal.");
}

/// Part 3: static over-approximation vs dynamic observation.
fn static_vs_dynamic() {
    println!("-- Ablation 3: static vs dynamic dependence analysis --");
    // A program where most branches are cold for any given input: static
    // analysis must include them all, the dynamic trace sees one path.
    let src = r#"
        fn classify(x) {
            if (x < 10) { return x * 2; }
            if (x < 20) { return x * 3; }
            if (x < 30) { return x * 5; }
            return x * 7;
        }
        fn main() {
            let x = input("x", 5);
            let a = 0; let b = 0; let c = 0; let d = 0;
            if (x < 10) { a = classify(x); }
            else if (x < 20) { b = classify(x); }
            else if (x < 30) { c = classify(x); }
            else { d = classify(x); }
            au_extract("OUT", a + b + c + d);
            let t = 0;
            t = au_write_back("OUT");
            return t;
        }
    "#;
    let program = parse(src).expect("valid program");
    let static_db = static_analysis::analyze(&program);
    let mut interp = Interpreter::compile(src).expect("valid program");
    interp.set_input("x", Value::Num(5.0));
    interp.run().expect("runs");
    let dynamic_db = interp.analysis();

    let count_edges =
        |db: &AnalysisDb| -> usize { db.all_vars().map(|v| db.direct_dependents(v).len()).sum() };
    let sx = static_db.id("x").expect("x");
    let dx = dynamic_db.id("x").expect("x");
    println!(
        "static : {} edges, dep(x) = {} variables",
        count_edges(&static_db),
        static_db.dependents(sx).len()
    );
    println!(
        "dynamic: {} edges, dep(x) = {} variables",
        count_edges(dynamic_db),
        dynamic_db.dependents(dx).len()
    );
    println!("the gap is the paper's false-positive argument for dynamic analysis;");
    println!("every static-only edge would become a spurious feature candidate.");

    // The flip side: disjointness the static graph *can* prove holds
    // dynamically too, so a static pre-pass shrinks Algorithm 1's candidate
    // set without changing its output. Measure the shrinkage and the
    // extraction speedup on the same program, with a cold-path `dead` chain
    // that static analysis proves unrelated to the target.
    let src2 = r#"
        fn main() {
            let x = input("x", 5);
            let dead0 = input("noise", 1);
            let dead1 = dead0 * 2; let dead2 = dead1 + 1; let dead3 = dead2 * dead2;
            let dead4 = dead3 - 1; let dead5 = dead4 * 3; let dead6 = dead5 + dead3;
            let a = x * 2; let b = a + 1; let c = b * b; let d = c + a;
            au_extract("OUT", d);
            let t = 0;
            t = au_write_back("OUT");
            let final = d + t;
            return final + dead6;
        }
    "#;
    let program2 = parse(src2).expect("valid program");
    let static_db2 = static_analysis::analyze(&program2);
    let filter = StaticFilter::new(&static_db2);
    let mut interp2 = Interpreter::compile(src2).expect("valid program");
    interp2.set_input("x", Value::Num(5.0));
    interp2.set_input("noise", Value::Num(1.0));
    interp2.run().expect("runs");
    let dyn2 = interp2.analysis();

    const REPS: u32 = 2000;
    let t0 = std::time::Instant::now();
    for _ in 0..REPS {
        std::hint::black_box(extract_sl(dyn2));
    }
    let plain = t0.elapsed();
    let t0 = std::time::Instant::now();
    let mut stats = au_trace::PrepruneStats::default();
    for _ in 0..REPS {
        let (map, s) = extract_sl_pruned(dyn2, &filter);
        std::hint::black_box(map);
        stats = s;
    }
    let pruned = t0.elapsed();
    assert_eq!(
        extract_sl_pruned(dyn2, &filter).0,
        extract_sl(dyn2),
        "pre-pruning must not change the extraction"
    );
    println!();
    println!("static pre-pruning (Algorithm 1, {REPS} extractions):");
    println!(
        "  candidate pairs: {} -> {} ({:.0}% pruned before the dynamic BFS)",
        stats.considered,
        stats.considered - stats.pruned,
        stats.reduction() * 100.0
    );
    println!(
        "  extraction time: {:.1?} -> {:.1?} ({:.2}x)",
        plain,
        pruned,
        plain.as_secs_f64() / pruned.as_secs_f64().max(1e-12)
    );
    println!("  results identical — the pre-pass only skips provably-doomed candidates.");
}
