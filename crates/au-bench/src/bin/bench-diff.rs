//! The perf-regression gate over `BENCH_history.jsonl`.
//!
//! Compares the newest history run (the head) against a baseline — by
//! default the previous run, or the newest run whose commit matches
//! `--baseline` — and exits non-zero when any bench got slower past the
//! threshold. Exit codes: `0` no regression, `1` regression found, `2`
//! usage or I/O error.
//!
//! ```text
//! bench-diff [--history BENCH_history.jsonl] [--threshold 1.30] [--baseline <commit>]
//! ```
//!
//! The threshold is a ratio: `1.30` fails a bench that is more than 30%
//! slower than baseline (and more than 200 ns slower in absolute terms —
//! sub-microsecond medians jitter too much to gate on ratio alone). A
//! fingerprint mismatch between the two runs is reported as a warning,
//! not a verdict: cross-machine comparisons are advisory.

use au_bench::history::{diff, load, Regression};
use std::path::PathBuf;

fn main() {
    let mut history = PathBuf::from("BENCH_history.jsonl");
    let mut threshold = 1.30f64;
    let mut baseline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--history" => match args.next() {
                Some(path) => history = PathBuf::from(path),
                None => die("--history needs a path"),
            },
            "--threshold" => match args.next().as_deref().map(str::parse) {
                Some(Ok(t)) if t > 1.0 => threshold = t,
                _ => die("--threshold needs a ratio > 1.0 (e.g. 1.30)"),
            },
            "--baseline" => match args.next() {
                Some(commit) => baseline = Some(commit),
                None => die("--baseline needs a commit prefix"),
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench-diff [--history BENCH_history.jsonl] \
                     [--threshold 1.30] [--baseline <commit>]"
                );
                return;
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }

    let (runs, skipped) = match load(&history) {
        Ok(loaded) => loaded,
        Err(e) => die(&format!("cannot read {}: {e}", history.display())),
    };
    for (line, why) in &skipped {
        eprintln!("warning: {}:{line}: skipped ({why})", history.display());
    }
    let Some(head) = runs.last() else {
        die(&format!("{}: no runs recorded", history.display()));
    };
    let base = match &baseline {
        Some(commit) => runs[..runs.len() - 1]
            .iter()
            .rev()
            .find(|r| r.commit.starts_with(commit.as_str()))
            .unwrap_or_else(|| {
                die(&format!("no earlier run with commit prefix {commit:?}"));
            }),
        None => match runs.len() {
            0 | 1 => {
                eprintln!("only one run in history; nothing to compare — passing");
                return;
            }
            n => &runs[n - 2],
        },
    };

    eprintln!(
        "comparing head {} ({} benches) against base {} ({} benches), threshold {threshold:.2}x",
        head.commit,
        head.benches.len(),
        base.commit,
        base.benches.len()
    );
    let d = diff(base, head, threshold);
    if d.fingerprint_mismatch {
        eprintln!("warning: runs were measured on different machines; treat ratios as advisory");
    }
    print_rows("regressed", &d.regressions);
    print_rows("within threshold", &d.within);
    for name in &d.added {
        eprintln!("  new bench (no baseline): {name}");
    }
    for name in &d.removed {
        eprintln!("  bench dropped from head: {name}");
    }
    if d.regressions.is_empty() {
        eprintln!("ok: no bench regressed past {threshold:.2}x");
    } else {
        eprintln!(
            "FAIL: {} bench(es) regressed past {threshold:.2}x",
            d.regressions.len()
        );
        std::process::exit(1);
    }
}

fn print_rows(label: &str, rows: &[Regression]) {
    for r in rows {
        eprintln!(
            "  {label}: {name:>12}  {base:>12.1} ns -> {head:>12.1} ns  ({ratio:.2}x)",
            name = r.name,
            base = r.base_ns,
            head = r.head_ns,
            ratio = r.ratio
        );
    }
}

/// Prints the error and exits with the usage/I/O status.
fn die(msg: &str) -> ! {
    eprintln!("bench-diff: {msg}");
    std::process::exit(2);
}
