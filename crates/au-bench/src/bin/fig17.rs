//! Regenerates **Fig. 17**: TORCS driving score vs training epochs for four
//! settings — Players (oracle), `Raw` (pixels), `All` (automatically
//! extracted state), and `Manual` (expert-preprocessed features).

use au_core::{Engine, Mode, ModelConfig};
use au_games::harness::{self, FeatureSource};
use au_games::{Game, Torcs};
use au_nn::rl::DqnConfig;

fn dqn(seed: u64) -> DqnConfig {
    // Same tuned settings as `au_bench::rl::dqn` (see `tune_rl`).
    DqnConfig {
        hidden: vec![64, 32],
        batch_size: 32,
        replay_capacity: 50_000,
        target_sync_every: 500,
        epsilon_decay: 0.9995,
        epsilon_end: 0.02,
        learning_rate: 1e-3,
        gamma: 0.99,
        learn_every: 2,
        seed,
        ..DqnConfig::default()
    }
}

struct Curve {
    name: &'static str,
    scores: Vec<f64>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let telemetry = au_bench::telemetry::init_from_args(&args);
    au_bench::monitor::init_from_args(&args);
    let quick = args.iter().any(|a| a == "--quick");
    let blocks = if quick { 4 } else { 10 };
    let episodes_per_block = if quick { 5 } else { 25 };
    let max_steps = 450;
    let eval_episodes = if quick { 3 } else { 10 };
    let seed = 11u64;

    // Players reference.
    let mut game = Torcs::new(4);
    let mut players = 0.0;
    for _ in 0..eval_episodes {
        players += harness::run_oracle(&mut game, max_steps).progress;
    }
    players /= eval_episodes as f64;

    let mut curves = Vec::new();

    // All: automatic extraction (Algorithm 2's surviving features).
    curves.push(run_setting(
        "All",
        seed,
        blocks,
        episodes_per_block,
        max_steps,
        eval_episodes,
        Setting::All,
    ));
    // Manual: expert-preprocessed features (error signal + lookahead),
    // mirroring the hand-engineered Keras/DDPG pipelines the paper cites.
    curves.push(run_setting(
        "Manual",
        seed ^ 2,
        blocks,
        episodes_per_block,
        max_steps,
        eval_episodes,
        Setting::Manual,
    ));
    // Raw: pixel frames through the convolutional model.
    curves.push(run_setting(
        "Raw",
        seed ^ 4,
        if quick { 2 } else { blocks },
        episodes_per_block,
        max_steps,
        eval_episodes,
        Setting::Raw,
    ));

    println!("Fig. 17: TORCS driving score vs training epochs (progress fraction)");
    print!("{:<8} {:>8}", "Epochs", "Players");
    for c in &curves {
        print!(" {:>8}", c.name);
    }
    println!();
    for block in 0..blocks {
        print!("{:<8} {:>8.3}", (block + 1) * episodes_per_block, players);
        for c in &curves {
            match c.scores.get(block) {
                Some(s) => print!(" {:>8.3}", s),
                None => print!(" {:>8}", "-"),
            }
        }
        println!();
    }
    println!();
    println!("Expected shape (paper): Manual learns fastest, All reaches players-level");
    println!("slightly later, Raw stays far below both within the budget.");
    if let Some(sink) = telemetry {
        au_bench::telemetry::finish_or_exit(sink);
    }
}

enum Setting {
    All,
    Manual,
    Raw,
}

fn run_setting(
    name: &'static str,
    seed: u64,
    blocks: usize,
    episodes_per_block: usize,
    max_steps: usize,
    eval_episodes: usize,
    setting: Setting,
) -> Curve {
    au_nn::set_init_seed(seed);
    let mut engine = Engine::new(Mode::Train);
    let mut game = Torcs::new(4);
    let frame = 12usize;
    let config = match setting {
        Setting::Raw => {
            let mut d = dqn(seed);
            d.batch_size = 16;
            d.learn_every = 8;
            ModelConfig::q_cnn(1, frame, frame, &[64, 32]).with_dqn(d)
        }
        _ => ModelConfig::q_dnn(&[64, 32]).with_dqn(dqn(seed)),
    };
    engine.au_config(name, config).expect("fresh engine");

    // Manual features: the already-combined steering error plus curvature
    // lookahead — what an expert would feed the model after ~2000 lines of
    // preprocessing in the cited TORCS projects.
    let mut manual_extract = |g: &Torcs, e: &mut Engine| -> String {
        let f = g.features();
        let (pos, angle) = (f[0], f[1]);
        let curv1 = f[5];
        // error: how far the car will drift next frame if nothing changes.
        e.au_extract("err", &[pos * 0.35 + angle + curv1 / 20.0]);
        e.au_extract("angle", &[angle]);
        e.au_extract("look", &[f[6], f[7], f[8]]);
        e.au_serialize(&["err", "angle", "look"])
    };

    let mut scores = Vec::with_capacity(blocks);
    for _ in 0..blocks {
        for _ in 0..episodes_per_block {
            match setting {
                Setting::All => {
                    harness::play_episode(
                        &mut engine,
                        name,
                        &mut game,
                        max_steps,
                        FeatureSource::Internal,
                        None,
                    )
                    .expect("episode runs");
                }
                Setting::Raw => {
                    harness::play_episode(
                        &mut engine,
                        name,
                        &mut game,
                        max_steps,
                        FeatureSource::Pixels {
                            width: frame,
                            height: frame,
                        },
                        None,
                    )
                    .expect("episode runs");
                }
                Setting::Manual => {
                    harness::play_episode_custom(
                        &mut engine,
                        name,
                        &mut game,
                        max_steps,
                        &mut manual_extract,
                        None,
                    )
                    .expect("episode runs");
                }
            }
        }
        // Greedy evaluation.
        engine.set_mode(Mode::Test);
        let mut total = 0.0;
        for _ in 0..eval_episodes {
            let out = match setting {
                Setting::All => harness::play_episode(
                    &mut engine,
                    name,
                    &mut game,
                    max_steps,
                    FeatureSource::Internal,
                    None,
                ),
                Setting::Raw => harness::play_episode(
                    &mut engine,
                    name,
                    &mut game,
                    max_steps,
                    FeatureSource::Pixels {
                        width: frame,
                        height: frame,
                    },
                    None,
                ),
                Setting::Manual => harness::play_episode_custom(
                    &mut engine,
                    name,
                    &mut game,
                    max_steps,
                    &mut manual_extract,
                    None,
                ),
            }
            .expect("evaluation runs");
            total += out.progress;
        }
        engine.set_mode(Mode::Train);
        scores.push(total / eval_episodes as f64);
    }
    Curve { name, scores }
}
