//! Regenerates **Table 3**: effectiveness — baseline vs `Raw`/`Med`/`Min`
//! scores with training/execution times for the SL programs, and players vs
//! `Raw`/`All` for the RL programs (with the 20%-of-players stopping rule
//! and its "t/o" analogue).
//!
//! Pass `--quick` for a fast smoke run (smaller budgets; shapes still hold
//! qualitatively but scores are noisier).

use au_bench::rl::{RlConfig, Variant};
use au_bench::sl::{compare, Band, CannySl, PhylipSl, RothwellSl, SlConfig, SphinxSl};

fn main() {
    au_bench::monitor::init_from_env();
    let quick = std::env::args().any(|a| a == "--quick");

    // ----------------------------------------------------------------
    // Supervised learning
    // ----------------------------------------------------------------
    let sl_cfg = if quick {
        SlConfig {
            train_inputs: 10,
            test_inputs: 5,
            epochs: 8,
            ..SlConfig::default()
        }
    } else {
        SlConfig::default()
    };

    println!("Table 3: Benchmark experimental results");
    println!();
    println!("-- Supervised learning (score: built-in quality metric; arrows as in the paper) --");
    println!(
        "{:<14} {:>9} {:>8} {:>8} {:>8} {:>8} {:>10} {:>10} {:>10} {:>8}",
        "Program",
        "Baseline",
        "Raw",
        "Med",
        "Min",
        "Min+%",
        "RawTr(s)",
        "MinTr(s)",
        "Tr ratio",
        "Exec(s)"
    );
    let mut improvements = Vec::new();
    let programs: Vec<(&str, au_bench::sl::SlComparison)> = vec![
        ("Canny ^", compare(&CannySl, sl_cfg)),
        ("Rothwell ^", compare(&RothwellSl, sl_cfg)),
        ("Phylip v", compare(&PhylipSl::default(), sl_cfg)),
        ("Sphinx ^", compare(&SphinxSl::default(), sl_cfg)),
    ];
    for (label, cmp) in &programs {
        let raw = cmp.band(Band::Raw);
        let med = cmp.band(Band::Med);
        let min = cmp.band(Band::Min);
        improvements.push(cmp.improvement_pct(Band::Min));
        println!(
            "{:<14} {:>9.3} {:>8.3} {:>8.3} {:>8.3} {:>7.0}% {:>10.2} {:>10.2} {:>10.2} {:>8.4}",
            label,
            cmp.baseline_score,
            raw.score,
            med.score,
            min.score,
            cmp.improvement_pct(Band::Min),
            raw.train_secs,
            min.train_secs,
            raw.train_secs / min.train_secs.max(1e-9),
            min.exec_secs,
        );
    }
    let avg: f64 = improvements.iter().sum::<f64>() / improvements.len() as f64;
    println!("Average Min improvement over baseline: {avg:.0}% (paper: 161%)");

    // ----------------------------------------------------------------
    // Reinforcement learning
    // ----------------------------------------------------------------
    println!();
    println!("-- Reinforcement learning (progress/success; 'timeout' = budget exhausted before reaching 80% of players) --");
    let rl_cfg = if quick {
        RlConfig {
            max_episodes: 20,
            max_episodes_raw: 10,
            max_steps: 150,
            eval_episodes: 4,
            eval_every: 10,
            ..RlConfig::default()
        }
    } else {
        RlConfig {
            max_steps: 450,
            ..RlConfig::default()
        }
    };
    println!(
        "{:<12} {:>14} {:>16} {:>10} {:>16} {:>10} {:>11} {:>11}",
        "Program",
        "Players",
        "Raw score",
        "Raw eps",
        "All score",
        "All eps",
        "AllTr(s)",
        "Exec(ms)"
    );
    for factory in au_bench::rl::all_games(rl_cfg.seed) {
        let cmp = factory.compare(rl_cfg, &[Variant::Raw, Variant::All]);
        let raw = cmp.variant(Variant::Raw);
        let all = cmp.variant(Variant::All);
        let fmt_variant = |v: &au_bench::rl::VariantOutcome| {
            let bar = if v.reached_bar { "" } else { " t/o" };
            format!(
                "{:.0}%/{:.0}%{}",
                v.progress * 100.0,
                v.success * 100.0,
                bar
            )
        };
        println!(
            "{:<12} {:>14} {:>16} {:>10} {:>16} {:>10} {:>11.1} {:>11.3}",
            cmp.game,
            format!(
                "{:.0}%/{:.0}%",
                cmp.oracle_progress * 100.0,
                cmp.oracle_success * 100.0
            ),
            fmt_variant(raw),
            raw.episodes,
            fmt_variant(all),
            all.episodes,
            all.train_secs,
            all.exec_secs_per_step * 1e3,
        );
    }
    println!();
    println!("Expected shape (paper): All reaches players-competitive scores within the");
    println!("budget while Raw mostly times out (except Breakout); Raw trace/model sizes");
    println!("and training times dominate All's.");
}
