//! Monitoring walkthrough: trains a small supervised model, serves a clean
//! stream (stays silent), then a drifted sensor stream (raises alerts and
//! dumps the flight recorder), and finally demonstrates the graceful
//! degradation fallback where `au_nn` refuses to serve a degraded model.
//!
//! Run with `cargo run --release -p au-bench --bin drift_demo [--out <dir>]`.

#[cfg(feature = "monitor")]
fn main() {
    use au_core::monitor::MonitorConfig;
    use au_core::{AuError, Engine, Mode, ModelConfig};

    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "out".to_owned());

    // Train y = 2x on inputs covering [0, 1]; the engine accumulates the
    // per-feature training distribution and baseline MAE as it goes.
    let train = |config: MonitorConfig| -> Engine {
        au_nn::set_init_seed(31);
        let mut e = Engine::new(Mode::Train);
        e.set_monitor_config(config);
        e.set_model_dir(&out);
        e.au_config("approx", ModelConfig::dnn(&[16]).with_learning_rate(0.02))
            .expect("config");
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0]).collect();
        let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![2.0 * x[0]]).collect();
        e.train_supervised("approx", &xs, &ys, 120).expect("train");
        e.set_mode(Mode::Test);
        e
    };

    println!("== phase 1: clean deployment ==");
    let mut engine = train(MonitorConfig::default());
    for i in 0..64 {
        // Strided order keeps each sliding window representative of the
        // whole training distribution.
        let x = ((i * 13) % 40) as f64 / 40.0;
        engine.au_extract("X", &[x]);
        engine.au_nn("approx", "X", &["Y"]).expect("serve");
    }
    let alerts = engine.monitor("approx").map_or(0, |m| m.alerts().len());
    println!("served 64 in-range inputs, alerts raised: {alerts}");
    print!("{}", engine.monitor_report());

    println!("\n== phase 2: drifted sensors ==");
    for i in 0..32 {
        // The sensor is now reading 5.0 too high — far outside [0, 1].
        let x = (i % 40) as f64 / 40.0 + 5.0;
        engine.au_extract("X", &[x]);
        engine.au_nn("approx", "X", &["Y"]).expect("serve");
    }
    print!("{}", engine.monitor_report());
    match engine.dump_flight_recorder("approx") {
        Ok(path) => println!("flight recorder dumped to {}", path.display()),
        Err(e) => eprintln!("flight dump failed: {e}"),
    }

    println!("\n== phase 3: graceful degradation ==");
    let mut engine = train(MonitorConfig::default().with_fallback(true));
    let mut served = 0u32;
    let mut fallbacks = 0u32;
    for i in 0..48 {
        let x = (i % 40) as f64 / 40.0 + 5.0;
        engine.au_extract("X", &[x]);
        match engine.au_nn("approx", "X", &["Y"]) {
            Ok(_) => served += 1,
            Err(AuError::ModelDegraded(_)) => {
                // The paper's hybrid mode: route back to the original
                // (pre-autonomization) code path.
                let _y = 2.0 * x;
                fallbacks += 1;
            }
            Err(e) => {
                eprintln!("unexpected error: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("model served {served} predictions, original code path served {fallbacks}");
    print!("{}", engine.monitor_report());
}

#[cfg(not(feature = "monitor"))]
fn main() {
    eprintln!("drift_demo requires the `monitor` feature (on by default):");
    eprintln!("  cargo run --release -p au-bench --bin drift_demo");
}
