//! Appends one structured perf run to the bench history.
//!
//! A deliberately small, fast smoke suite — not the criterion benches —
//! covering the runtime's hot layers: the gemm kernel, feature
//! extraction, end-to-end serving, and the au-par fork/join. Each bench
//! is timed as the median over many samples so one preempted sample
//! cannot fake a regression, and the run lands as one JSON line in
//! `BENCH_history.jsonl` (see `au_bench::history`).
//!
//! ```text
//! bench-history [--quick] [--out BENCH_history.jsonl] [--print]
//! ```
//!
//! `--quick` cuts samples ~4x for CI smoke legs; `--print` writes the
//! line to stdout instead of appending anywhere.

use au_bench::history::{append, HistoryRun};
use au_core::{Engine, Mode, ModelConfig};
use au_nn::Tensor;
use std::collections::BTreeMap;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Times `f` as median-of-samples nanoseconds per call: each sample runs
/// `per_sample` calls and the per-call time of the middle sample wins.
fn median_ns(samples: usize, per_sample: usize, mut f: impl FnMut()) -> f64 {
    // Warmup: one full sample, unmeasured.
    for _ in 0..per_sample {
        f();
    }
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..per_sample {
                f();
            }
            start.elapsed().as_secs_f64() * 1e9 / per_sample as f64
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Deterministic pseudo-random buffer (no RNG state, reproducible).
fn pseudo(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let h = (i as u64).wrapping_mul(2_654_435_761).wrapping_add(seed);
            ((h % 2000) as f32) / 100.0 - 10.0
        })
        .collect()
}

fn trained_engine() -> Engine {
    let mut engine = Engine::new(Mode::Train);
    engine
        .au_config("HistNN", ModelConfig::dnn(&[16, 8]))
        .expect("config");
    for i in 0..16u64 {
        let x = i as f64 / 16.0;
        engine.au_extract("SUMMARY", &[x, 1.0 - x, x * x, 0.5]);
        engine.au_extract("OUT", &[2.0 * x]);
        engine
            .au_nn("HistNN", "SUMMARY", &["OUT"])
            .expect("train step");
    }
    engine.set_mode(Mode::Test);
    engine
}

fn main() {
    let mut out = PathBuf::from("BENCH_history.jsonl");
    let mut quick = false;
    let mut print_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--print" => print_only = true,
            "--out" => match args.next() {
                Some(path) => out = PathBuf::from(path),
                None => die("--out needs a path"),
            },
            "--help" | "-h" => {
                eprintln!("usage: bench-history [--quick] [--out BENCH_history.jsonl] [--print]");
                return;
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }
    // Benches measure the bare paths; the recorder stays disabled so the
    // history tracks compute, not telemetry volume.
    au_telemetry::disable();
    let samples = if quick { 9 } else { 33 };

    let mut benches = BTreeMap::new();

    for n in [64usize, 128] {
        let a = Tensor::from_vec(&[n, n], pseudo(n * n, 1));
        let b = Tensor::from_vec(&[n, n], pseudo(n * n, 2));
        benches.insert(
            format!("gemm_{n}"),
            median_ns(samples, 4, || {
                black_box(black_box(&a).matmul(black_box(&b)));
            }),
        );
    }

    {
        let mut engine = Engine::new(Mode::Train);
        let row = [0.25f64, 0.5, 0.75, 1.0];
        benches.insert(
            "au_extract".to_owned(),
            median_ns(samples, 512, || {
                engine.au_extract("X", black_box(&row));
            }),
        );
    }

    {
        let engine = trained_engine();
        let handle = engine.handle();
        let x = [0.25f64, 0.75, 0.125, 0.5];
        benches.insert(
            "predict".to_owned(),
            median_ns(samples, 128, || {
                black_box(handle.predict("HistNN", black_box(&x)).expect("predict"));
            }),
        );
        let x32 = [0.25f32, 0.75, 0.125, 0.5];
        let mut out32 = Vec::with_capacity(8);
        benches.insert(
            "predict_f32".to_owned(),
            median_ns(samples, 128, || {
                out32.clear();
                handle
                    .predict_f32_into("HistNN", black_box(&x32), &mut out32)
                    .expect("predict_f32");
                black_box(&out32);
            }),
        );
    }

    {
        // AuLang execution tiers on the canny corpus program: traced
        // interpreter (status quo), untraced bytecode VM, selectively
        // traced bytecode VM, and the abstract-interpretation-optimized
        // untraced VM. Whole-program medians, like the aulang_exec
        // Criterion bench but sized for the history gate.
        use au_lang::{
            compile_program, compile_program_opt, corpus, parse, Interpreter, TraceMode, Vm,
        };
        let p = corpus::all()[0];
        let program = parse(p.src).expect("corpus parses");
        let vm_off = compile_program(&program, TraceMode::Off);
        let vm_sel = compile_program(&program, TraceMode::Selective);
        let vm_opt = compile_program_opt(&program, TraceMode::Off);
        benches.insert(
            "aulang_interp".to_owned(),
            median_ns(samples, 1, || {
                au_nn::set_init_seed(p.nn_seed);
                let mut interp = Interpreter::with_program(program.clone());
                interp.set_seed(7);
                let _ = black_box(interp.run());
            }),
        );
        benches.insert(
            "aulang_vm".to_owned(),
            median_ns(samples, 1, || {
                au_nn::set_init_seed(p.nn_seed);
                let mut vm = Vm::from_compiled(vm_off.clone());
                vm.set_seed(7);
                let _ = black_box(vm.run());
            }),
        );
        benches.insert(
            "aulang_vm_traced".to_owned(),
            median_ns(samples, 1, || {
                au_nn::set_init_seed(p.nn_seed);
                let mut vm = Vm::from_compiled(vm_sel.clone());
                vm.set_seed(7);
                let _ = black_box(vm.run());
            }),
        );
        benches.insert(
            "aulang_vm_opt".to_owned(),
            median_ns(samples, 1, || {
                au_nn::set_init_seed(p.nn_seed);
                let mut vm = Vm::from_compiled(vm_opt.clone());
                vm.set_seed(7);
                let _ = black_box(vm.run());
            }),
        );
    }

    benches.insert(
        "par_map_1k".to_owned(),
        median_ns(samples, 8, || {
            black_box(au_par::par_map(1024, 64, |i| {
                let x = i as f64 * 0.001;
                x.sin().mul_add(x, x.sqrt())
            }));
        }),
    );

    benches.insert(
        "pool_map_1k".to_owned(),
        median_ns(samples, 8, || {
            black_box(au_par::pool_map(1024, 64, |i| {
                let x = i as f64 * 0.001;
                x.sin().mul_add(x, x.sqrt())
            }));
        }),
    );

    let run = HistoryRun::now(benches);
    for (name, ns) in &run.benches {
        eprintln!("{name:>12}  {ns:>14.1} ns/iter");
    }
    if print_only {
        println!("{}", run.to_json());
        return;
    }
    if let Err(e) = append(&out, &run) {
        die(&format!("cannot append to {}: {e}", out.display()));
    }
    eprintln!(
        "appended run (commit {}, {} benches) to {}",
        run.commit,
        run.benches.len(),
        out.display()
    );
}

fn die(msg: &str) -> ! {
    eprintln!("bench-history: {msg}");
    std::process::exit(2);
}
