//! Regenerates **Fig. 14**: qualitative Canny edge maps — origin, ground
//! truth, and the Min/Med/Raw/baseline detections for sample scenes,
//! written as PGM images under `out/fig14/`.

use au_bench::sl::{Band, CannySl, SlConfig, SlProgram};
use au_core::{Engine, Mode, ModelConfig};
use au_image::scene::SceneGenerator;
use au_vision::canny::{self, CannyParams};

fn main() {
    au_bench::monitor::init_from_env();
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = SlConfig {
        train_inputs: if quick { 10 } else { 150 },
        epochs: if quick { 8 } else { 30 },
        ..SlConfig::default()
    };
    let program = CannySl;
    let train_set = program.dataset(cfg.train_inputs, cfg.seed);
    let labels: Vec<Vec<f64>> = train_set.iter().map(|s| program.ideal(s)).collect();

    // Train one model per band.
    let mut engine = Engine::new(Mode::Train);
    for band in Band::ALL {
        au_nn::set_init_seed(cfg.seed ^ band.name().len() as u64);
        let model = format!("Canny-{}", band.name());
        engine
            .au_config(
                &model,
                ModelConfig::dnn(&[cfg.hidden[0], cfg.hidden[1]])
                    .with_learning_rate(cfg.learning_rate),
            )
            .expect("fresh engine");
        let xs: Vec<Vec<f64>> = train_set
            .iter()
            .map(|s| program.features(s, band))
            .collect();
        engine
            .train_supervised(&model, &xs, &labels, cfg.epochs)
            .expect("training succeeds");
    }

    let out_dir = std::path::Path::new("out/fig14");
    std::fs::create_dir_all(out_dir).expect("create output directory");

    let mut gen = SceneGenerator::new(cfg.seed.wrapping_add(0x9e37));
    for idx in 0..3usize {
        let scene = gen.generate(au_bench::sl::IMG, au_bench::sl::IMG);
        scene
            .image
            .write_pgm(out_dir.join(format!("{idx}_origin.pgm")))
            .expect("write origin");
        scene
            .truth
            .write_pgm(out_dir.join(format!("{idx}_truth.pgm")))
            .expect("write truth");
        // Baseline.
        let base = canny::canny(&scene.image, CannyParams::default());
        base.edges
            .write_pgm(out_dir.join(format!("{idx}_baseline.pgm")))
            .expect("write baseline");
        // Model-predicted parameter versions.
        for band in Band::ALL {
            let model = format!("Canny-{}", band.name());
            let prediction = engine
                .predict(&model, &program.features(&scene, band))
                .expect("model built");
            let sigma = prediction[0].clamp(0.3, 3.0) as f32;
            let hi = prediction[2].clamp(0.05, 0.95) as f32;
            let lo = prediction[1].clamp(0.01, f64::from(hi)) as f32;
            let result = canny::canny(&scene.image, CannyParams { sigma, lo, hi });
            result
                .edges
                .write_pgm(out_dir.join(format!("{idx}_{}.pgm", band.name().to_lowercase())))
                .expect("write band image");
            let score = canny::score(&result.edges, &scene.truth);
            println!(
                "scene {idx}: {:>4} -> sigma={sigma:.2} lo={lo:.2} hi={hi:.2}  ssim={score:.3}",
                band.name()
            );
        }
        println!(
            "scene {idx}: baseline ssim={:.3}",
            canny::score(&base.edges, &scene.truth)
        );
    }
    println!();
    println!("Fig. 14 images written to {}", out_dir.display());
}
