//! Regenerates the **Section 2 Mario case studies**:
//!
//! 1. *Self-play*: internal-state model (`All`) vs DeepMind-style pixel
//!    model (`Raw`) — score after training, with the paper's stopping rule
//!    (within 20% of the players' score, or budget exhausted).
//! 2. *Self-testing*: retrain with the coverage-improvement reward
//!    (`+30` per newly covered region, Fig. 2 line 38) and report the code
//!    coverage reached in a short play window, compared against the normal
//!    self-play AI and random play — including whether the dungeon
//!    boundary-check bug is found.

use au_bench::rl::{train_variant, RlConfig, Variant};
use au_core::{Engine, Mode, ModelConfig};
use au_games::harness::{self, FeatureSource};
use au_games::{Game, Mario};
use au_nn::rl::DqnConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    au_bench::monitor::init_from_env();
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        RlConfig {
            max_episodes: 20,
            max_episodes_raw: 10,
            max_steps: 150,
            eval_episodes: 4,
            eval_every: 10,
            ..RlConfig::default()
        }
    } else {
        RlConfig {
            max_steps: 450,
            ..RlConfig::default()
        }
    };

    // ----------------------------------------------------------------
    // Study 1: self-play, All vs Raw.
    // ----------------------------------------------------------------
    let mut game = Mario::new(1);
    let mut oracle_progress = 0.0;
    let mut oracle_success = 0.0;
    for _ in 0..cfg.eval_episodes {
        let out = harness::run_oracle(&mut game, cfg.max_steps);
        oracle_progress += out.progress;
        oracle_success += if out.succeeded { 1.0 } else { 0.0 };
    }
    oracle_progress /= cfg.eval_episodes as f64;
    oracle_success /= cfg.eval_episodes as f64;
    println!("Mario self-play study (Section 2)");
    println!(
        "players: progress {:.0}%  success {:.0}%",
        oracle_progress * 100.0,
        oracle_success * 100.0
    );
    for variant in [Variant::All, Variant::Raw] {
        let out = train_variant(&mut game, variant, oracle_progress, cfg);
        println!(
            "{:>4}: progress {:.0}%  success {:.0}%  episodes {}  {}  train {:.0}s",
            variant.name(),
            out.progress * 100.0,
            out.success * 100.0,
            out.episodes,
            if out.reached_bar {
                "reached 80% bar"
            } else {
                "t/o"
            },
            out.train_secs
        );
    }
    println!("(paper: internal-state model 84%/80% at ~1/4 the epochs; pixels 63%/40% at the cap)");

    // ----------------------------------------------------------------
    // Study 2: self-testing with coverage reward.
    // ----------------------------------------------------------------
    println!();
    println!("Mario self-testing study (coverage reward +30 per new region)");
    au_nn::set_init_seed(77);
    let mut engine = Engine::new(Mode::Train);
    let dqn = DqnConfig {
        hidden: vec![64, 32],
        batch_size: 32,
        replay_capacity: 50_000,
        target_sync_every: 500,
        epsilon_decay: 0.9995,
        epsilon_end: 0.08, // keep exploring: testing wants novelty
        learning_rate: 1e-3,
        learn_every: 2,
        gamma: 0.99,
        seed: 5,
        ..DqnConfig::default()
    };
    engine
        .au_config(
            "SelfTest",
            ModelConfig::q_dnn(&[64, 32]).with_dqn(dqn.clone()),
        )
        .expect("fresh engine");
    // The paper's "previous AI model (which is not designed for testing)":
    // the same architecture trained on the plain game reward only.
    engine
        .au_config(
            "PlainAI",
            ModelConfig::q_dnn(&[64, 32]).with_dqn(DqnConfig {
                seed: 6,
                ..dqn.clone()
            }),
        )
        .expect("fresh engine");
    let mut tester = Mario::new(1);
    let train_episodes = if quick { 15 } else { 2000 };
    for _ in 0..train_episodes {
        harness::play_episode(
            &mut engine,
            "PlainAI",
            &mut tester,
            cfg.max_steps,
            FeatureSource::Internal,
            None,
        )
        .expect("episode runs");
    }
    let mut bug_found_during_training = false;
    // Reward shaping: +30 for every region newly covered *within the
    // episode* (the game's coverage counters reset with the program state
    // on restore, exactly like re-running an instrumented binary). The
    // depth-indexed zone regions make deep progress keep paying, so the
    // optimal per-episode policy both survives and explores.
    //
    // As in the paper's protocol (train until the behaviour is good, then
    // use it), we checkpoint the model whenever its greedy coverage
    // improves and measure with the best checkpoint — DQN's raw final
    // weights oscillate.
    let window = if quick { 200 } else { 600 };
    let model_dir = std::env::temp_dir().join("mario_selftest_best");
    let _ = std::fs::create_dir_all(&model_dir);
    engine.set_model_dir(&model_dir);
    let mut best_cov = -1.0f64;
    let block = if quick { 5 } else { 200 };
    let mut done = 0;
    while done < train_episodes {
        for _ in 0..block.min(train_episodes - done) {
            let mut covered = 0usize;
            // The checkpoint restore wipes the crash flag with the rest of
            // the program state, so the shaper (which sees the live game
            // every frame) also watches the bug's coverage region.
            let mut hit_bug = false;
            let mut shaper = |g: &Mario| {
                if g.coverage().hits("oob_ceiling_bug") > 0 {
                    hit_bug = true;
                }
                let now = g.coverage().covered();
                let bonus = if now > covered { 30.0 } else { 0.0 };
                covered = now;
                bonus
            };
            harness::play_episode(
                &mut engine,
                "SelfTest",
                &mut tester,
                cfg.max_steps,
                FeatureSource::Internal,
                Some(&mut shaper),
            )
            .expect("episode runs");
            if hit_bug {
                bug_found_during_training = true;
            }
        }
        done += block;
        engine.set_mode(Mode::Test);
        let cov = coverage_window(&mut engine, "SelfTest", window);
        engine.set_mode(Mode::Train);
        if cov > best_cov {
            best_cov = cov;
            engine.save_model("SelfTest").expect("model persists");
        }
    }

    // Measurement window: fresh game, play the *best checkpoint* greedily
    // and record coverage.
    let mut best_engine = Engine::new(Mode::Test);
    best_engine.set_model_dir(&model_dir);
    best_engine
        .au_config("SelfTest", ModelConfig::q_dnn(&[64, 32]).with_dqn(dqn))
        .expect("best checkpoint loads");
    let coverage_ai = coverage_window(&mut best_engine, "SelfTest", window);
    let _ = std::fs::remove_dir_all(&model_dir);
    engine.set_mode(Mode::Test);
    println!(
        "self-testing AI:  {:.0}% coverage in a {}-frame window{}",
        coverage_ai * 100.0,
        window,
        if bug_found_during_training {
            "  [boundary-check bug triggered during training]"
        } else {
            ""
        }
    );
    let coverage_plain = coverage_window(&mut engine, "PlainAI", window);
    println!(
        "previous AI:      {:.0}% coverage (trained to win, not to test)",
        coverage_plain * 100.0
    );

    // Random-play baseline over the same window, respawning on death.
    let mut random_game = Mario::new(1);
    let mut rng = StdRng::seed_from_u64(3);
    let mut random_covered: std::collections::BTreeSet<&'static str> = Default::default();
    let mut deaths = 0usize;
    let mut best_random_x = 0.0f64;
    for _ in 0..window {
        let action = rng.gen_range(0..random_game.n_actions());
        let terminal = random_game.step(action).terminal;
        for region in au_games::mario::REGIONS {
            if random_game.coverage().hits(region) > 0 {
                random_covered.insert(region);
            }
        }
        best_random_x = best_random_x.max(random_game.progress());
        if terminal {
            deaths += 1;
            random_game.reset();
        }
    }
    println!(
        "random play:      {:.0}% coverage ({} deaths, deepest progress {:.0}%)",
        random_covered.len() as f64 / au_games::mario::REGIONS.len() as f64 * 100.0,
        deaths,
        best_random_x * 100.0
    );

    // Oracle baseline over the same window (competent but non-exploratory).
    let mut oracle_game = Mario::new(1);
    let mut oracle_covered: std::collections::BTreeSet<&'static str> = Default::default();
    for _ in 0..window {
        let action = oracle_game.oracle_action();
        let terminal = oracle_game.step(action).terminal;
        for region in au_games::mario::REGIONS {
            if oracle_game.coverage().hits(region) > 0 {
                oracle_covered.insert(region);
            }
        }
        if terminal {
            oracle_game.reset();
        }
    }
    println!(
        "oracle play:      {:.0}% coverage (plays well but does not explore)",
        oracle_covered.len() as f64 / au_games::mario::REGIONS.len() as f64 * 100.0
    );
    println!("(paper: coverage-trained AI reaches ~65% fast; prior AI/random stay far lower;");
    println!(" the self-tester found a missing boundary check in the dungeon ceiling)");
}

/// Plays greedily for `frames` frames (respawning on death), returning the
/// fraction of coverage regions hit across the whole window — gcov-style
/// accumulation over reruns.
fn coverage_window(engine: &mut Engine, model: &str, frames: usize) -> f64 {
    let mut game = Mario::new(1);
    let mut reward = 0.0;
    let mut terminal = false;
    let mut covered: std::collections::BTreeSet<&'static str> = std::collections::BTreeSet::new();
    for _ in 0..frames {
        let names = game.feature_names();
        for (name, value) in names.iter().zip(game.features()) {
            engine.au_extract(name, &[value]);
        }
        let ser = engine.au_serialize(&names);
        let action = engine
            .au_nn_rl(model, &ser, reward, terminal, "output", game.n_actions())
            .expect("model trained");
        if terminal {
            game.reset();
            terminal = false;
            reward = 0.0;
            continue;
        }
        let result = game.step(action);
        reward = result.reward;
        terminal = result.terminal;
        for region in au_games::mario::REGIONS {
            if game.coverage().hits(region) > 0 {
                covered.insert(region);
            }
        }
    }
    covered.len() as f64 / au_games::mario::REGIONS.len() as f64
}
