//! SL experiment probe: runs the baseline/Raw/Med/Min comparison for a
//! single named program and prints the scores — the SL counterpart of
//! `tune_rl`, used to tune the defaults in `au_bench::sl`.
//!
//! Usage: `cargo run --release -p au-bench --bin sl_probe [program] [train_inputs] [epochs] [test_inputs]`

use au_bench::sl::{compare, Band, CannySl, PhylipSl, RothwellSl, SlConfig, SphinxSl};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    au_bench::monitor::init_from_args(&args);
    let program = args.get(1).map(String::as_str).unwrap_or("phylip");
    let mut cfg = SlConfig::default();
    if let Some(n) = args.get(2).and_then(|s| s.parse().ok()) {
        cfg.train_inputs = n;
    }
    if let Some(n) = args.get(3).and_then(|s| s.parse().ok()) {
        cfg.epochs = n;
    }
    if let Some(n) = args.get(4).and_then(|s| s.parse().ok()) {
        cfg.test_inputs = n;
    }
    let cmp = match program {
        "canny" => compare(&CannySl, cfg),
        "rothwell" => compare(&RothwellSl, cfg),
        "phylip" => compare(&PhylipSl::default(), cfg),
        "phylip300" => compare(&PhylipSl { taxa: 8, len: 300 }, cfg),
        "sphinx" => compare(&SphinxSl::default(), cfg),
        other => panic!("unknown program {other}"),
    };
    println!("{}: baseline {:.3}", cmp.program, cmp.baseline_score);
    for band in Band::ALL {
        let b = cmp.band(band);
        println!(
            "{:>4}: score {:.3} ({:+.0}%)  train {:.2}s",
            band.name(),
            b.score,
            cmp.improvement_pct(band),
            b.train_secs
        );
    }
}
