//! Hyperparameter probe for the RL benchmarks: trains one game under a few
//! DQN settings and prints the greedy-evaluation learning curve. Used to
//! pick the defaults baked into `au_bench::rl`; kept as a tool for
//! reproducing that tuning.
//!
//! Usage: `cargo run --release -p au-bench --bin tune_rl [game] [episodes]`

use au_core::{Engine, Mode, ModelConfig};
use au_games::harness::{self, FeatureSource};
use au_games::{Arkanoid, Breakout, Flappybird, Game, Mario, Torcs};
use au_nn::rl::DqnConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    au_bench::monitor::init_from_args(&args);
    let game_name = args.get(1).map(String::as_str).unwrap_or("flappy");
    let episodes: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1000);

    let settings: Vec<(&str, DqnConfig)> = vec![
        (
            "base",
            DqnConfig {
                hidden: vec![64, 32],
                batch_size: 32,
                replay_capacity: 20_000,
                target_sync_every: 200,
                epsilon_decay: 0.998,
                epsilon_end: 0.05,
                learning_rate: 1.5e-3,
                learn_every: 4,
                gamma: 0.97,
                seed: 11,
                ..DqnConfig::default()
            },
        ),
        (
            "slow_eps",
            DqnConfig {
                hidden: vec![64, 32],
                batch_size: 32,
                replay_capacity: 50_000,
                target_sync_every: 500,
                epsilon_decay: 0.9995,
                epsilon_end: 0.02,
                learning_rate: 1e-3,
                learn_every: 2,
                gamma: 0.99,
                seed: 11,
                ..DqnConfig::default()
            },
        ),
        (
            "fast_lr",
            DqnConfig {
                hidden: vec![64, 32],
                batch_size: 64,
                replay_capacity: 50_000,
                target_sync_every: 300,
                epsilon_decay: 0.999,
                epsilon_end: 0.05,
                learning_rate: 3e-3,
                learn_every: 2,
                gamma: 0.99,
                seed: 11,
                ..DqnConfig::default()
            },
        ),
    ];

    for (name, dqn) in settings {
        print!("{name:>9}:");
        match game_name {
            "flappy" => run(&mut Flappybird::new(1), dqn, episodes),
            "mario" => run(&mut Mario::new(1), dqn, episodes),
            "arkanoid" => run(&mut Arkanoid::new(1), dqn, episodes),
            "torcs" => run(&mut Torcs::new(4), dqn, episodes),
            "breakout" => run(&mut Breakout::new(1), dqn, episodes),
            other => panic!("unknown game {other}"),
        }
    }
}

fn run<G: Game + Clone>(game: &mut G, dqn: DqnConfig, episodes: usize) {
    au_nn::set_init_seed(dqn.seed);
    let mut engine = Engine::new(Mode::Train);
    engine
        .au_config("M", ModelConfig::q_dnn(&[64, 32]).with_dqn(dqn))
        .unwrap();
    let blocks = 10;
    let per_block = episodes / blocks;
    let start = std::time::Instant::now();
    for _ in 0..blocks {
        harness::train(
            &mut engine,
            "M",
            game,
            per_block,
            450,
            FeatureSource::Internal,
        )
        .unwrap();
        let eval =
            harness::evaluate(&mut engine, "M", game, 5, 450, FeatureSource::Internal).unwrap();
        print!(" {:.2}", eval.recent_progress(5));
    }
    println!("  ({:.0}s)", start.elapsed().as_secs_f64());
}
