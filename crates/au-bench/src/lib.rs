//! Experiment harnesses regenerating every table and figure of the paper.
//!
//! Binaries (run with `cargo run --release -p au-bench --bin <name>`):
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `table1` | Table 1 — program-analysis statistics |
//! | `table2` | Table 2 — model statistics + checkpoint/restore times |
//! | `table3` | Table 3 — effectiveness (baseline/Raw/Med/Min, players/Raw/All) |
//! | `fig12` | Fig. 12 — Canny per-dataset scores |
//! | `fig13` | Fig. 13 — Canny score vs training epochs |
//! | `fig14` | Fig. 14 — Canny qualitative edge maps (PGM files) |
//! | `fig15_16` | Figs. 15–16 — TORCS trace pruning (ε₁ duplicates, ε₂ variance) |
//! | `fig17` | Fig. 17 — TORCS driving score vs epochs |
//! | `mario_study` | Section 2 — Mario self-play & self-testing studies |
//! | `drift_demo` | Monitoring walkthrough — clean vs drifted streams, flight dump, fallback |
//!
//! The [`sl`] module trains the paper's `Raw`/`Med`/`Min` supervised
//! variants for the four data-processing programs; [`rl`] trains the
//! `Raw`/`All` reinforcement variants for the five games; [`stats`]
//! computes the Table 1/2 bookkeeping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod history;
pub mod monitor;
pub mod rl;
pub mod sl;
pub mod stats;
pub mod telemetry;

/// Formats a floating value for table output.
pub fn fmt(v: f64) -> String {
    if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Prints a Markdown-ish table row.
pub fn row(cells: &[String]) -> String {
    cells.join(" | ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_switches_precision_by_magnitude() {
        assert_eq!(fmt(1234.5), "1234");
        assert_eq!(fmt(1235.5), "1236");
        assert_eq!(fmt(12.345), "12.35");
        assert_eq!(fmt(0.12345), "0.1235");
        assert_eq!(fmt(-250.0), "-250");
    }

    #[test]
    fn row_joins_cells() {
        assert_eq!(row(&["a".into(), "b".into()]), "a | b");
        assert_eq!(row(&[]), "");
    }
}
