//! Perf-regression history: structured bench runs appended to
//! `BENCH_history.jsonl`, plus the comparison logic behind `bench-diff`.
//!
//! Each run is one JSON line:
//!
//! ```json
//! {"schema":1,"unix_secs":1754600000,"commit":"093c91d",
//!  "fingerprint":{"os":"linux","arch":"x86_64","cpus":8,"cpu_model":"..."},
//!  "benches":{"gemm_64":1.23e5,"predict":4.56e3}}
//! ```
//!
//! `benches` maps bench name → median wall time in nanoseconds. Medians
//! (not means) so one preempted sample cannot fake a regression. The
//! machine fingerprint travels with every run because history lines from
//! different machines are not comparable; [`diff`] refuses nothing but
//! callers (the CI leg, `bench-diff`) surface fingerprint mismatches as a
//! warning instead of a verdict.

use serde::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::{self, Write as _};
use std::path::Path;

/// Bump when the line format changes incompatibly; [`load`] skips lines
/// with a schema it does not understand rather than failing the gate.
pub const SCHEMA: u64 = 1;

/// The machine a run was measured on. Medians from different
/// fingerprints are apples and oranges; the diff tooling warns when the
/// baseline's fingerprint differs from the head's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    /// `std::env::consts::OS`.
    pub os: String,
    /// `std::env::consts::ARCH`.
    pub arch: String,
    /// Available parallelism at measurement time.
    pub cpus: u64,
    /// First `model name` line of `/proc/cpuinfo`, or `"unknown"`.
    pub cpu_model: String,
}

impl Fingerprint {
    /// Fingerprints the current machine.
    #[must_use]
    pub fn current() -> Self {
        let cpu_model = std::fs::read_to_string("/proc/cpuinfo")
            .ok()
            .and_then(|info| {
                info.lines()
                    .find(|l| l.starts_with("model name"))
                    .and_then(|l| l.split(':').nth(1))
                    .map(|m| m.trim().to_owned())
            })
            .unwrap_or_else(|| "unknown".to_owned());
        Fingerprint {
            os: std::env::consts::OS.to_owned(),
            arch: std::env::consts::ARCH.to_owned(),
            cpus: std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
            cpu_model,
        }
    }
}

/// One recorded bench run: where, when, and the per-bench medians.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryRun {
    /// Line-format version; see [`SCHEMA`].
    pub schema: u64,
    /// Seconds since the Unix epoch at measurement time.
    pub unix_secs: u64,
    /// Short commit hash, or `"unknown"` outside a checkout.
    pub commit: String,
    /// The measuring machine.
    pub fingerprint: Fingerprint,
    /// Bench name → median nanoseconds.
    pub benches: BTreeMap<String, f64>,
}

impl HistoryRun {
    /// A run stamped with the current machine, time, and commit.
    #[must_use]
    pub fn now(benches: BTreeMap<String, f64>) -> Self {
        HistoryRun {
            schema: SCHEMA,
            unix_secs: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0, |d| d.as_secs()),
            commit: current_commit(),
            fingerprint: Fingerprint::current(),
            benches,
        }
    }

    /// Renders the run as one JSON line (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"schema\":{},\"unix_secs\":{},\"commit\":",
            self.schema, self.unix_secs
        );
        push_json_str(&mut out, &self.commit);
        out.push_str(",\"fingerprint\":{\"os\":");
        push_json_str(&mut out, &self.fingerprint.os);
        out.push_str(",\"arch\":");
        push_json_str(&mut out, &self.fingerprint.arch);
        let _ = write!(out, ",\"cpus\":{},\"cpu_model\":", self.fingerprint.cpus);
        push_json_str(&mut out, &self.fingerprint.cpu_model);
        out.push_str("},\"benches\":{");
        for (i, (name, ns)) in self.benches.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            let _ = write!(out, ":{ns}");
        }
        out.push_str("}}");
        out
    }

    /// Parses one history line.
    ///
    /// # Errors
    ///
    /// A human-readable message when the line is not valid JSON or lacks
    /// a required field.
    pub fn from_json(line: &str) -> Result<Self, String> {
        let v: Value = serde_json::from_str(line).map_err(|e| e.to_string())?;
        let str_of = |v: &Value, name: &str| -> Result<String, String> {
            match v.field(name).map_err(|e| e.to_string())? {
                Value::Str(s) => Ok(s.clone()),
                other => Err(format!("field `{name}`: expected string, got {other:?}")),
            }
        };
        let num_of = |v: &Value, name: &str| -> Result<f64, String> {
            v.field(name)
                .and_then(Value::as_f64)
                .map_err(|e| e.to_string())
        };
        let fp = v.field("fingerprint").map_err(|e| e.to_string())?;
        let Value::Object(bench_fields) = v.field("benches").map_err(|e| e.to_string())? else {
            return Err("field `benches`: expected object".to_owned());
        };
        let mut benches = BTreeMap::new();
        for (name, ns) in bench_fields {
            benches.insert(name.clone(), ns.as_f64().map_err(|e| e.to_string())?);
        }
        Ok(HistoryRun {
            schema: num_of(&v, "schema")? as u64,
            unix_secs: num_of(&v, "unix_secs")? as u64,
            commit: str_of(&v, "commit")?,
            fingerprint: Fingerprint {
                os: str_of(fp, "os")?,
                arch: str_of(fp, "arch")?,
                cpus: num_of(fp, "cpus")? as u64,
                cpu_model: str_of(fp, "cpu_model")?,
            },
            benches,
        })
    }
}

/// The short commit hash: `GITHUB_SHA` / `GIT_COMMIT` when CI exports
/// them, else `git rev-parse --short HEAD`, else `"unknown"`.
#[must_use]
pub fn current_commit() -> String {
    for var in ["GITHUB_SHA", "GIT_COMMIT"] {
        if let Ok(sha) = std::env::var(var) {
            let sha = sha.trim().to_owned();
            if !sha.is_empty() {
                return sha.chars().take(9).collect();
            }
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Appends one run to the JSONL history file, creating it if absent.
///
/// # Errors
///
/// Any [`io::Error`] opening or writing the file.
pub fn append(path: &Path, run: &HistoryRun) -> io::Result<()> {
    let mut file = OpenOptions::new().create(true).append(true).open(path)?;
    writeln!(file, "{}", run.to_json())
}

/// Lines [`load`] could not use, as `(1-based line number, why)`.
pub type SkippedLines = Vec<(usize, String)>;

/// Loads every parseable run with a known schema, in file order.
/// Malformed or future-schema lines are skipped (returned in the second
/// slot so callers can warn), never fatal: a corrupt line must not brick
/// the perf gate.
///
/// # Errors
///
/// Any [`io::Error`] reading the file. A missing file is an empty
/// history, not an error.
pub fn load(path: &Path) -> io::Result<(Vec<HistoryRun>, SkippedLines)> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), Vec::new())),
        Err(e) => return Err(e),
    };
    let mut runs = Vec::new();
    let mut skipped = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match HistoryRun::from_json(line) {
            Ok(run) if run.schema <= SCHEMA => runs.push(run),
            Ok(run) => skipped.push((i + 1, format!("unknown schema {}", run.schema))),
            Err(e) => skipped.push((i + 1, e)),
        }
    }
    Ok((runs, skipped))
}

/// One bench that got slower past the threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Bench name.
    pub name: String,
    /// Baseline median, nanoseconds.
    pub base_ns: f64,
    /// Head median, nanoseconds.
    pub head_ns: f64,
    /// `head_ns / base_ns` (> 1 is slower).
    pub ratio: f64,
}

/// Everything `bench-diff` reports about a baseline/head pair.
#[derive(Debug, Clone, Default)]
pub struct Diff {
    /// Benches past the threshold, worst first.
    pub regressions: Vec<Regression>,
    /// Benches compared and found within the threshold.
    pub within: Vec<Regression>,
    /// Benches only in the head run (new coverage, not a verdict).
    pub added: Vec<String>,
    /// Benches only in the baseline (lost coverage — surfaced, not fatal).
    pub removed: Vec<String>,
    /// The two runs were measured on different machines.
    pub fingerprint_mismatch: bool,
}

/// Compares `head` medians against `base`. A bench regresses when
/// `head/base > threshold` (e.g. `1.30` = 30% slower) *and* the absolute
/// slowdown exceeds `MIN_DELTA_NS` — sub-microsecond benches jitter far
/// more than 30% between runs and must not flap the gate.
#[must_use]
pub fn diff(base: &HistoryRun, head: &HistoryRun, threshold: f64) -> Diff {
    /// Ignore ratio blow-ups when the absolute delta is below this.
    const MIN_DELTA_NS: f64 = 200.0;
    let mut out = Diff {
        fingerprint_mismatch: base.fingerprint != head.fingerprint,
        ..Diff::default()
    };
    for (name, &head_ns) in &head.benches {
        let Some(&base_ns) = base.benches.get(name) else {
            out.added.push(name.clone());
            continue;
        };
        let ratio = if base_ns > 0.0 {
            head_ns / base_ns
        } else {
            f64::INFINITY
        };
        let entry = Regression {
            name: name.clone(),
            base_ns,
            head_ns,
            ratio,
        };
        if ratio > threshold && head_ns - base_ns > MIN_DELTA_NS {
            out.regressions.push(entry);
        } else {
            out.within.push(entry);
        }
    }
    for name in base.benches.keys() {
        if !head.benches.contains_key(name) {
            out.removed.push(name.clone());
        }
    }
    out.regressions
        .sort_by(|a, b| b.ratio.total_cmp(&a.ratio).then(a.name.cmp(&b.name)));
    out
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_with(benches: &[(&str, f64)]) -> HistoryRun {
        HistoryRun {
            schema: SCHEMA,
            unix_secs: 1_754_600_000,
            commit: "abc1234".to_owned(),
            fingerprint: Fingerprint {
                os: "linux".to_owned(),
                arch: "x86_64".to_owned(),
                cpus: 8,
                cpu_model: "Bench CPU \"turbo\"".to_owned(),
            },
            benches: benches.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect(),
        }
    }

    #[test]
    fn json_line_round_trips_exactly() {
        let run = run_with(&[("gemm_64", 123_456.0), ("predict", 7_890.5)]);
        let line = run.to_json();
        assert!(!line.contains('\n'), "history lines must be single lines");
        assert_eq!(HistoryRun::from_json(&line).unwrap(), run);
    }

    #[test]
    fn identical_runs_produce_no_regressions() {
        let run = run_with(&[("a", 10_000.0), ("b", 2_000_000.0)]);
        let d = diff(&run, &run.clone(), 1.30);
        assert!(d.regressions.is_empty(), "{:?}", d.regressions);
        assert_eq!(d.within.len(), 2);
        assert!(!d.fingerprint_mismatch);
    }

    #[test]
    fn injected_regression_is_flagged_and_worst_sorted() {
        let base = run_with(&[("fast", 10_000.0), ("slow", 1_000_000.0), ("ok", 5_000.0)]);
        let mut head = base.clone();
        head.benches.insert("fast".to_owned(), 15_000.0); // 1.5x
        head.benches.insert("slow".to_owned(), 2_000_000.0); // 2.0x
        let d = diff(&base, &head, 1.30);
        let names: Vec<&str> = d.regressions.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["slow", "fast"], "worst first");
        assert!((d.regressions[0].ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn tiny_absolute_deltas_do_not_flap_the_gate() {
        let base = run_with(&[("nano", 50.0)]);
        let mut head = base.clone();
        head.benches.insert("nano".to_owned(), 120.0); // 2.4x but 70 ns
        let d = diff(&base, &head, 1.30);
        assert!(d.regressions.is_empty(), "{:?}", d.regressions);
    }

    #[test]
    fn added_and_removed_benches_are_informational() {
        let base = run_with(&[("old", 10_000.0), ("both", 10_000.0)]);
        let head = run_with(&[("new", 10_000.0), ("both", 10_000.0)]);
        let d = diff(&base, &head, 1.30);
        assert_eq!(d.added, ["new"]);
        assert_eq!(d.removed, ["old"]);
        assert!(d.regressions.is_empty());
    }

    #[test]
    fn fingerprint_mismatch_is_surfaced() {
        let base = run_with(&[("a", 10_000.0)]);
        let mut head = base.clone();
        head.fingerprint.cpus = 16;
        assert!(diff(&base, &head, 1.30).fingerprint_mismatch);
    }

    #[test]
    fn append_and_load_round_trip_through_a_file() {
        let dir = std::env::temp_dir().join(format!(
            "au-bench-history-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_history.jsonl");
        let a = run_with(&[("a", 1_000.0)]);
        let b = run_with(&[("a", 1_100.0)]);
        append(&path, &a).unwrap();
        append(&path, &b).unwrap();
        // A corrupt line must be skipped, not fatal.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            writeln!(f, "{{not json").unwrap();
        }
        let (runs, skipped) = load(&path).unwrap();
        assert_eq!(runs, vec![a, b]);
        assert_eq!(skipped.len(), 1);
        assert_eq!(skipped[0].0, 3, "1-based line number of the bad line");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_history_file_is_empty_not_an_error() {
        let (runs, skipped) =
            load(Path::new("/nonexistent/definitely/BENCH_history.jsonl")).unwrap();
        assert!(runs.is_empty() && skipped.is_empty());
    }
}
