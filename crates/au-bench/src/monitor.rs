//! `--monitor` support shared by the bench binaries.
//!
//! A binary calls [`init_from_args`] (or [`init_from_env`] when it does not
//! otherwise collect its arguments) before its workload; if the flag is
//! present, every engine the binary creates runs with online monitoring
//! enabled — drift detection against the training distribution, shadow
//! accuracy where labels still flow, and per-model flight recording — and
//! alerts surface on stderr (and through telemetry when that is also on).

/// Parses `--monitor` from `args` and, when present, installs the default
/// [`au_core::monitor::MonitorConfig`] as the process-wide default picked up
/// by every subsequently created engine. Returns whether monitoring is on.
pub fn init_from_args(args: &[String]) -> bool {
    if !args.iter().any(|a| a == "--monitor") {
        return false;
    }
    enable()
}

/// Like [`init_from_args`] but reads the process arguments directly — the
/// one-line hookup for binaries that do not collect an args vector.
pub fn init_from_env() -> bool {
    let args: Vec<String> = std::env::args().skip(1).collect();
    init_from_args(&args)
}

#[cfg(feature = "monitor")]
fn enable() -> bool {
    au_core::set_default_monitor_config(Some(au_core::monitor::MonitorConfig::default()));
    eprintln!("monitor: online monitoring enabled for every engine in this run");
    true
}

#[cfg(not(feature = "monitor"))]
fn enable() -> bool {
    eprintln!("monitor: built without the `monitor` feature; --monitor ignored");
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_absent_means_disabled() {
        assert!(!init_from_args(&["--quick".into(), "--telemetry".into()]));
        assert!(!init_from_args(&[]));
    }

    // `init_from_args(["--monitor"])` mutates the process-wide default
    // config, which other tests' engines would silently pick up — the
    // enabled path is exercised by the `drift_demo` binary instead.
}
