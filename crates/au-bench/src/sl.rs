//! Supervised-learning experiments: the paper's baseline/Raw/Med/Min
//! comparison for the four data-processing programs.
//!
//! Each program is wrapped in an [`SlProgram`] adapter exposing, per input:
//! the three feature bands (`Min`/`Med`/`Raw`, per Algorithm 1's distance
//! ranking), the ideal parameter labels (direct-search oracle — the paper's
//! expert/auto-tuned ground truth), and a quality scorer. The harness
//! trains one model per band through the Autonomizer engine and reports
//! score, training time, and execution time per version — the columns of
//! Table 3.

use au_core::{Engine, Mode, ModelConfig};
use au_image::scene::{Scene, SceneGenerator};
use au_phylo::{Dataset, DistParams};
use au_speech::{DecodeParams, Recognizer, Utterance, Vocabulary};
use au_vision::canny::{self, CannyParams};
use au_vision::rothwell::{self, RothwellParams};
use std::time::Instant;

/// The paper's three feature bands plus the no-model baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Band {
    /// Closest-to-result internal features (best).
    Min,
    /// Median-distance internal features.
    Med,
    /// Raw program inputs.
    Raw,
}

impl Band {
    /// All bands in presentation order.
    pub const ALL: [Band; 3] = [Band::Raw, Band::Med, Band::Min];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Band::Min => "Min",
            Band::Med => "Med",
            Band::Raw => "Raw",
        }
    }
}

/// Adapter exposing one paper benchmark to the generic SL harness.
pub trait SlProgram {
    /// The per-input payload.
    type Input;

    /// Benchmark name as used in the tables.
    fn name(&self) -> &'static str;

    /// Whether a higher score is better (`↑` vs `↓` in Table 3).
    fn higher_better(&self) -> bool {
        true
    }

    /// Generates `n` inputs deterministically from `seed`.
    fn dataset(&self, n: usize, seed: u64) -> Vec<Self::Input>;

    /// Feature vector of the input in the given band. Must have a fixed
    /// width per band across inputs.
    fn features(&self, input: &Self::Input, band: Band) -> Vec<f64>;

    /// The ideal parameter values for this input (the training labels).
    fn ideal(&self, input: &Self::Input) -> Vec<f64>;

    /// Runs the program with its shipped default parameters, returning the
    /// quality score.
    fn default_score(&self, input: &Self::Input) -> f64;

    /// Runs the program with the given (possibly model-predicted)
    /// parameters, returning the quality score. Implementations clamp the
    /// raw predictions into valid ranges.
    fn score_with(&self, input: &Self::Input, params: &[f64]) -> f64;
}

/// Results for one band of one program.
#[derive(Debug, Clone)]
pub struct BandResult {
    /// Band evaluated.
    pub band: Band,
    /// Mean score on held-out inputs.
    pub score: f64,
    /// Wall-clock training seconds.
    pub train_secs: f64,
    /// Mean wall-clock seconds to process one input at deployment
    /// (prediction + program run).
    pub exec_secs: f64,
    /// Scalars recorded into the database store during training (the trace
    /// size in values; ×8 for bytes).
    pub trace_values: u64,
    /// Model parameter count.
    pub model_params: usize,
    /// Score after each training epoch (for Fig. 13-style curves).
    pub curve: Vec<f64>,
}

/// Full comparison for one program.
#[derive(Debug, Clone)]
pub struct SlComparison {
    /// Benchmark name.
    pub program: &'static str,
    /// Whether higher scores are better.
    pub higher_better: bool,
    /// Mean baseline (default-parameter) score.
    pub baseline_score: f64,
    /// Mean baseline execution seconds per input.
    pub baseline_exec_secs: f64,
    /// Per-band results in `Band::ALL` order.
    pub bands: Vec<BandResult>,
    /// Per-test-input scores for every version (for Fig. 12): tuples of
    /// (baseline, raw, med, min) per input.
    pub per_input: Vec<[f64; 4]>,
}

impl SlComparison {
    /// The result for a band.
    pub fn band(&self, band: Band) -> &BandResult {
        self.bands
            .iter()
            .find(|b| b.band == band)
            .expect("all bands present")
    }

    /// Relative improvement of a band over the baseline, in percent,
    /// oriented so positive = better (handles lower-is-better programs).
    pub fn improvement_pct(&self, band: Band) -> f64 {
        let b = self.baseline_score;
        let s = self.band(band).score;
        if b.abs() < 1e-12 {
            return 0.0;
        }
        if self.higher_better {
            (s - b) / b.abs() * 100.0
        } else {
            (b - s) / b.abs() * 100.0
        }
    }
}

/// Harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct SlConfig {
    /// Training inputs.
    pub train_inputs: usize,
    /// Held-out test inputs (the paper uses 10).
    pub test_inputs: usize,
    /// Training epochs per model.
    pub epochs: usize,
    /// Dataset seed.
    pub seed: u64,
    /// Hidden layers of every model (the paper uses the same architecture
    /// for all versions, input layer aside).
    pub hidden: [usize; 2],
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Record a score-curve point every this many epochs (0 = never).
    pub curve_every: usize,
}

impl Default for SlConfig {
    fn default() -> Self {
        SlConfig {
            train_inputs: 150,
            test_inputs: 10,
            epochs: 40,
            seed: 7,
            hidden: [64, 32],
            learning_rate: 1e-3,
            curve_every: 0,
        }
    }
}

/// Trains and evaluates all three bands of a program, plus the baseline.
pub fn compare<P: SlProgram>(program: &P, cfg: SlConfig) -> SlComparison {
    let train_set = program.dataset(cfg.train_inputs, cfg.seed);
    let test_set = program.dataset(cfg.test_inputs, cfg.seed.wrapping_add(0x9e37));

    // Baseline.
    let baseline_start = Instant::now();
    let baseline_scores: Vec<f64> = test_set.iter().map(|i| program.default_score(i)).collect();
    let baseline_exec_secs = baseline_start.elapsed().as_secs_f64() / test_set.len() as f64;
    let baseline_score = mean(&baseline_scores);

    let labels: Vec<Vec<f64>> = train_set.iter().map(|i| program.ideal(i)).collect();

    let mut per_input: Vec<[f64; 4]> = baseline_scores
        .iter()
        .map(|&b| [b, 0.0, 0.0, 0.0])
        .collect();

    let mut bands = Vec::new();
    for band in Band::ALL {
        au_nn::set_init_seed(cfg.seed ^ band.name().len() as u64);
        let mut engine = Engine::new(Mode::Train);
        let model = format!("{}-{}", program.name(), band.name());
        engine
            .au_config(
                &model,
                ModelConfig::dnn(&[cfg.hidden[0], cfg.hidden[1]])
                    .with_learning_rate(cfg.learning_rate),
            )
            .expect("fresh engine accepts config");

        // Collect training features through the engine (so trace sizes are
        // measured the same way the runtime would).
        let xs: Vec<Vec<f64>> = train_set
            .iter()
            .map(|i| {
                let f = program.features(i, band);
                engine.au_extract("X", &f);
                f
            })
            .collect();
        let trace_values = engine.total_extracted();

        let train_start = Instant::now();
        let mut curve = Vec::new();
        if cfg.curve_every > 0 {
            let mut done = 0;
            while done < cfg.epochs {
                let chunk = cfg.curve_every.min(cfg.epochs - done);
                engine
                    .train_supervised(&model, &xs, &labels, chunk)
                    .expect("training succeeds");
                done += chunk;
                let scores: Vec<f64> = test_set
                    .iter()
                    .map(|input| {
                        let prediction = engine
                            .predict(&model, &program.features(input, band))
                            .expect("model is built");
                        program.score_with(input, &prediction)
                    })
                    .collect();
                curve.push(mean(&scores));
            }
        } else {
            engine
                .train_supervised(&model, &xs, &labels, cfg.epochs)
                .expect("training succeeds");
        }
        let train_secs = train_start.elapsed().as_secs_f64();

        // Deployment evaluation.
        let exec_start = Instant::now();
        let scores: Vec<f64> = test_set
            .iter()
            .map(|input| {
                let prediction = engine
                    .predict(&model, &program.features(input, band))
                    .expect("model is built");
                program.score_with(input, &prediction)
            })
            .collect();
        let exec_secs = exec_start.elapsed().as_secs_f64() / test_set.len() as f64;
        let slot = match band {
            Band::Raw => 1,
            Band::Med => 2,
            Band::Min => 3,
        };
        for (per, &s) in per_input.iter_mut().zip(&scores) {
            per[slot] = s;
        }
        let model_params = engine
            .model_stats(&model)
            .map(|s| s.param_count)
            .unwrap_or(0);
        bands.push(BandResult {
            band,
            score: mean(&scores),
            train_secs,
            exec_secs,
            trace_values,
            model_params,
            curve,
        });
    }

    SlComparison {
        program: program.name(),
        higher_better: program.higher_better(),
        baseline_score,
        baseline_exec_secs,
        bands,
        per_input,
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

// ---------------------------------------------------------------------
// Program adapters
// ---------------------------------------------------------------------

/// Image side length used by the vision benchmarks.
pub const IMG: usize = 32;

/// Canny adapter (Fig. 11's two-model structure collapsed into one model
/// per band; internal bands are computed from a default-parameter profiling
/// pass, as the runtime observes them during training executions).
#[derive(Debug, Default)]
pub struct CannySl;

impl SlProgram for CannySl {
    type Input = Scene;

    fn name(&self) -> &'static str {
        "Canny"
    }

    fn dataset(&self, n: usize, seed: u64) -> Vec<Scene> {
        SceneGenerator::new(seed).batch(n, IMG, IMG)
    }

    fn features(&self, input: &Scene, band: Band) -> Vec<f64> {
        match band {
            Band::Raw => input.image.to_f64(),
            Band::Med => {
                let result = canny::canny(&input.image, CannyParams::default());
                result.s_img.to_f64()
            }
            Band::Min => {
                let result = canny::canny(&input.image, CannyParams::default());
                let total: f64 = result.hist.iter().sum::<f64>().max(1.0);
                result.hist.iter().map(|&h| h / total).collect()
            }
        }
    }

    fn ideal(&self, input: &Scene) -> Vec<f64> {
        let (p, _) = canny::ideal_params(&input.image, &input.truth);
        vec![f64::from(p.sigma), f64::from(p.lo), f64::from(p.hi)]
    }

    fn default_score(&self, input: &Scene) -> f64 {
        let result = canny::canny(&input.image, CannyParams::default());
        canny::score(&result.edges, &input.truth)
    }

    fn score_with(&self, input: &Scene, params: &[f64]) -> f64 {
        let sigma = params.first().copied().unwrap_or(1.0).clamp(0.3, 3.0) as f32;
        let hi = params.get(2).copied().unwrap_or(0.6).clamp(0.05, 0.95) as f32;
        let lo = params
            .get(1)
            .copied()
            .unwrap_or(0.25)
            .clamp(0.01, f64::from(hi)) as f32;
        let result = canny::canny(&input.image, CannyParams { sigma, lo, hi });
        canny::score(&result.edges, &input.truth)
    }
}

/// Rothwell adapter.
#[derive(Debug, Default)]
pub struct RothwellSl;

impl SlProgram for RothwellSl {
    type Input = Scene;

    fn name(&self) -> &'static str {
        "Rothwell"
    }

    fn dataset(&self, n: usize, seed: u64) -> Vec<Scene> {
        SceneGenerator::new(seed ^ 0xABCD).batch(n, IMG, IMG)
    }

    fn features(&self, input: &Scene, band: Band) -> Vec<f64> {
        match band {
            Band::Raw => input.image.to_f64(),
            Band::Med => {
                let result = rothwell::rothwell(&input.image, RothwellParams::default());
                result.s_img.to_f64()
            }
            Band::Min => {
                let result = rothwell::rothwell(&input.image, RothwellParams::default());
                result.summary
            }
        }
    }

    fn ideal(&self, input: &Scene) -> Vec<f64> {
        let (p, _) = rothwell::ideal_params(&input.image, &input.truth);
        vec![f64::from(p.sigma), f64::from(p.low), f64::from(p.alpha)]
    }

    fn default_score(&self, input: &Scene) -> f64 {
        let result = rothwell::rothwell(&input.image, RothwellParams::default());
        rothwell::score(&result.edges, &input.truth)
    }

    fn score_with(&self, input: &Scene, params: &[f64]) -> f64 {
        let p = RothwellParams {
            sigma: params.first().copied().unwrap_or(1.0).clamp(0.3, 3.0) as f32,
            low: params.get(1).copied().unwrap_or(0.15).clamp(0.01, 0.9) as f32,
            alpha: params.get(2).copied().unwrap_or(0.9).clamp(0.0, 4.0) as f32,
        };
        let result = rothwell::rothwell(&input.image, p);
        rothwell::score(&result.edges, &input.truth)
    }
}

/// Phylip adapter — the one lower-is-better program (Robinson–Foulds).
#[derive(Debug)]
pub struct PhylipSl {
    /// Taxa per dataset.
    pub taxa: usize,
    /// Alignment length.
    pub len: usize,
}

impl Default for PhylipSl {
    fn default() -> Self {
        // 300 sites: long enough for the rate-heterogeneity footprint to be
        // identifiable, short enough that the baseline still makes errors.
        PhylipSl { taxa: 8, len: 300 }
    }
}

impl SlProgram for PhylipSl {
    type Input = Dataset;

    fn name(&self) -> &'static str {
        "Phylip"
    }

    fn higher_better(&self) -> bool {
        false
    }

    fn dataset(&self, n: usize, seed: u64) -> Vec<Dataset> {
        (0..n)
            .map(|i| au_phylo::generate_dataset(self.taxa, self.len, seed.wrapping_add(i as u64)))
            .collect()
    }

    fn features(&self, input: &Dataset, band: Band) -> Vec<f64> {
        match band {
            Band::Raw => input
                .sequences
                .iter()
                .flat_map(|s| s.iter().map(|&b| f64::from(b) / 3.0))
                .collect(),
            Band::Med => {
                let d = au_phylo::estimate_distances(&input.sequences, DistParams::default());
                d.into_iter().flatten().collect()
            }
            Band::Min => au_phylo::distance_summary(&input.sequences),
        }
    }

    fn ideal(&self, input: &Dataset) -> Vec<f64> {
        // The synthetic generator's latent rate-heterogeneity shape IS the
        // analytically ideal correction alpha (our substitution makes the
        // paper's auto-tuned label exact); cutoff/pseudo come from direct
        // search with alpha fixed at that value. alpha spans 0.3..100 —
        // regress its logarithm.
        let mut best = (DistParams::default(), f64::INFINITY);
        for &cutoff in &[1.0f64, 2.0, 3.0] {
            for &pseudo in &[0.0f64, 1.0] {
                let params = DistParams {
                    alpha: input.gamma_shape,
                    cutoff,
                    pseudo,
                };
                let tree = au_phylo::infer_tree(&input.sequences, params);
                let score = au_phylo::robinson_foulds(&tree, &input.true_tree);
                if score < best.1 {
                    best = (params, score);
                }
            }
        }
        vec![input.gamma_shape.ln(), best.0.cutoff, best.0.pseudo]
    }

    fn default_score(&self, input: &Dataset) -> f64 {
        let tree = au_phylo::infer_tree(&input.sequences, DistParams::default());
        au_phylo::robinson_foulds(&tree, &input.true_tree)
    }

    fn score_with(&self, input: &Dataset, params: &[f64]) -> f64 {
        let p = DistParams {
            alpha: params
                .first()
                .copied()
                .unwrap_or(0.0)
                .exp()
                .clamp(0.1, 100.0),
            cutoff: params.get(1).copied().unwrap_or(3.0).clamp(0.5, 10.0),
            pseudo: params.get(2).copied().unwrap_or(0.0).clamp(0.0, 5.0),
        };
        let tree = au_phylo::infer_tree(&input.sequences, p);
        au_phylo::robinson_foulds(&tree, &input.true_tree)
    }
}

/// Sphinx adapter.
#[derive(Debug)]
pub struct SphinxSl {
    recognizer: Recognizer,
    /// Frames to which the Raw band is padded.
    pub max_frames: usize,
}

impl Default for SphinxSl {
    fn default() -> Self {
        SphinxSl {
            recognizer: Recognizer::new(Vocabulary::new(4, 20)),
            max_frames: 56,
        }
    }
}

impl SlProgram for SphinxSl {
    type Input = Utterance;

    fn name(&self) -> &'static str {
        "Sphinx"
    }

    fn dataset(&self, n: usize, seed: u64) -> Vec<Utterance> {
        let vocab = self.recognizer.vocabulary();
        (0..n)
            .map(|i| {
                let s = seed.wrapping_add(i as u64 * 31);
                au_speech::synthesize(vocab, i % vocab.len(), s)
            })
            .collect()
    }

    fn features(&self, input: &Utterance, band: Band) -> Vec<f64> {
        match band {
            Band::Raw => {
                let mut raw = input.raw();
                raw.resize(self.max_frames * 2, 0.0);
                raw
            }
            Band::Med => {
                let mut energies: Vec<f64> = input
                    .frames
                    .iter()
                    .map(|f| (f[0] * f[0] + f[1] * f[1]).sqrt())
                    .collect();
                energies.resize(self.max_frames, 0.0);
                energies
            }
            Band::Min => input.summary(),
        }
    }

    fn ideal(&self, input: &Utterance) -> Vec<f64> {
        let (p, _) = au_speech::ideal_params(&self.recognizer, input);
        vec![p.beam, p.floor]
    }

    fn default_score(&self, input: &Utterance) -> f64 {
        let (word, _, _) = self.recognizer.recognize(input, DecodeParams::default());
        if word == input.word {
            1.0
        } else {
            0.0
        }
    }

    fn score_with(&self, input: &Utterance, params: &[f64]) -> f64 {
        let p = DecodeParams {
            beam: params.first().copied().unwrap_or(3.0).clamp(1.0, 40.0),
            floor: params.get(1).copied().unwrap_or(0.3).clamp(0.0, 1.5),
        };
        let (word, _, _) = self.recognizer.recognize(input, p);
        if word == input.word {
            1.0
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SlConfig {
        SlConfig {
            train_inputs: 6,
            test_inputs: 3,
            epochs: 3,
            ..SlConfig::default()
        }
    }

    #[test]
    fn canny_comparison_runs_end_to_end() {
        let cmp = compare(&CannySl, tiny());
        assert_eq!(cmp.bands.len(), 3);
        assert_eq!(cmp.per_input.len(), 3);
        assert!(cmp.band(Band::Min).model_params > 0);
        // hist band is much smaller than the raw band.
        assert!(cmp.band(Band::Min).trace_values < cmp.band(Band::Raw).trace_values);
    }

    #[test]
    fn phylip_is_lower_better() {
        let program = PhylipSl { taxa: 6, len: 60 };
        let cmp = compare(&program, tiny());
        assert!(!cmp.higher_better);
        // improvement_pct orientation: lower score = positive improvement
        // (0.0 when the baseline is degenerate, matching improvement_pct).
        let band = cmp.band(Band::Min);
        let expected = if cmp.baseline_score.abs() < 1e-12 {
            0.0
        } else {
            (cmp.baseline_score - band.score) / cmp.baseline_score.abs() * 100.0
        };
        assert!((cmp.improvement_pct(Band::Min) - expected).abs() < 1e-9);
    }

    #[test]
    fn sphinx_features_have_fixed_width() {
        let program = SphinxSl::default();
        let inputs = program.dataset(5, 3);
        let w: Vec<usize> = inputs
            .iter()
            .map(|i| program.features(i, Band::Raw).len())
            .collect();
        assert!(w.windows(2).all(|p| p[0] == p[1]), "{w:?}");
    }

    #[test]
    fn curve_collection_works() {
        let mut cfg = tiny();
        cfg.curve_every = 1;
        let cmp = compare(&SphinxSl::default(), cfg);
        assert_eq!(cmp.band(Band::Min).curve.len(), cfg.epochs);
    }
}
