//! Table 1/2 bookkeeping: program-analysis statistics and model/runtime
//! measurements.

use au_games::{Arkanoid, Breakout, Flappybird, Game, Mario, Torcs};
use au_trace::{extract_rl_detailed, extract_sl, AnalysisDb, RlParams};
use std::path::Path;
use std::time::Instant;

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct AnalysisRow {
    /// Benchmark name with its learning kind.
    pub program: String,
    /// Lines of code of the reimplemented program.
    pub loc: usize,
    /// Lines added to autonomize it (primitive call sites and reward
    /// plumbing in the corresponding example/harness).
    pub added_loc: usize,
    /// Number of user-annotated target variables.
    pub target_vars: usize,
    /// Candidate feature variables before selection/pruning.
    pub candidate_vars: usize,
    /// Feature variables available per target (Table 1 prints these as
    /// `a/b/c`).
    pub feature_vars: Vec<usize>,
}

impl AnalysisRow {
    /// The `a/b/c` rendering of the per-target feature counts.
    pub fn feature_vars_display(&self) -> String {
        if self.feature_vars.is_empty() {
            "-".to_owned()
        } else {
            self.feature_vars
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("/")
        }
    }
}

/// Counts the lines of the given workspace-relative source files. Missing
/// files count zero (the binaries may run from other working directories).
pub fn count_loc(paths: &[&str]) -> usize {
    let root = workspace_root();
    paths
        .iter()
        .map(|p| {
            std::fs::read_to_string(root.join(p))
                .map(|s| s.lines().count())
                .unwrap_or(0)
        })
        .sum()
}

/// Counts autonomization lines (lines mentioning `au_` primitives or the
/// reward wiring) in the given workspace-relative files.
pub fn count_added_loc(paths: &[&str]) -> usize {
    let root = workspace_root();
    paths
        .iter()
        .map(|p| {
            std::fs::read_to_string(root.join(p))
                .map(|s| {
                    s.lines()
                        .filter(|l| {
                            let l = l.trim_start();
                            (l.contains("au_") && !l.starts_with("//")) || l.contains("reward")
                        })
                        .count()
                })
                .unwrap_or(0)
        })
        .sum()
}

fn workspace_root() -> std::path::PathBuf {
    // au-bench lives at <root>/crates/au-bench.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf()
}

/// Builds the Table 1 row for an SL program from its recorded dependence
/// shape (Algorithm 1).
pub fn sl_analysis_row(
    name: &str,
    db: &AnalysisDb,
    loc_files: &[&str],
    added_files: &[&str],
) -> AnalysisRow {
    let features = extract_sl(db);
    let mut candidates = db.inputs().clone();
    candidates.extend(db.dependents_of_set(db.inputs()));
    let feature_vars = features.values().map(Vec::len).collect();
    AnalysisRow {
        program: format!("[SL] {name}"),
        loc: count_loc(loc_files),
        added_loc: count_added_loc(added_files),
        target_vars: db.targets().len(),
        candidate_vars: candidates.len(),
        feature_vars,
    }
}

/// Builds the Table 1 row for an RL program by profiling `frames` frames of
/// oracle play and running Algorithm 2.
pub fn rl_analysis_row<G: Game>(
    game: &mut G,
    frames: usize,
    params: RlParams,
    loc_files: &[&str],
    added_files: &[&str],
) -> AnalysisRow {
    let mut db = AnalysisDb::new();
    game.record_dependences(&mut db);
    game.reset();
    for _ in 0..frames {
        game.record_frame(&mut db);
        let action = game.oracle_action();
        if game.step(action).terminal {
            game.reset();
        }
    }
    let detailed = extract_rl_detailed(&db, params);
    // The paper combines all feature sets ("All feature variables are
    // combined to predict multiple target variables").
    let mut combined: std::collections::BTreeSet<au_trace::VarId> =
        std::collections::BTreeSet::new();
    let mut candidates: std::collections::BTreeSet<au_trace::VarId> =
        std::collections::BTreeSet::new();
    for extraction in detailed.values() {
        combined.extend(extraction.selected.iter().copied());
        candidates.extend(extraction.candidates.iter().copied());
    }
    AnalysisRow {
        program: format!("[RL] {}", game.name()),
        loc: count_loc(loc_files),
        added_loc: count_added_loc(added_files),
        target_vars: db.targets().len(),
        candidate_vars: candidates.len(),
        feature_vars: vec![combined.len()],
    }
}

/// Computes all nine Table 1 rows.
pub fn table1_rows() -> Vec<AnalysisRow> {
    let mut rows = Vec::new();

    let mut canny_db = AnalysisDb::new();
    au_vision::canny::record_dependences(&mut canny_db);
    rows.push(sl_analysis_row(
        "Canny",
        &canny_db,
        &[
            "crates/au-vision/src/canny.rs",
            "crates/au-image/src/gray.rs",
        ],
        &["examples/canny_tuning.rs"],
    ));

    let mut rothwell_db = AnalysisDb::new();
    au_vision::rothwell::record_dependences(&mut rothwell_db);
    rows.push(sl_analysis_row(
        "Rothwell",
        &rothwell_db,
        &["crates/au-vision/src/rothwell.rs"],
        &["examples/canny_tuning.rs"],
    ));

    let mut phylip_db = AnalysisDb::new();
    au_phylo::record_dependences(&mut phylip_db);
    rows.push(sl_analysis_row(
        "Phylip",
        &phylip_db,
        &["crates/au-phylo/src/lib.rs"],
        &["examples/quickstart.rs"],
    ));

    let mut sphinx_db = AnalysisDb::new();
    au_speech::record_dependences(&mut sphinx_db);
    rows.push(sl_analysis_row(
        "Sphinx",
        &sphinx_db,
        &["crates/au-speech/src/lib.rs"],
        &["examples/quickstart.rs"],
    ));

    let params = RlParams::default();
    rows.push(rl_analysis_row(
        &mut Flappybird::new(1),
        300,
        params,
        &["crates/au-games/src/flappy.rs"],
        &["crates/au-games/src/harness.rs"],
    ));
    rows.push(rl_analysis_row(
        &mut Mario::new(1),
        400,
        params,
        &[
            "crates/au-games/src/mario.rs",
            "crates/au-games/src/coverage.rs",
        ],
        &["examples/mario_selfplay.rs"],
    ));
    rows.push(rl_analysis_row(
        &mut Arkanoid::new(1),
        400,
        params,
        &[
            "crates/au-games/src/arkanoid.rs",
            "crates/au-games/src/paddle.rs",
        ],
        &["crates/au-games/src/harness.rs"],
    ));
    rows.push(rl_analysis_row(
        &mut Torcs::new(1),
        400,
        params,
        &["crates/au-games/src/torcs.rs"],
        &["examples/torcs_driving.rs"],
    ));
    rows.push(rl_analysis_row(
        &mut Breakout::new(1),
        400,
        params,
        &[
            "crates/au-games/src/breakout.rs",
            "crates/au-games/src/paddle.rs",
        ],
        &["crates/au-games/src/harness.rs"],
    ));
    rows
}

/// Checkpoint/restore timing over a live game state + database store
/// (Table 2's last two columns; ours are in-memory snapshots instead of
/// the paper's KVM, so expect microseconds rather than seconds).
#[derive(Debug, Clone, Copy)]
pub struct CheckpointTiming {
    /// Mean seconds to create a checkpoint.
    pub checkpoint_secs: f64,
    /// Mean seconds to restore one.
    pub restore_secs: f64,
}

/// Measures checkpoint/restore cost on a Mario state with a populated
/// database store.
pub fn measure_checkpoint(iterations: usize) -> CheckpointTiming {
    use au_core::{Engine, Mode};
    let mut engine = Engine::new(Mode::Train);
    let mut game = Mario::new(3);
    // Populate π with a realistic window of extracted state.
    for _ in 0..200 {
        for (name, value) in game.feature_names().iter().zip(game.features()) {
            engine.au_extract(name, &[value]);
        }
        let action = game.oracle_action();
        if game.step(action).terminal {
            game.reset();
        }
    }
    let start = Instant::now();
    let mut checkpoints = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        checkpoints.push(engine.checkpoint_with(&game));
    }
    let checkpoint_secs = start.elapsed().as_secs_f64() / iterations as f64;
    let start = Instant::now();
    for ckpt in &checkpoints {
        let _ = engine.restore_with(ckpt);
    }
    let restore_secs = start.elapsed().as_secs_f64() / iterations as f64;
    CheckpointTiming {
        checkpoint_secs,
        restore_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_nine_rows() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 9);
        for row in &rows {
            assert!(row.target_vars >= 1, "{}: targets", row.program);
            assert!(
                row.candidate_vars >= row.feature_vars.iter().copied().max().unwrap_or(0),
                "{}: candidates {} >= features {:?}",
                row.program,
                row.candidate_vars,
                row.feature_vars
            );
        }
    }

    #[test]
    fn sl_rows_have_one_count_per_target() {
        let rows = table1_rows();
        let canny = &rows[0];
        assert_eq!(canny.feature_vars.len(), canny.target_vars);
        assert!(canny.feature_vars_display().contains('/'));
    }

    #[test]
    fn loc_counting_reads_real_files() {
        let loc = count_loc(&["crates/au-games/src/mario.rs"]);
        assert!(loc > 100, "mario.rs should be substantial, got {loc}");
        assert_eq!(count_loc(&["no/such/file.rs"]), 0);
    }

    #[test]
    fn checkpoint_timing_is_positive() {
        let t = measure_checkpoint(5);
        assert!(t.checkpoint_secs > 0.0);
        assert!(t.restore_secs > 0.0);
    }

    #[test]
    fn torcs_row_prunes_duplicates() {
        let row = rl_analysis_row(&mut Torcs::new(2), 300, RlParams::default(), &[], &[]);
        assert!(row.feature_vars[0] < row.candidate_vars);
    }
}
