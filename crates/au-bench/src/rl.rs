//! Reinforcement-learning experiments: the paper's players/Raw/All
//! comparison for the five interactive programs.

use au_core::{Engine, Mode, ModelConfig};
use au_games::harness::{self, FeatureSource, TrainReport};
use au_games::{Arkanoid, Breakout, Flappybird, Game, Mario, Torcs};
use au_nn::rl::DqnConfig;
use std::time::Instant;

/// Which RL model variant to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Internal program state through a dense Q-network — the paper's
    /// `All` setting.
    All,
    /// Raw pixel frames through a convolutional Q-network — the paper's
    /// `Raw` (DeepMind-style) setting.
    Raw,
}

impl Variant {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Variant::All => "All",
            Variant::Raw => "Raw",
        }
    }
}

/// Experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct RlConfig {
    /// Training episode budget for the `All` variant (the paper's 24-hour
    /// cap analogue).
    pub max_episodes: usize,
    /// Episode budget for the `Raw` variant. Pixel episodes cost roughly an
    /// order of magnitude more wall-clock per frame, so the equal-time cap
    /// of the paper translates to fewer episodes.
    pub max_episodes_raw: usize,
    /// Frames per episode cap.
    pub max_steps: usize,
    /// Evaluation episodes (the paper averages 10 runs).
    pub eval_episodes: usize,
    /// Stop early when the evaluated score is within 20% of the oracle
    /// (the paper's stopping rule).
    pub early_stop: bool,
    /// Check the stopping rule every this many episodes.
    pub eval_every: usize,
    /// Raw-variant frame side length.
    pub frame: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RlConfig {
    fn default() -> Self {
        RlConfig {
            max_episodes: 2000,
            max_episodes_raw: 300,
            max_steps: 500,
            eval_episodes: 10,
            early_stop: true,
            eval_every: 50,
            frame: 12,
            seed: 11,
        }
    }
}

/// Outcome of training one variant on one game.
#[derive(Debug, Clone)]
pub struct VariantOutcome {
    /// Which variant.
    pub variant: Variant,
    /// Mean progress of the final greedy evaluation.
    pub progress: f64,
    /// Success rate of the final greedy evaluation.
    pub success: f64,
    /// Episodes actually trained.
    pub episodes: usize,
    /// Whether the 20%-of-oracle bar was reached within the budget
    /// (`false` = the paper's "t/o").
    pub reached_bar: bool,
    /// Wall-clock training seconds.
    pub train_secs: f64,
    /// Mean wall-clock seconds per deployed frame.
    pub exec_secs_per_step: f64,
    /// Scalars recorded to the database store during training.
    pub trace_values: u64,
    /// Model parameter count.
    pub model_params: usize,
    /// Greedy-evaluation progress after each `eval_every` block (learning
    /// curve for Fig. 17).
    pub curve: Vec<f64>,
}

/// Full comparison for one game.
#[derive(Debug, Clone)]
pub struct RlComparison {
    /// Game name.
    pub game: &'static str,
    /// Oracle ("players") mean progress over the evaluation episodes.
    pub oracle_progress: f64,
    /// Oracle success rate.
    pub oracle_success: f64,
    /// Outcomes for the trained variants.
    pub variants: Vec<VariantOutcome>,
}

impl RlComparison {
    /// Outcome of a specific variant.
    pub fn variant(&self, v: Variant) -> &VariantOutcome {
        self.variants
            .iter()
            .find(|o| o.variant == v)
            .expect("variant present")
    }
}

fn dqn(seed: u64) -> DqnConfig {
    // The "slow_eps" setting from `tune_rl`: slower exploration decay,
    // larger replay, and a patient target network stabilize every game.
    DqnConfig {
        hidden: vec![64, 32],
        batch_size: 32,
        replay_capacity: 50_000,
        target_sync_every: 500,
        epsilon_decay: 0.9995,
        epsilon_end: 0.02,
        learning_rate: 1e-3,
        gamma: 0.99,
        seed,
        learn_every: 2,
        ..DqnConfig::default()
    }
}

/// Trains one variant on a fresh copy of the game.
pub fn train_variant<G: Game + Clone>(
    game: &mut G,
    variant: Variant,
    oracle_progress: f64,
    cfg: RlConfig,
) -> VariantOutcome {
    au_nn::set_init_seed(cfg.seed ^ variant.name().len() as u64);
    let mut engine = Engine::new(Mode::Train);
    let model = format!("{}-{}", game.name(), variant.name());
    let (config, source) = match variant {
        Variant::All => (
            ModelConfig::q_dnn(&[64, 32]).with_dqn(dqn(cfg.seed)),
            FeatureSource::Internal,
        ),
        Variant::Raw => {
            // The paper's DeepMind-style convolutional preprocessing with
            // the same dense head.
            let mut d = dqn(cfg.seed ^ 1);
            d.batch_size = 16; // keep conv training tractable
            d.learn_every = 8;
            (
                ModelConfig::q_cnn(1, cfg.frame, cfg.frame, &[64, 32]).with_dqn(d),
                FeatureSource::Pixels {
                    width: cfg.frame,
                    height: cfg.frame,
                },
            )
        }
    };
    engine.au_config(&model, config).expect("fresh engine");

    let bar = oracle_progress * 0.8;
    let budget = match variant {
        Variant::All => cfg.max_episodes,
        Variant::Raw => cfg.max_episodes_raw,
    };
    let train_start = Instant::now();
    let mut episodes_done = 0;
    let mut reached_bar = false;
    let mut curve = Vec::new();
    while episodes_done < budget {
        let block = cfg.eval_every.min(budget - episodes_done);
        harness::train(&mut engine, &model, game, block, cfg.max_steps, source)
            .expect("training block succeeds");
        episodes_done += block;
        let eval = harness::evaluate(
            &mut engine,
            &model,
            game,
            cfg.eval_episodes,
            cfg.max_steps,
            source,
        )
        .expect("evaluation succeeds");
        let score = eval.recent_progress(cfg.eval_episodes);
        curve.push(score);
        if cfg.early_stop && score >= bar {
            reached_bar = true;
            break;
        }
    }
    let train_secs = train_start.elapsed().as_secs_f64();
    let trace_values = engine.total_extracted();

    // Final greedy evaluation + per-frame timing.
    let exec_start = Instant::now();
    let final_eval: TrainReport = harness::evaluate(
        &mut engine,
        &model,
        game,
        cfg.eval_episodes,
        cfg.max_steps,
        source,
    )
    .expect("final evaluation succeeds");
    let total_steps: usize = final_eval.episodes.iter().map(|e| e.steps).sum();
    let exec_secs_per_step = exec_start.elapsed().as_secs_f64() / total_steps.max(1) as f64;
    let progress = final_eval.recent_progress(cfg.eval_episodes);
    let success = final_eval.recent_success(cfg.eval_episodes);
    if cfg.early_stop && progress >= bar {
        reached_bar = true;
    }

    VariantOutcome {
        variant,
        progress,
        success,
        episodes: episodes_done,
        reached_bar,
        train_secs,
        exec_secs_per_step,
        trace_values,
        model_params: engine
            .model_stats(&model)
            .map(|s| s.param_count)
            .unwrap_or(0),
        curve,
    }
}

/// Runs the full players/Raw/All comparison on one game.
pub fn compare<G: Game + Clone>(game: &mut G, cfg: RlConfig, variants: &[Variant]) -> RlComparison {
    // Oracle baseline (the "10 human players").
    let mut oracle_progress = 0.0;
    let mut oracle_success = 0.0;
    for _ in 0..cfg.eval_episodes {
        let out = harness::run_oracle(game, cfg.max_steps);
        oracle_progress += out.progress;
        oracle_success += if out.succeeded { 1.0 } else { 0.0 };
    }
    oracle_progress /= cfg.eval_episodes as f64;
    oracle_success /= cfg.eval_episodes as f64;

    let outcomes = variants
        .iter()
        .map(|&v| train_variant(game, v, oracle_progress, cfg))
        .collect();
    RlComparison {
        game: game.name(),
        oracle_progress,
        oracle_success,
        variants: outcomes,
    }
}

/// Constructs every RL benchmark game (with its comparison seed).
pub fn all_games(seed: u64) -> Vec<Box<dyn GameFactory>> {
    vec![
        Box::new(FlappyFactory(seed)),
        Box::new(MarioFactory(seed)),
        Box::new(ArkanoidFactory(seed)),
        Box::new(TorcsFactory(seed)),
        Box::new(BreakoutFactory(seed)),
    ]
}

/// Factory erasing the concrete game type for the table drivers.
pub trait GameFactory {
    /// Benchmark name.
    fn name(&self) -> &'static str;
    /// Runs the comparison with this factory's game.
    fn compare(&self, cfg: RlConfig, variants: &[Variant]) -> RlComparison;
}

macro_rules! factory {
    ($factory:ident, $game:ty, $ctor:expr) => {
        /// Factory for the corresponding game.
        #[derive(Debug, Clone, Copy)]
        pub struct $factory(pub u64);

        impl GameFactory for $factory {
            fn name(&self) -> &'static str {
                let game: $game = $ctor(self.0);
                game.name()
            }

            fn compare(&self, cfg: RlConfig, variants: &[Variant]) -> RlComparison {
                let mut game: $game = $ctor(self.0);
                compare(&mut game, cfg, variants)
            }
        }
    };
}

factory!(FlappyFactory, Flappybird, Flappybird::new);
factory!(MarioFactory, Mario, Mario::new);
factory!(ArkanoidFactory, Arkanoid, Arkanoid::new);
factory!(TorcsFactory, Torcs, Torcs::new);
factory!(BreakoutFactory, Breakout, Breakout::new);

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RlConfig {
        RlConfig {
            max_episodes: 4,
            max_episodes_raw: 4,
            max_steps: 60,
            eval_episodes: 2,
            eval_every: 2,
            early_stop: false,
            frame: 8,
            seed: 1,
        }
    }

    #[test]
    fn comparison_runs_both_variants() {
        let mut game = Flappybird::new(1);
        let cmp = compare(&mut game, tiny(), &[Variant::All, Variant::Raw]);
        assert_eq!(cmp.variants.len(), 2);
        assert!(cmp.oracle_progress > 0.0);
        let all = cmp.variant(Variant::All);
        let raw = cmp.variant(Variant::Raw);
        assert_eq!(all.episodes, 4);
        assert!(raw.model_params > all.model_params, "conv model is bigger");
        assert!(
            raw.trace_values > all.trace_values,
            "pixel traces dwarf internal-state traces"
        );
    }

    #[test]
    fn factories_cover_all_five_games() {
        let names: Vec<&str> = all_games(3).iter().map(|f| f.name()).collect();
        assert_eq!(
            names,
            vec!["Flappybird", "Mario", "Arkanoid", "Torcs", "Breakout"]
        );
    }

    #[test]
    fn early_stop_halts_when_bar_reached() {
        // With an oracle progress of ~0 (bar 0), the first evaluation stops.
        let mut cfg = tiny();
        cfg.early_stop = true;
        let mut game = Flappybird::new(2);
        let out = train_variant(&mut game, Variant::All, 0.0, cfg);
        assert!(out.reached_bar);
        assert!(out.episodes <= cfg.max_episodes);
    }
}
