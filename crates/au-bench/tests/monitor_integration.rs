//! End-to-end monitoring checks through the public engine API only: a
//! clean deployment stays silent, a corrupted feature stream trips alerts
//! and the flight recorder, the fallback policy refuses to serve a
//! degraded model, and the training baseline survives the model sidecar.

#![cfg(feature = "monitor")]

use au_core::monitor::{AlertKind, MonitorConfig};
use au_core::{AuError, Engine, Mode, ModelConfig};
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("au-bench-monitor-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Trains y = 2x and switches to TS mode, mirroring the quickstart flow.
fn deployed_engine(config: MonitorConfig) -> Engine {
    au_nn::set_init_seed(31);
    let mut e = Engine::new(Mode::Train);
    e.set_monitor_config(config);
    e.au_config("approx", ModelConfig::dnn(&[16]).with_learning_rate(0.02))
        .expect("config");
    let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0]).collect();
    let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![2.0 * x[0]]).collect();
    e.train_supervised("approx", &xs, &ys, 120).expect("train");
    e.set_mode(Mode::Test);
    e
}

#[test]
fn clean_stream_is_silent_and_corrupted_stream_alerts() {
    let mut e = deployed_engine(MonitorConfig::default());
    for i in 0..64 {
        // Strided order keeps each sliding window representative of the
        // whole training distribution.
        let x = ((i * 13) % 40) as f64 / 40.0;
        e.au_extract("X", &[x]);
        e.au_nn("approx", "X", &["Y"]).expect("serve");
    }
    let mon = e.monitor("approx").expect("monitor active");
    assert!(
        mon.alerts().is_empty(),
        "clean run alerted: {:?}",
        mon.alerts()
    );
    drop(mon); // release the monitor lock before serving resumes

    // The sensor now reads 5.0 too high: immediately out of range, and
    // once the window refills, drifted.
    for i in 0..32 {
        let x = (i % 40) as f64 / 40.0 + 5.0;
        e.au_extract("X", &[x]);
        e.au_nn("approx", "X", &["Y"])
            .expect("serve (fallback off)");
    }
    // Take the report before the monitor guard: both acquire the monitor
    // lock, so holding the guard across the report call would deadlock.
    let report = e.monitor_report();
    let mon = e.monitor("approx").expect("monitor active");
    assert!(
        mon.alerts().iter().any(|a| a.kind == AlertKind::OutOfRange),
        "corrupted stream must flag out-of-range inputs"
    );
    assert!(
        mon.alerts().iter().any(|a| a.kind == AlertKind::Drift),
        "corrupted stream must trip the drift detector: {report}"
    );
    assert!(report.contains("approx:"), "{report}");
}

#[test]
fn fallback_policy_returns_model_degraded_and_dumps_flight_records() {
    let dir = scratch_dir("fallback");
    let mut e = deployed_engine(MonitorConfig::default().with_fallback(true));
    e.set_model_dir(&dir);
    let mut degraded = false;
    for i in 0..48 {
        let x = (i % 40) as f64 / 40.0 + 5.0;
        e.au_extract("X", &[x]);
        match e.au_nn("approx", "X", &["Y"]) {
            Ok(_) => {}
            Err(AuError::ModelDegraded(_)) => {
                degraded = true;
                break;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(degraded, "sustained drift with fallback must stop serving");

    // The critical alert already dumped the flight recorder; the explicit
    // dump must agree and contain the corrupted inputs.
    let path = e.dump_flight_recorder("approx").expect("dump");
    let text = std::fs::read_to_string(&path).expect("flight file");
    assert!(!text.trim().is_empty(), "flight dump is empty");
    assert!(
        text.lines().all(|l| l.starts_with('{') && l.ends_with('}')),
        "flight dump must be one JSON object per line"
    );
    assert!(
        text.contains("\"features\":[5"),
        "corrupted inputs recorded"
    );

    // Re-arming clears the poisoned windows; in-range traffic serves again.
    e.clear_degraded("approx");
    e.au_extract("X", &[0.5]);
    e.au_nn("approx", "X", &["Y"]).expect("serves after re-arm");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn training_baseline_survives_the_model_sidecar() {
    let dir = scratch_dir("sidecar");
    let mut tr = deployed_engine(MonitorConfig::default());
    tr.set_model_dir(&dir);
    tr.save_model("approx").expect("save");

    // A fresh process-equivalent: a new engine loads the sidecar and the
    // persisted baseline powers drift detection without retraining.
    let mut ts = Engine::new(Mode::Test);
    ts.set_monitor_config(MonitorConfig::default());
    ts.set_model_dir(&dir);
    ts.au_config("approx", ModelConfig::dnn(&[16]))
        .expect("load");
    ts.au_extract("X", &[9.0]);
    ts.au_nn("approx", "X", &["Y"]).expect("serve");
    let mon = ts.monitor("approx").expect("monitor installed on load");
    let last = mon.last_drift().expect("baseline attached from sidecar");
    assert_eq!(last.out_of_range, 1, "9.0 is far outside the trained [0,1]");
    let _ = std::fs::remove_dir_all(&dir);
}
