//! End-to-end telemetry check: a quickstart-style train→predict run must
//! leave the global recorder with counter values that match the engine's
//! own bookkeeping, and the exporters must produce well-formed output.
//!
//! The global recorder is process-wide, so everything lives in one `#[test]`
//! (Rust runs tests in one process; two tests would race on the counters).

#![cfg(feature = "telemetry")]

use au_core::{Engine, Mode, ModelConfig};

fn json_structure_balances(text: &str) -> bool {
    let (mut braces, mut brackets, mut in_str, mut esc) = (0i64, 0i64, false, false);
    for c in text.chars() {
        if esc {
            esc = false;
            continue;
        }
        match c {
            '\\' if in_str => esc = true,
            '"' => in_str = !in_str,
            '{' if !in_str => braces += 1,
            '}' if !in_str => braces -= 1,
            '[' if !in_str => brackets += 1,
            ']' if !in_str => brackets -= 1,
            _ => {}
        }
        if braces < 0 || brackets < 0 {
            return false;
        }
    }
    braces == 0 && brackets == 0 && !in_str
}

#[test]
fn quickstart_style_run_records_expected_counters() {
    au_telemetry::enable();
    let rec = au_telemetry::global();
    rec.set_verbosity(au_telemetry::Level::Error);

    // Train: extract a 4-wide feature row plus a 1-wide label per input,
    // take a gradient step, then predict on held-out inputs.
    let mut engine = Engine::new(Mode::Train);
    engine
        .au_config("TelemNN", ModelConfig::dnn(&[8]))
        .expect("config");
    let train_inputs = 12u64;
    for i in 0..train_inputs {
        let x = i as f64 / train_inputs as f64;
        engine.au_extract("SUMMARY", &[x, 1.0 - x, x * x, 0.5]);
        engine.au_extract("OUT", &[2.0 * x]);
        engine
            .au_nn("TelemNN", "SUMMARY", &["OUT"])
            .expect("train step");
    }
    engine.au_checkpoint();
    engine.au_restore().expect("checkpoint exists");

    engine.set_mode(Mode::Test);
    let test_inputs = 5u64;
    for i in 0..test_inputs {
        let x = 0.05 + i as f64 / 10.0;
        engine.au_extract("SUMMARY", &[x, 1.0 - x, x * x, 0.5]);
        engine.au_nn("TelemNN", "SUMMARY", &["OUT"]).expect("serve");
        let _y = engine.au_write_back_scalar("OUT").expect("prediction");
    }

    // Counter values must agree with the engine's own lifetime counter:
    // every au_extract row was counted exactly once.
    assert_eq!(
        rec.counter_value("au_core.extract_rows"),
        engine.total_extracted(),
        "extract_rows counter must equal Engine::total_extracted()"
    );
    // 5 rows per training input (4 features + 1 label), 4 per test input.
    assert_eq!(engine.total_extracted(), train_inputs * 5 + test_inputs * 4);
    assert_eq!(rec.counter_value("au_core.rows_trained"), train_inputs);
    // One prediction per au_nn call (train calls also predict for wb).
    assert_eq!(
        rec.counter_value("au_core.predictions_served"),
        train_inputs + test_inputs
    );
    assert_eq!(rec.counter_value("au_core.checkpoints"), 1);
    assert_eq!(rec.counter_value("au_core.restores"), 1);
    assert_eq!(rec.counter_value("au_core.write_backs"), test_inputs);

    // Latency histograms observed the same call counts.
    let extract_hist = rec
        .histogram_snapshot("au_core.au_extract")
        .expect("au_extract histogram exists");
    assert_eq!(extract_hist.count, train_inputs * 2 + test_inputs);
    let nn_hist = rec
        .histogram_snapshot("au_core.au_nn")
        .expect("au_nn histogram exists");
    assert_eq!(nn_hist.count, train_inputs + test_inputs);
    assert!(nn_hist.sum > 0, "au_nn spans must take measurable time");

    // au-nn layer underneath saw one batch per au_nn training call.
    assert!(rec.counter_value("au_nn.batches_trained") >= train_inputs);

    // Spans captured the au_nn call tree.
    let spans = rec.spans();
    assert!(
        spans.iter().any(
            |s| s.name == "au_nn" && s.args.iter().any(|(k, v)| k == "model" && v == "TelemNN")
        ),
        "au_nn span with model arg expected, got {:?}",
        spans.iter().map(|s| &s.name).collect::<Vec<_>>()
    );

    // The summary report surfaces the counters; exporters emit valid JSON.
    let report = engine.telemetry_report();
    assert!(report.contains("au_core.extract_rows"), "{report}");

    let mut chrome = Vec::new();
    rec.write_chrome_trace(&mut chrome).expect("chrome trace");
    let chrome = String::from_utf8(chrome).expect("utf8");
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert!(json_structure_balances(&chrome), "unbalanced: {chrome}");
    assert!(chrome.contains("\"name\":\"au_nn\""));

    let mut jsonl = Vec::new();
    rec.write_jsonl(&mut jsonl).expect("jsonl");
    let jsonl = String::from_utf8(jsonl).expect("utf8");
    for line in jsonl.lines() {
        assert!(json_structure_balances(line), "bad line: {line}");
    }
    assert!(jsonl.contains("\"kind\":\"histogram\""));
}
