//! Exporter I/O failure surfacing: `TelemetrySink::finish` must report an
//! unwritable `--telemetry` path as an error (the bench binaries turn that
//! into a non-zero exit via `finish_or_exit`), and must keep succeeding on
//! a writable one.

#![cfg(feature = "telemetry")]

use au_bench::telemetry::TelemetrySink;
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("au_bench_sink_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn finish_reports_unwritable_path() {
    let dir = scratch_dir("bad");
    // A plain file where the output's parent directory should go:
    // create_dir_all and File::create below it must both fail.
    let blocker = dir.join("blocker");
    std::fs::write(&blocker, b"not a directory").expect("blocker file");
    let sink = TelemetrySink::to_path(blocker.join("trace.json"));
    let err = sink.finish().expect_err("writing under a file must fail");
    // The exact kind differs by platform (NotADirectory on Unix); what
    // matters is that the failure surfaced instead of being swallowed.
    assert_ne!(err.kind(), std::io::ErrorKind::Other, "opaque error: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn finish_writes_both_exports_on_a_writable_path() {
    let dir = scratch_dir("ok");
    let out = dir.join("nested").join("trace.json");
    let sink = TelemetrySink::to_path(out.clone());
    sink.finish().expect("writable path");
    let trace = std::fs::read_to_string(&out).expect("chrome trace exists");
    assert!(trace.starts_with("{\"traceEvents\":["), "{trace}");
    assert!(
        out.with_extension("jsonl").exists(),
        "jsonl sibling must be written"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
