//! End-to-end checks on the perf-regression gate binaries: `bench-diff`
//! must pass on identical runs, fail (exit 1) on an injected synthetic
//! regression, and `bench-history` must append parseable history lines
//! that feed straight back into the gate.

use au_bench::history::{Fingerprint, HistoryRun, SCHEMA};
use std::path::{Path, PathBuf};
use std::process::Command;

fn temp_history(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "au-bench-gate-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join("BENCH_history.jsonl")
}

fn run_with(benches: &[(&str, f64)]) -> HistoryRun {
    HistoryRun {
        schema: SCHEMA,
        unix_secs: 1_754_600_000,
        commit: "abc1234".to_owned(),
        fingerprint: Fingerprint::current(),
        benches: benches.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect(),
    }
}

fn bench_diff(history: &Path, extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_bench-diff"))
        .args(["--history", history.to_str().unwrap()])
        .args(extra)
        .output()
        .expect("run bench-diff")
}

#[test]
fn diff_passes_on_identical_runs_and_fails_on_injected_regression() {
    let history = temp_history("diff");
    let mut fast = run_with(&[("gemm_64", 250_000.0), ("predict", 9_000.0)]);
    fast.commit = "aaa1111".to_owned();
    au_bench::history::append(&history, &fast).unwrap();
    au_bench::history::append(&history, &fast).unwrap();

    let ok = bench_diff(&history, &["--threshold", "1.30"]);
    assert!(
        ok.status.success(),
        "identical runs must pass: {}",
        String::from_utf8_lossy(&ok.stderr)
    );

    // Inject a synthetic 2x regression on gemm_64 and the gate must trip.
    let mut slower = fast.clone();
    slower.commit = "bbb2222".to_owned();
    slower.benches.insert("gemm_64".to_owned(), 500_000.0);
    au_bench::history::append(&history, &slower).unwrap();

    let fail = bench_diff(&history, &["--threshold", "1.30"]);
    assert_eq!(
        fail.status.code(),
        Some(1),
        "regression must exit 1: {}",
        String::from_utf8_lossy(&fail.stderr)
    );
    let stderr = String::from_utf8_lossy(&fail.stderr);
    assert!(stderr.contains("gemm_64"), "names the culprit: {stderr}");
    assert!(stderr.contains("2.00x"), "states the ratio: {stderr}");

    // A follow-up run at the regressed speed: the default (previous-run)
    // comparison passes, but pinning the baseline to the fast commit
    // still trips the gate — --baseline selects by commit, not recency.
    let mut settled = slower.clone();
    settled.commit = "ccc3333".to_owned();
    au_bench::history::append(&history, &settled).unwrap();
    let vs_prev = bench_diff(&history, &["--threshold", "1.30"]);
    assert!(
        vs_prev.status.success(),
        "vs previous (equally slow) run: {}",
        String::from_utf8_lossy(&vs_prev.stderr)
    );
    let vs_fast = bench_diff(&history, &["--threshold", "1.30", "--baseline", "aaa"]);
    assert_eq!(
        vs_fast.status.code(),
        Some(1),
        "vs pinned fast baseline: still regressed: {}",
        String::from_utf8_lossy(&vs_fast.stderr)
    );

    std::fs::remove_dir_all(history.parent().unwrap()).ok();
}

#[test]
fn diff_handles_empty_and_single_run_histories() {
    let history = temp_history("edge");
    // No file at all: usage error, exit 2.
    let missing = bench_diff(&history, &[]);
    assert_eq!(missing.status.code(), Some(2));
    // One run: nothing to compare, advisory pass.
    au_bench::history::append(&history, &run_with(&[("a", 1000.0)])).unwrap();
    let single = bench_diff(&history, &[]);
    assert!(single.status.success());
    std::fs::remove_dir_all(history.parent().unwrap()).ok();
}

#[test]
fn bench_history_appends_parseable_runs_that_gate_clean() {
    let history = temp_history("smoke");
    for _ in 0..2 {
        let out = Command::new(env!("CARGO_BIN_EXE_bench-history"))
            .args(["--quick", "--out", history.to_str().unwrap()])
            .output()
            .expect("run bench-history");
        assert!(
            out.status.success(),
            "bench-history failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let (runs, skipped) = au_bench::history::load(&history).unwrap();
    assert_eq!(runs.len(), 2, "two appended runs");
    assert!(skipped.is_empty(), "{skipped:?}");
    for run in &runs {
        for expected in ["gemm_64", "gemm_128", "au_extract", "predict", "par_map_1k"] {
            let ns = run.benches.get(expected).copied().unwrap_or_default();
            assert!(ns > 0.0, "{expected} missing or non-positive: {ns}");
        }
    }
    // Two back-to-back smoke runs on the same machine should be well
    // within a generous advisory threshold; use a huge one so scheduler
    // noise on loaded CI machines cannot flake this test — the strict
    // threshold behaviour is covered by the synthetic-regression test.
    let gate = bench_diff(&history, &["--threshold", "25.0"]);
    assert!(
        gate.status.success(),
        "back-to-back smoke runs gated: {}",
        String::from_utf8_lossy(&gate.stderr)
    );
    std::fs::remove_dir_all(history.parent().unwrap()).ok();
}
