//! Criterion benches comparing the `All` (dense-on-state) and `Raw`
//! (conv-on-pixels) model costs — the mechanism behind Table 2's model-size
//! ratios and Table 3's training-time ratios. Also includes the ablation
//! benches for the DQN design choices (replay buffer, target network).

use au_nn::rl::{DqnAgent, DqnConfig, Transition};
use au_nn::{Activation, Adam, Loss, Network, Tensor};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("forward");
    au_nn::set_init_seed(1);
    let mut dense = Network::builder(10)
        .dense(64)
        .activation(Activation::Relu)
        .dense(32)
        .activation(Activation::Relu)
        .dense(5)
        .build();
    let state = Tensor::row(&[0.3; 10]);
    group.bench_function("dense_10_features", |b| {
        b.iter(|| black_box(dense.forward(black_box(&state))));
    });

    let mut conv = Network::builder(144)
        .conv2d(1, 12, 12, 4, 3, 1)
        .activation(Activation::Relu)
        .max_pool2d(4, 10, 10, 2)
        .conv2d(4, 5, 5, 8, 3, 1)
        .activation(Activation::Relu)
        .flatten()
        .dense(64)
        .activation(Activation::Relu)
        .dense(5)
        .build();
    let frame = Tensor::row(&[0.3; 144]);
    group.bench_function("conv_12x12_frame", |b| {
        b.iter(|| black_box(conv.forward(black_box(&frame))));
    });
    group.finish();
}

fn bench_train_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_batch32");
    group.sample_size(20);
    au_nn::set_init_seed(2);
    let mut dense = Network::builder(10)
        .dense(64)
        .activation(Activation::Relu)
        .dense(5)
        .build();
    let xs = Tensor::zeros(&[32, 10]);
    let ys = Tensor::zeros(&[32, 5]);
    let mut opt = Adam::new(1e-3);
    group.bench_function("dense", |b| {
        b.iter(|| black_box(dense.train_batch(&xs, &ys, Loss::Mse, &mut opt)));
    });

    let mut conv = Network::builder(144)
        .conv2d(1, 12, 12, 4, 3, 1)
        .activation(Activation::Relu)
        .flatten()
        .dense(5)
        .build();
    let fx = Tensor::zeros(&[32, 144]);
    let fy = Tensor::zeros(&[32, 5]);
    let mut fopt = Adam::new(1e-3);
    group.bench_function("conv", |b| {
        b.iter(|| black_box(conv.train_batch(&fx, &fy, Loss::Mse, &mut fopt)));
    });
    group.finish();
}

/// Ablation: DQN learning step with and without a target network, and with
/// a tiny vs a large replay buffer (the design choices DESIGN.md calls
/// out).
fn bench_dqn_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("dqn_ablation");
    group.sample_size(20);
    let configs = [
        ("replay+target", 10_000usize, 100usize),
        ("replay_no_target", 10_000, 0),
        ("no_replay", 64, 100),
    ];
    for (name, capacity, sync) in configs {
        group.bench_function(name, |b| {
            au_nn::set_init_seed(3);
            let mut agent = DqnAgent::new(
                8,
                4,
                DqnConfig {
                    hidden: vec![32, 16],
                    batch_size: 32,
                    replay_capacity: capacity,
                    target_sync_every: sync,
                    seed: 1,
                    ..DqnConfig::default()
                },
            );
            // Warm the buffer past the batch size.
            for i in 0..64 {
                agent.observe(Transition {
                    state: vec![i as f32 / 64.0; 8],
                    action: i % 4,
                    reward: 0.1,
                    next_state: vec![(i + 1) as f32 / 64.0; 8],
                    terminal: false,
                });
            }
            let mut i = 0u32;
            b.iter(|| {
                i += 1;
                black_box(agent.observe(Transition {
                    state: vec![(i % 100) as f32 / 100.0; 8],
                    action: (i % 4) as usize,
                    reward: 0.1,
                    next_state: vec![((i + 1) % 100) as f32 / 100.0; 8],
                    terminal: i.is_multiple_of(50),
                }))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_forward,
    bench_train_batch,
    bench_dqn_ablations
);
criterion_main!(benches);
