//! Measures the cost of the telemetry layer on the engine's hot paths.
//!
//! Three configurations matter:
//!
//! 1. feature off — the macros expand to nothing (compile-time zero; build
//!    with `--no-default-features` to measure, not representable here
//!    because feature unification compiles this harness with the feature);
//! 2. feature on, recorder disabled — the shipped default: each site pays
//!    one relaxed atomic load and branch. Budget: < 2% over (1) on
//!    `au_extract`, the hottest primitive;
//! 3. feature on, recorder enabled — full span/counter/histogram capture.
//!
//! This bench reports (2) vs (3) for `au_extract` and `au_nn`, plus a
//! fourth leg: (3) with the au-scope observability server running but
//! *unscraped* — the plane's accept loop parks in the kernel, so its
//! off-path cost over (3) must stay < 2%. A fifth leg, `profiler_attached`,
//! primes the plane's au-prof profiler with one `/profile.json` scrape and
//! then measures with nobody scraping: the profiler only folds spans at
//! request time, so its attached-but-idle cost over (3) must stay < 3%
//! (the budget quoted in docs/profiling.md). The disabled-path numbers
//! here stand in for (1) within measurement noise — see docs/telemetry.md
//! for the comparison method against a `--no-default-features` build.

use au_core::{Engine, Mode, ModelConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::io::{Read, Write};

/// One GET against the scope server: primes the plane's profiler so the
/// `profiler_attached` leg measures an attached (not merely constructed)
/// profiler.
fn prime_profiler(addr: std::net::SocketAddr) {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect scope");
    write!(stream, "GET /profile.json HTTP/1.1\r\nHost: bench\r\n\r\n").expect("send");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read");
    assert!(out.starts_with("HTTP/1.1 200"), "{out}");
}

fn trained_engine() -> Engine {
    let mut engine = Engine::new(Mode::Train);
    engine
        .au_config("BenchNN", ModelConfig::dnn(&[16, 8]))
        .expect("config");
    for i in 0..16u64 {
        let x = i as f64 / 16.0;
        engine.au_extract("SUMMARY", &[x, 1.0 - x, x * x, 0.5]);
        engine.au_extract("OUT", &[2.0 * x]);
        engine
            .au_nn("BenchNN", "SUMMARY", &["OUT"])
            .expect("train step");
    }
    engine.set_mode(Mode::Test);
    engine
}

fn bench_extract(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead/au_extract");
    let row = [0.25f64, 0.5, 0.75, 1.0];

    au_telemetry::disable();
    let mut engine = Engine::new(Mode::Train);
    group.bench_function("recorder_off", |b| {
        b.iter(|| engine.au_extract("X", black_box(&row)))
    });

    au_telemetry::enable();
    let mut engine = Engine::new(Mode::Train);
    group.bench_function("recorder_on", |b| {
        b.iter(|| engine.au_extract("X", black_box(&row)))
    });

    let scope = au_scope::ScopeServer::builder()
        .bind("127.0.0.1:0")
        .start()
        .expect("scope server");
    let mut engine = Engine::new(Mode::Train);
    group.bench_function("scope_unscraped", |b| {
        b.iter(|| engine.au_extract("X", black_box(&row)))
    });

    prime_profiler(scope.local_addr());
    let mut engine = Engine::new(Mode::Train);
    group.bench_function("profiler_attached", |b| {
        b.iter(|| engine.au_extract("X", black_box(&row)))
    });
    scope.shutdown();
    au_telemetry::disable();
    group.finish();
}

fn bench_au_nn(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead/au_nn");
    let row = [0.25f64, 0.5, 0.75, 1.0];

    au_telemetry::disable();
    let mut engine = trained_engine();
    group.bench_function("recorder_off", |b| {
        b.iter(|| {
            engine.au_extract("SUMMARY", black_box(&row));
            engine.au_nn("BenchNN", "SUMMARY", &["OUT"]).expect("serve")
        })
    });

    au_telemetry::enable();
    let mut engine = trained_engine();
    group.bench_function("recorder_on", |b| {
        b.iter(|| {
            engine.au_extract("SUMMARY", black_box(&row));
            engine.au_nn("BenchNN", "SUMMARY", &["OUT"]).expect("serve")
        })
    });

    let scope = au_scope::ScopeServer::builder()
        .bind("127.0.0.1:0")
        .start()
        .expect("scope server");
    let mut engine = trained_engine();
    group.bench_function("scope_unscraped", |b| {
        b.iter(|| {
            engine.au_extract("SUMMARY", black_box(&row));
            engine.au_nn("BenchNN", "SUMMARY", &["OUT"]).expect("serve")
        })
    });

    prime_profiler(scope.local_addr());
    let mut engine = trained_engine();
    group.bench_function("profiler_attached", |b| {
        b.iter(|| {
            engine.au_extract("SUMMARY", black_box(&row));
            engine.au_nn("BenchNN", "SUMMARY", &["OUT"]).expect("serve")
        })
    });
    scope.shutdown();
    au_telemetry::disable();
    group.finish();
}

/// The native-f32 serving path (`predict_f32_into`): its telemetry sites
/// (`predict_f32` span + time series) must stay as cheap as the f64
/// path's, and the pooled batch path rides the same recorder toggles.
fn bench_predict_f32(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead/predict_f32");
    let row32 = [0.25f32, 0.5, 0.75, 1.0];
    let mut out = Vec::with_capacity(8);

    au_telemetry::disable();
    let engine = trained_engine();
    let handle = engine.handle();
    group.bench_function("recorder_off", |b| {
        b.iter(|| {
            out.clear();
            handle
                .predict_f32_into("BenchNN", black_box(&row32), &mut out)
                .expect("serve");
            black_box(&out);
        })
    });

    au_telemetry::enable();
    let engine = trained_engine();
    let handle = engine.handle();
    group.bench_function("recorder_on", |b| {
        b.iter(|| {
            out.clear();
            handle
                .predict_f32_into("BenchNN", black_box(&row32), &mut out)
                .expect("serve");
            black_box(&out);
        })
    });
    au_telemetry::disable();
    group.finish();
}

criterion_group!(benches, bench_extract, bench_au_nn, bench_predict_f32);
criterion_main!(benches);
