//! Measures the cost of online monitoring on the TS-mode serving path.
//!
//! Two configurations per primitive:
//!
//! 1. monitoring off — no `MonitorConfig` installed: the hot path pays one
//!    map lookup that misses (`monitor_state.enabled()` is false);
//! 2. monitoring on — every served prediction flows through the drift
//!    detector (windowed per-feature stability score), the rolling quality
//!    window, and the flight-recorder ring buffer.
//!
//! The monitored path costs a *constant* ~0.2–0.3 µs per prediction (the
//! `observe` group measures it in isolation): the drift windows keep O(1)
//! running moments per feature, so no per-call rescan or allocation beyond
//! the flight record. Budget: < 3% over (1) on the serve loop for
//! paper-scale models (the forward pass dominates); on deliberately tiny
//! test networks the relative share is higher because the constant does
//! not shrink with the model. See docs/telemetry.md for recorded numbers.

#[cfg(feature = "monitor")]
mod bench {
    use au_core::monitor::MonitorConfig;
    use au_core::{Engine, Mode, ModelConfig};
    use criterion::{black_box, Criterion};

    const FEATURES: usize = 16;

    fn trained_engine(monitored: bool) -> Engine {
        au_nn::set_init_seed(7);
        let mut engine = Engine::new(Mode::Train);
        if monitored {
            // A constant serve input makes its window genuinely depart from
            // the training spread, so an effectively infinite threshold
            // keeps the loop from alerting; the score is still computed
            // every call, so the measured cost is the real one.
            engine.set_monitor_config(MonitorConfig::default().with_drift_threshold(1e9));
        }
        // Paper-scale network (the paper's SL models use hundreds of units
        // per layer): the forward pass is the cost the monitoring overhead
        // is measured against, exactly as in a deployed TS loop.
        engine
            .au_config("BenchNN", ModelConfig::dnn(&[256, 256]))
            .expect("config");
        for i in 0..16u64 {
            let x = i as f64 / 16.0;
            engine.au_extract("SUMMARY", &[x; FEATURES]);
            engine.au_extract("OUT", &[2.0 * x]);
            engine
                .au_nn("BenchNN", "SUMMARY", &["OUT"])
                .expect("train step");
        }
        engine.set_mode(Mode::Test);
        engine
    }

    pub fn bench_serve(c: &mut Criterion) {
        let mut group = c.benchmark_group("monitor_overhead/au_nn_serve");
        // An on-distribution row (x = 0.25 was a training input), so the
        // monitored run exercises the silent path a healthy deployment pays.
        let row = vec![0.25f64; FEATURES];

        let mut engine = trained_engine(false);
        group.bench_function("monitor_off", |b| {
            b.iter(|| {
                engine.au_extract("SUMMARY", black_box(&row));
                engine.au_nn("BenchNN", "SUMMARY", &["OUT"]).expect("serve")
            })
        });

        let mut engine = trained_engine(true);
        group.bench_function("monitor_on", |b| {
            b.iter(|| {
                engine.au_extract("SUMMARY", black_box(&row));
                engine.au_nn("BenchNN", "SUMMARY", &["OUT"]).expect("serve")
            })
        });
        group.finish();
    }

    pub fn bench_observe(c: &mut Criterion) {
        use au_core::monitor::{FeatureBaseline, ModelMonitor};

        let mut group = c.benchmark_group("monitor_overhead/observe");
        let rows: Vec<Vec<f64>> = (0..64)
            .map(|i| {
                let x = i as f64 / 64.0;
                vec![x, 1.0 - x, x * x, 0.5]
            })
            .collect();
        let baseline = FeatureBaseline::from_rows(&rows);
        let mut monitor = ModelMonitor::new(MonitorConfig::default().with_drift_threshold(1e9))
            .with_baseline(baseline, Some(0.05));
        let row = [0.25f64, 0.5, 0.75, 1.0];
        let pred = [0.5f64];
        let truth = [0.52f64];
        group.bench_function("full_window", |b| {
            b.iter(|| monitor.observe(black_box(&row), black_box(&pred), Some(&truth), 0))
        });
        group.finish();
    }
}

#[cfg(feature = "monitor")]
criterion::criterion_group!(benches, bench::bench_serve, bench::bench_observe);

#[cfg(feature = "monitor")]
criterion::criterion_main!(benches);

#[cfg(not(feature = "monitor"))]
fn main() {
    eprintln!("monitor_overhead requires the `monitor` feature (on by default)");
}
