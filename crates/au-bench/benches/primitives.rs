//! Criterion benches for the Autonomizer primitives — the execution-
//! overhead story behind Table 3's Exec. Time columns and the paper's
//! "overhead no more than 0.64X" claim.

use au_core::{Engine, Mode, ModelConfig};
use au_games::{Game, Mario};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_extract(c: &mut Criterion) {
    let mut group = c.benchmark_group("au_extract");
    for size in [1usize, 32, 1024] {
        let values = vec![0.5f64; size];
        group.bench_function(format!("{size}_values"), |b| {
            let mut engine = Engine::new(Mode::Train);
            b.iter(|| {
                engine.au_extract("X", black_box(&values));
            });
        });
    }
    group.finish();
}

fn bench_serialize(c: &mut Criterion) {
    c.bench_function("au_serialize/5_lists", |b| {
        let mut engine = Engine::new(Mode::Train);
        b.iter(|| {
            for name in ["PX", "PY", "MnX", "MnY", "Obj"] {
                engine.au_extract(name, &[1.0]);
            }
            black_box(engine.au_serialize(&["PX", "PY", "MnX", "MnY", "Obj"]));
        });
    });
}

fn bench_write_back(c: &mut Criterion) {
    c.bench_function("au_write_back/5_values", |b| {
        let mut engine = Engine::new(Mode::Train);
        engine.au_extract("out", &[1.0, 0.0, 0.0, 0.0, 0.0]);
        let mut dst = [0.0f64; 5];
        b.iter(|| {
            engine.au_write_back(black_box("out"), &mut dst).unwrap();
        });
    });
}

fn bench_nn_rl_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("au_nn_rl_step");
    group.sample_size(20);
    // Deployment-mode (TS) step: the per-frame overhead during production.
    group.bench_function("deploy_dense_10_features", |b| {
        au_nn::set_init_seed(1);
        let mut engine = Engine::new(Mode::Train);
        engine
            .au_config("Q", ModelConfig::q_dnn(&[64, 32]))
            .unwrap();
        engine.au_extract("S", &[0.0; 10]);
        engine.au_nn_rl("Q", "S", 0.0, false, "out", 5).unwrap();
        engine.set_mode(Mode::Test);
        let state = [0.25f64; 10];
        b.iter(|| {
            engine.au_extract("S", black_box(&state));
            black_box(engine.au_nn_rl("Q", "S", 0.0, false, "out", 5).unwrap());
        });
    });
    // Raw pixel step for contrast (the paper's 3.16X-23X overhead gap).
    group.bench_function("deploy_conv_12x12_frame", |b| {
        au_nn::set_init_seed(2);
        let mut engine = Engine::new(Mode::Train);
        engine
            .au_config("QRaw", ModelConfig::q_cnn(1, 12, 12, &[64, 32]))
            .unwrap();
        engine.au_extract("F", &[0.0; 144]);
        engine.au_nn_rl("QRaw", "F", 0.0, false, "out", 5).unwrap();
        engine.set_mode(Mode::Test);
        let frame = [0.25f64; 144];
        b.iter(|| {
            engine.au_extract("F", black_box(&frame));
            black_box(engine.au_nn_rl("QRaw", "F", 0.0, false, "out", 5).unwrap());
        });
    });
    group.finish();
}

fn bench_checkpoint_restore(c: &mut Criterion) {
    // Table 2's last two columns.
    let mut engine = Engine::new(Mode::Train);
    let mut game = Mario::new(1);
    for _ in 0..200 {
        for (name, value) in game.feature_names().iter().zip(game.features()) {
            engine.au_extract(name, &[value]);
        }
        let a = game.oracle_action();
        if game.step(a).terminal {
            game.reset();
        }
    }
    c.bench_function("au_checkpoint/mario", |b| {
        b.iter(|| black_box(engine.checkpoint_with(&game)));
    });
    let ckpt = engine.checkpoint_with(&game);
    c.bench_function("au_restore/mario", |b| {
        b.iter(|| black_box(engine.restore_with(&ckpt)));
    });
}

criterion_group!(
    benches,
    bench_extract,
    bench_serialize,
    bench_write_back,
    bench_nn_rl_step,
    bench_checkpoint_restore
);
criterion_main!(benches);
