//! Criterion benches for the feature-extraction algorithms (Section 4) —
//! the analysis cost behind Table 1.

use au_trace::{extract_rl, extract_sl, AnalysisDb, RlParams};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Builds a layered synthetic dependence graph: `layers` tiers of `width`
/// variables, each depending on two variables of the previous tier, with
/// the first tier marked as inputs and one target fed by the last tier.
fn layered_db(layers: usize, width: usize) -> AnalysisDb {
    let mut db = AnalysisDb::new();
    for layer in 1..layers {
        for i in 0..width {
            let dst = format!("v{layer}_{i}");
            let a = format!("v{}_{}", layer - 1, i);
            let b = format!("v{}_{}", layer - 1, (i + 1) % width);
            db.record_assign(&dst, &[&a, &b], Some((layer * i) as f64), "f");
        }
    }
    for i in 0..width {
        db.mark_input(&format!("v0_{i}"));
        let last = format!("v{}_{}", layers - 1, i);
        db.record_assign("result", &[&last, "param"], None, "f");
    }
    db.mark_target("param");
    db
}

/// Builds a flat RL-style graph with `vars` traced variables.
fn traced_db(vars: usize, trace_len: usize) -> AnalysisDb {
    let mut db = AnalysisDb::new();
    for i in 0..vars {
        let name = format!("s{i}");
        db.record_assign(&name, &[&name], None, "gameLoop");
        db.record_assign("score", &[&name, "action"], None, "gameLoop");
        for t in 0..trace_len {
            db.record_value(&name, ((t * (i + 1)) % 17) as f64);
        }
    }
    db.mark_target("action");
    db
}

fn bench_algorithm1(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1_sl");
    for (layers, width) in [(4usize, 8usize), (8, 16), (12, 32)] {
        let db = layered_db(layers, width);
        group.bench_function(format!("{layers}x{width}_vars"), |b| {
            b.iter(|| black_box(extract_sl(black_box(&db))));
        });
    }
    group.finish();
}

fn bench_algorithm2(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm2_rl");
    for (vars, trace) in [(10usize, 100usize), (50, 200), (100, 400)] {
        let db = traced_db(vars, trace);
        group.bench_function(format!("{vars}_vars_{trace}_trace"), |b| {
            b.iter(|| black_box(extract_rl(black_box(&db), RlParams::default())));
        });
    }
    group.finish();
}

fn bench_dependents(c: &mut Criterion) {
    let db = layered_db(10, 32);
    let v = db.id("v0_0").unwrap();
    c.bench_function("transitive_dependents/10x32", |b| {
        b.iter(|| black_box(db.dependents(black_box(v))));
    });
}

criterion_group!(
    benches,
    bench_algorithm1,
    bench_algorithm2,
    bench_dependents
);
criterion_main!(benches);
