//! AuLang execution-tier benches: tree-walking interpreter vs. bytecode
//! VM vs. selectively traced bytecode VM across the nine paper programs
//! (`au_lang::corpus`).
//!
//! The interpreter leg runs with tracing on — that is the status quo the
//! bytecode tier replaces (the paper's always-on Valgrind-style
//! instrumentation). The `vm` leg compiles tracing out entirely (the
//! serving tier), the `vm_traced` leg compiles in only the trace
//! opcodes the static dependence graph cannot prune (the TR tier), and
//! the `vm_opt` leg runs the abstract-interpretation optimizer (constant
//! folding, branch pruning, dead-store elimination, superinstruction
//! fusion) on top of the untraced tier.
//!
//! Run with `AU_BENCH_JSON=$PWD/BENCH_kernels.json cargo bench --bench
//! aulang_exec` from the repo root to splice an `"aulang_exec"` section
//! (median ns per program and engine, plus the headline speedup) into
//! that file — cargo runs bench binaries with the package directory as
//! cwd, so pass an absolute path.

use au_lang::{corpus, parse, CompiledProgram, Interpreter, Program, TraceMode, Vm};
use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use std::time::Instant;

/// One full interpreter run (tracing on, the status quo tier).
fn run_interp(p: &corpus::CorpusProgram, program: &Program) -> u64 {
    au_nn::set_init_seed(p.nn_seed);
    let mut interp = Interpreter::with_program(program.clone());
    interp.set_seed(7);
    if let Some(limit) = p.step_limit {
        interp.set_step_limit(limit);
    }
    let _ = black_box(interp.run());
    interp.stats().steps
}

/// One full VM run of an already-compiled program.
fn run_vm(p: &corpus::CorpusProgram, compiled: &CompiledProgram) -> u64 {
    au_nn::set_init_seed(p.nn_seed);
    let mut vm = Vm::from_compiled(compiled.clone());
    vm.set_seed(7);
    if let Some(limit) = p.step_limit {
        vm.set_step_limit(limit);
    }
    let _ = black_box(vm.run());
    vm.stats().steps
}

fn bench_corpus(c: &mut Criterion) {
    let mut group = c.benchmark_group("aulang_exec");
    // Whole-program runs are tens of milliseconds; a handful of samples
    // keeps the 27-leg sweep inside bench-smoke time.
    group.sample_size(5);
    for p in corpus::all() {
        let program = parse(p.src).expect("corpus parses");
        let vm_off = au_lang::compile_program(&program, TraceMode::Off);
        let vm_sel = au_lang::compile_program(&program, TraceMode::Selective);
        let vm_opt = au_lang::compile_program_opt(&program, TraceMode::Off);
        group.bench_function(format!("{}/interp", p.name), |b| {
            b.iter(|| run_interp(&p, &program))
        });
        group.bench_function(format!("{}/vm", p.name), |b| b.iter(|| run_vm(&p, &vm_off)));
        group.bench_function(format!("{}/vm_traced", p.name), |b| {
            b.iter(|| run_vm(&p, &vm_sel))
        });
        group.bench_function(format!("{}/vm_opt", p.name), |b| {
            b.iter(|| run_vm(&p, &vm_opt))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_corpus);

// ---------------------------------------------------------------------
// BENCH_kernels.json splice (AU_BENCH_JSON=<path>)
// ---------------------------------------------------------------------

/// Median seconds per run over `samples` timed runs (a corpus program is
/// far past the timer-resolution floor, so one run per sample is enough).
fn measure<F: FnMut()>(mut f: F, samples: usize) -> f64 {
    f(); // warmup
    let mut per: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    per.sort_by(|a, b| a.total_cmp(b));
    per[per.len() / 2]
}

/// Renders the `"aulang_exec"` object (without trailing newline), indented
/// for inclusion as a top-level key of `BENCH_kernels.json`.
fn render_section(samples: usize) -> String {
    use std::fmt::Write as _;
    let mut rows = String::new();
    let mut speedups = Vec::new();
    let mut opt_speedups = Vec::new();
    for p in corpus::all() {
        let program = parse(p.src).expect("corpus parses");
        let vm_off = au_lang::compile_program(&program, TraceMode::Off);
        let vm_sel = au_lang::compile_program(&program, TraceMode::Selective);
        let vm_optc = au_lang::compile_program_opt(&program, TraceMode::Off);
        let interp_s = measure(
            || {
                black_box(run_interp(&p, &program));
            },
            samples,
        );
        let vm_s = measure(
            || {
                black_box(run_vm(&p, &vm_off));
            },
            samples,
        );
        let traced_s = measure(
            || {
                black_box(run_vm(&p, &vm_sel));
            },
            samples,
        );
        let opt_s = measure(
            || {
                black_box(run_vm(&p, &vm_optc));
            },
            samples,
        );
        speedups.push(interp_s / vm_s);
        opt_speedups.push(vm_s / opt_s);
        writeln!(
            rows,
            "    \"{}\": {{ \"interp_ns\": {:.0}, \"vm_ns\": {:.0}, \"vm_traced_ns\": {:.0}, \"vm_opt_ns\": {:.0}, \"vm_speedup\": {:.2}, \"traced_speedup\": {:.2}, \"opt_speedup\": {:.2} }},",
            p.name,
            interp_s * 1e9,
            vm_s * 1e9,
            traced_s * 1e9,
            opt_s * 1e9,
            interp_s / vm_s,
            interp_s / traced_s,
            vm_s / opt_s,
        )
        .expect("format");
        eprintln!(
            "{:>10}: interp {:.1} ms, vm {:.1} ms ({:.2}x), vm_traced {:.1} ms ({:.2}x), vm_opt {:.1} ms ({:.2}x over vm)",
            p.name,
            interp_s * 1e3,
            vm_s * 1e3,
            interp_s / vm_s,
            traced_s * 1e3,
            interp_s / traced_s,
            opt_s * 1e3,
            vm_s / opt_s,
        );
    }
    let geomean = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    let opt_geomean =
        (opt_speedups.iter().map(|s| s.ln()).sum::<f64>() / opt_speedups.len() as f64).exp();
    format!(
        "\"aulang_exec\": {{\n{rows}    \"vm_speedup_geomean\": {geomean:.2},\n    \"vm_opt_speedup_geomean\": {opt_geomean:.2},\n    \"note\": \"Median seconds per full run of the nine paper programs; interp is the traced tree-walking interpreter (the status quo), vm the untraced bytecode tier, vm_traced the selectively traced tier, vm_opt the abstract-interpretation-optimized untraced tier (opt_speedup is vm/vm_opt). Single-core container.\"\n  }}"
    )
}

/// Splices the section into `path`: replaces an existing `"aulang_exec"`
/// object (found by brace matching) or inserts one before the final `}`.
fn write_json(path: &str) {
    let section = render_section(5);
    let text = std::fs::read_to_string(path).unwrap_or_else(|_| "{\n}\n".to_owned());
    let merged = if let Some(start) = text.find("\"aulang_exec\":") {
        let bytes = text.as_bytes();
        let open = start + text[start..].find('{').expect("section opens");
        let mut depth = 0usize;
        let mut end = open;
        for (i, &b) in bytes.iter().enumerate().skip(open) {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        format!("{}{}{}", &text[..start], section, &text[end..])
    } else {
        let close = text.rfind('}').expect("top-level object");
        let before = text[..close].trim_end();
        let sep = if before.ends_with(['{', ',']) {
            ""
        } else {
            ","
        };
        format!("{before}{sep}\n  {section}\n{}", &text[close..])
    };
    std::fs::write(path, merged).expect("write bench json");
    println!("spliced aulang_exec into {path}");
}

fn main() {
    au_telemetry::disable();
    benches();
    if let Ok(path) = std::env::var("AU_BENCH_JSON") {
        write_json(&path);
    }
}
