//! Worker-count scaling of the feature-extraction algorithms.
//!
//! Algorithm 1 (`extract_sl`) and Algorithm 2 (`extract_rl`) fan their
//! per-target loops out across au-par workers; this bench sweeps the worker
//! count over a synthetic trace database large enough for the extraction to
//! dominate. On a single-core container the sweep bounds the fan-out
//! overhead (results are identical at every count) rather than showing a
//! speedup — see docs/telemetry.md for the caveat.

use au_trace::{extract_rl_detailed, extract_sl, AnalysisDb, RlParams};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// A layered synthetic program: `input` feeds a chain of `vars` variables,
/// every variable carries a `trace_len`-step trace, and each target reads
/// from the chain through a shared sink so every chain variable becomes a
/// candidate for every target.
fn synth_db(vars: usize, targets: usize, trace_len: usize) -> AnalysisDb {
    let mut db = AnalysisDb::new();
    let target_names: Vec<String> = (0..targets).map(|j| format!("t{j}")).collect();
    for step in 0..trace_len {
        for i in 0..vars {
            let name = format!("v{i}");
            let dep = if i == 0 {
                "input".to_string()
            } else {
                format!("v{}", i - 1)
            };
            let value = (((step * 31 + i * 7) % 97) as f64) / 97.0;
            db.record_assign(&name, &[dep.as_str()], Some(value), "main");
        }
        // Every target and every chain variable feeds the sink, giving the
        // targets and candidates the common dependent both algorithms need.
        let mut deps: Vec<String> = (0..vars).map(|i| format!("v{i}")).collect();
        deps.extend(target_names.iter().cloned());
        let dep_refs: Vec<&str> = deps.iter().map(|s| s.as_str()).collect();
        db.record_assign("sink", &dep_refs, Some(step as f64), "main");
    }
    db.mark_input("input");
    for name in &target_names {
        db.mark_target(name);
    }
    db
}

fn bench_extract_sl(c: &mut Criterion) {
    let db = synth_db(48, 12, 100);
    let mut group = c.benchmark_group("extract_sl");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("48vars_12targets/{threads}"), |b| {
            au_par::set_thread_override(Some(threads));
            b.iter(|| black_box(extract_sl(black_box(&db))));
            au_par::set_thread_override(None);
        });
    }
    group.finish();
}

fn bench_extract_rl(c: &mut Criterion) {
    let db = synth_db(48, 12, 100);
    let mut group = c.benchmark_group("extract_rl");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("48vars_12targets/{threads}"), |b| {
            au_par::set_thread_override(Some(threads));
            b.iter(|| black_box(extract_rl_detailed(black_box(&db), RlParams::default())));
            au_par::set_thread_override(None);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_extract_sl, bench_extract_rl);
criterion_main!(benches);
