//! Compute-kernel benches: the blocked/batched kernels against faithful
//! copies of the pre-overhaul scalar kernels, plus a worker-count sweep.
//!
//! The `naive_*` routines here are byte-for-byte ports of the loops that
//! `Tensor::matmul` and `Conv2d::forward` shipped with before the kernel
//! overhaul — they are the baseline the speedup claims in
//! `BENCH_kernels.json` are measured against. Run with
//! `AU_BENCH_JSON=BENCH_kernels.json cargo bench --bench kernels` to
//! regenerate that file.
//!
//! Thread-sweep caveat: this container exposes a single core, so the
//! 1/2/4/8-worker rows bound the cost of oversubscribing the core (the
//! kernels are bit-identical either way); the headline speedups come from
//! cache blocking and im2col, not threads.

use au_nn::{Network, Tensor};
use criterion::{criterion_group, Criterion};
use std::hint::black_box;
use std::time::Instant;

/// Deterministic pseudo-random buffer (no RNG state, reproducible).
fn pseudo(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let h = (i as u64).wrapping_mul(2654435761).wrapping_add(seed);
            ((h % 2000) as f32) / 100.0 - 10.0
        })
        .collect()
}

/// The pre-overhaul `Tensor::matmul` inner loops: row-major triple loop
/// with the `a == 0.0` skip, no register or cache blocking.
fn naive_matmul(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for p in 0..k {
            let s = a[i * k + p];
            if s == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            let dst = &mut out[i * n..(i + 1) * n];
            for (d, &bv) in dst.iter_mut().zip(brow) {
                *d += s * bv;
            }
        }
    }
}

/// Conv bench shape: 8 input channels of 16×16, 16 output channels, 3×3
/// kernel, stride 1, batch 8 — big enough that the kernel dominates, small
/// enough that the naive nest finishes in bench time.
const CONV: (usize, usize, usize, usize, usize, usize, usize) = (8, 8, 16, 16, 16, 3, 1);

/// The pre-overhaul `Conv2d::forward` loop nest: seven nested loops, one
/// multiply-accumulate at the innermost level, no im2col.
#[allow(clippy::too_many_arguments)]
fn naive_conv_forward(
    input: &[f32],
    w: &[f32],
    bias: &[f32],
    batch: usize,
    in_c: usize,
    in_h: usize,
    in_w: usize,
    out_c: usize,
    k: usize,
    stride: usize,
) -> Vec<f32> {
    let out_h = (in_h - k) / stride + 1;
    let out_w = (in_w - k) / stride + 1;
    let in_len = in_c * in_h * in_w;
    let out_len = out_c * out_h * out_w;
    let mut out = vec![0.0f32; batch * out_len];
    for row in 0..batch {
        let x = &input[row * in_len..(row + 1) * in_len];
        let o = &mut out[row * out_len..(row + 1) * out_len];
        for oc in 0..out_c {
            for oy in 0..out_h {
                for ox in 0..out_w {
                    let mut acc = bias[oc];
                    for ic in 0..in_c {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = oy * stride + ky;
                                let ix = ox * stride + kx;
                                acc += x[ic * in_h * in_w + iy * in_w + ix]
                                    * w[oc * in_c * k * k + ic * k * k + ky * k + kx];
                            }
                        }
                    }
                    o[oc * out_h * out_w + oy * out_w + ox] = acc;
                }
            }
        }
    }
    out
}

fn conv_net() -> Network {
    let (_, in_c, in_h, in_w, out_c, k, stride) = CONV;
    au_nn::set_init_seed(4242);
    Network::builder(in_c * in_h * in_w)
        .conv2d(in_c, in_h, in_w, out_c, k, stride)
        .build()
}

fn bench_matmul_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for size in [64usize, 128, 256, 512] {
        let a = pseudo(size * size, 1);
        let b = pseudo(size * size, 2);
        group.bench_function(format!("naive/{size}"), |bch| {
            bch.iter(|| {
                let mut out = vec![0.0f32; size * size];
                naive_matmul(&mut out, black_box(&a), black_box(&b), size, size, size);
                out
            });
        });
        let ta = Tensor::from_vec(&[size, size], a.clone());
        let tb = Tensor::from_vec(&[size, size], b.clone());
        group.bench_function(format!("blocked/{size}"), |bch| {
            bch.iter(|| black_box(&ta).matmul(black_box(&tb)));
        });
    }
    group.finish();
}

fn bench_conv_forward(c: &mut Criterion) {
    let (batch, in_c, in_h, in_w, out_c, k, stride) = CONV;
    let mut group = c.benchmark_group("conv2d_forward");
    let input = pseudo(batch * in_c * in_h * in_w, 3);
    let w = pseudo(out_c * in_c * k * k, 4);
    let bias = pseudo(out_c, 5);
    group.bench_function("naive/8x8x16x16", |bch| {
        bch.iter(|| {
            naive_conv_forward(
                black_box(&input),
                &w,
                &bias,
                batch,
                in_c,
                in_h,
                in_w,
                out_c,
                k,
                stride,
            )
        });
    });
    let net = conv_net();
    let batch_t = Tensor::from_vec(&[batch, in_c * in_h * in_w], input.clone());
    group.bench_function("im2col/8x8x16x16", |bch| {
        bch.iter(|| net.infer(black_box(&batch_t)));
    });
    group.finish();
}

fn bench_thread_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("threads");
    let size = 256usize;
    let ta = Tensor::from_vec(&[size, size], pseudo(size * size, 6));
    let tb = Tensor::from_vec(&[size, size], pseudo(size * size, 7));
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("matmul_256/{threads}"), |bch| {
            au_par::set_thread_override(Some(threads));
            bch.iter(|| black_box(&ta).matmul(black_box(&tb)));
            au_par::set_thread_override(None);
        });
    }
    au_nn::set_init_seed(11);
    let net = Network::builder(128).dense(256).dense(64).build();
    let batch = Tensor::from_vec(&[512, 128], pseudo(512 * 128, 8));
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("dense_infer_512x128/{threads}"), |bch| {
            au_par::set_thread_override(Some(threads));
            bch.iter(|| net.infer(black_box(&batch)));
            au_par::set_thread_override(None);
        });
    }
    group.finish();
}

/// The small-region workload for the pool-vs-scoped comparison: ~1k cheap
/// elements, the regime where per-call thread spawning dominated.
fn small_region_work(i: usize) -> f64 {
    let x = i as f64 * 0.001;
    x.sin().mul_add(x, x.sqrt())
}

fn bench_pool_vs_scoped(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_vs_scoped_1k");
    for threads in [2usize, 4] {
        group.bench_function(format!("scoped/{threads}"), |bch| {
            au_par::set_thread_override(Some(threads));
            bch.iter(|| black_box(au_par::par_map(1024, 64, small_region_work)));
            au_par::set_thread_override(None);
        });
        group.bench_function(format!("pooled/{threads}"), |bch| {
            au_par::set_thread_override(Some(threads));
            bch.iter(|| black_box(au_par::pool_map(1024, 64, small_region_work)));
            au_par::set_thread_override(None);
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul_sweep,
    bench_conv_forward,
    bench_thread_sweep,
    bench_pool_vs_scoped
);

// ---------------------------------------------------------------------
// BENCH_kernels.json generation (AU_BENCH_JSON=<path>)
// ---------------------------------------------------------------------

/// Median seconds/iteration over `samples` timed samples, with the
/// iteration count auto-scaled so each sample runs at least ~20 ms.
fn measure<F: FnMut()>(mut f: F, samples: usize) -> f64 {
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        if t.elapsed().as_millis() >= 20 || iters >= 1 << 22 {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    let mut per: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    per.sort_by(|a, b| a.total_cmp(b));
    per[per.len() / 2]
}

fn write_json(path: &str) {
    use std::fmt::Write as _;
    let samples = 7;
    let mut matmul = String::new();
    for size in [64usize, 128, 256, 512] {
        let a = pseudo(size * size, 1);
        let b = pseudo(size * size, 2);
        let naive = measure(
            || {
                let mut out = vec![0.0f32; size * size];
                naive_matmul(&mut out, &a, &b, size, size, size);
                black_box(&out);
            },
            samples,
        );
        let ta = Tensor::from_vec(&[size, size], a.clone());
        let tb = Tensor::from_vec(&[size, size], b.clone());
        au_par::set_thread_override(Some(1));
        let blocked = measure(
            || {
                black_box(ta.matmul(&tb));
            },
            samples,
        );
        au_par::set_thread_override(None);
        if !matmul.is_empty() {
            matmul.push_str(",\n");
        }
        write!(
            matmul,
            "    \"{size}\": {{ \"naive_ns\": {:.0}, \"blocked_ns\": {:.0}, \"speedup\": {:.2} }}",
            naive * 1e9,
            blocked * 1e9,
            naive / blocked,
        )
        .expect("format");
    }

    let (batch, in_c, in_h, in_w, out_c, k, stride) = CONV;
    let input = pseudo(batch * in_c * in_h * in_w, 3);
    let w = pseudo(out_c * in_c * k * k, 4);
    let bias = pseudo(out_c, 5);
    let conv_naive = measure(
        || {
            black_box(naive_conv_forward(
                &input, &w, &bias, batch, in_c, in_h, in_w, out_c, k, stride,
            ));
        },
        samples,
    );
    let net = conv_net();
    let batch_t = Tensor::from_vec(&[batch, in_c * in_h * in_w], input.clone());
    au_par::set_thread_override(Some(1));
    let conv_im2col = measure(
        || {
            black_box(net.infer(&batch_t));
        },
        samples,
    );
    au_par::set_thread_override(None);

    let size = 256usize;
    let ta = Tensor::from_vec(&[size, size], pseudo(size * size, 6));
    let tb = Tensor::from_vec(&[size, size], pseudo(size * size, 7));
    let mut sweep = String::new();
    for threads in [1usize, 2, 4, 8] {
        au_par::set_thread_override(Some(threads));
        let t = measure(
            || {
                black_box(ta.matmul(&tb));
            },
            samples,
        );
        au_par::set_thread_override(None);
        if !sweep.is_empty() {
            sweep.push_str(", ");
        }
        write!(sweep, "\"{threads}\": {:.0}", t * 1e9).expect("format");
    }

    // Persistent pool vs per-call scoped spawning, same workload and the
    // same thread count — the small-region regime the pool exists for.
    let mut pool_vs_scoped = String::new();
    for threads in [2usize, 4] {
        au_par::set_thread_override(Some(threads));
        let scoped = measure(
            || {
                black_box(au_par::par_map(1024, 64, small_region_work));
            },
            samples,
        );
        let pooled = measure(
            || {
                black_box(au_par::pool_map(1024, 64, small_region_work));
            },
            samples,
        );
        au_par::set_thread_override(None);
        if !pool_vs_scoped.is_empty() {
            pool_vs_scoped.push_str(",\n");
        }
        write!(
            pool_vs_scoped,
            "    \"{threads}\": {{ \"scoped_ns\": {:.0}, \"pooled_ns\": {:.0}, \"speedup\": {:.2} }}",
            scoped * 1e9,
            pooled * 1e9,
            scoped / pooled,
        )
        .expect("format");
    }

    // Scalar serving on the reference 64→256→256→4 model: the f64
    // boundary path vs the native-f32 allocation-free path.
    let (serve_f64, serve_f32) = {
        use au_core::{Engine, Mode, ModelConfig};
        au_nn::set_init_seed(11);
        let mut e = Engine::new(Mode::Train);
        e.au_config("M", ModelConfig::dnn(&[256, 256])).unwrap();
        let xs: Vec<Vec<f64>> = (0..8)
            .map(|i| (0..64).map(|j| ((i + j) % 16) as f64 / 16.0).collect())
            .collect();
        let ys: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 8.0; 4]).collect();
        e.train_supervised("M", &xs, &ys, 1).unwrap();
        e.set_mode(Mode::Test);
        let h = e.handle();
        let x: Vec<f64> = (0..64).map(|j| (j % 64) as f64 / 64.0).collect();
        let x32: Vec<f32> = x.iter().map(|&v| v as f32).collect();
        let f64_ns = measure(
            || {
                black_box(h.predict("M", &x).unwrap());
            },
            samples,
        );
        let mut out = Vec::with_capacity(4);
        let f32_ns = measure(
            || {
                out.clear();
                h.predict_f32_into("M", &x32, &mut out).unwrap();
                black_box(&out);
            },
            samples,
        );
        (f64_ns, f32_ns)
    };

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let doc = format!(
        "{{\n\
         \x20 \"bench\": \"kernels\",\n\
         \x20 \"available_parallelism\": {cores},\n\
         \x20 \"matmul\": {{\n{matmul}\n  }},\n\
         \x20 \"conv2d_forward\": {{\n\
         \x20   \"shape\": \"batch{batch} {in_c}x{in_h}x{in_w} -> {out_c}c k{k} s{stride}\",\n\
         \x20   \"naive_ns\": {:.0},\n\
         \x20   \"im2col_ns\": {:.0},\n\
         \x20   \"speedup\": {:.2}\n\
         \x20 }},\n\
         \x20 \"thread_sweep_matmul_256_ns\": {{ {sweep} }},\n\
         \x20 \"pool_vs_scoped_1k\": {{\n{pool_vs_scoped}\n  }},\n\
         \x20 \"serving_dnn_64_256_256_4\": {{\n\
         \x20   \"predict_f64_ns\": {:.0},\n\
         \x20   \"predict_f32_ns\": {:.0},\n\
         \x20   \"speedup\": {:.2}\n\
         \x20 }},\n\
         \x20 \"note\": \"naive_* are the pre-overhaul kernels; speedups are single-thread (AU_PAR_THREADS=1). The thread sweep is measured on whatever cores the host exposes - on a single-core container extra workers only oversubscribe the core, so the sweep bounds the fan-out overhead rather than showing a speedup. pool_vs_scoped_1k compares per-call scoped spawning against the persistent worker pool on a ~1k-element region at the same thread count; serving_dnn_64_256_256_4 compares the f64 boundary path against native-f32 scalar serving.\"\n\
         }}\n",
        conv_naive * 1e9,
        conv_im2col * 1e9,
        conv_naive / conv_im2col,
        serve_f64 * 1e9,
        serve_f32 * 1e9,
        serve_f64 / serve_f32,
    );
    std::fs::write(path, doc).expect("write bench json");
    println!("wrote {path}");
}

fn main() {
    benches();
    if let Ok(path) = std::env::var("AU_BENCH_JSON") {
        write_json(&path);
    }
}
