//! Multi-threaded serving throughput for the layered runtime.
//!
//! The decomposed engine's claim: deployment-mode inference runs under a
//! per-model *read* lock, so threads serving the same frozen model scale
//! instead of serializing. Each benchmark serves the same total number of
//! predictions, split evenly across N worker threads over cloned
//! [`EngineHandle`]s — so `4_threads` beating `1_thread` on wall time is
//! genuine parallel speedup, not extra work.
//!
//! Numbers from this bench are recorded in `docs/telemetry.md`.

use au_core::{Engine, EngineHandle, Mode, ModelConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::thread;

/// Total predictions served per measured iteration, regardless of threads.
const TOTAL_PREDICTIONS: usize = 2_048;
const FEATURES: usize = 64;

/// Builds a deployment-mode engine with the issue's reference model: a
/// dense net with two 256-wide hidden layers.
fn deployed_dnn_256x256() -> Engine {
    au_nn::set_init_seed(11);
    let mut e = Engine::new(Mode::Train);
    e.au_config("M", ModelConfig::dnn(&[256, 256])).unwrap();
    // One cheap epoch builds the backend and fixes the 64→256→256→4 shape.
    let xs: Vec<Vec<f64>> = (0..8)
        .map(|i| {
            (0..FEATURES)
                .map(|j| ((i + j) % 16) as f64 / 16.0)
                .collect()
        })
        .collect();
    let ys: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 8.0; 4]).collect();
    e.train_supervised("M", &xs, &ys, 1).unwrap();
    e.set_mode(Mode::Test);
    e
}

/// Serves `TOTAL_PREDICTIONS` split across `threads` workers, one scalar
/// `predict` per request.
fn serve(handle: &EngineHandle, inputs: &[Vec<f64>], threads: usize) {
    let per_thread = TOTAL_PREDICTIONS / threads;
    thread::scope(|scope| {
        for t in 0..threads {
            let h = handle.clone();
            scope.spawn(move || {
                for i in 0..per_thread {
                    let x = &inputs[(t * per_thread + i) % inputs.len()];
                    black_box(h.predict("M", x).unwrap());
                }
            });
        }
    });
}

fn bench_serve_concurrent(c: &mut Criterion) {
    let engine = deployed_dnn_256x256();
    let handle = engine.handle();
    let inputs: Vec<Vec<f64>> = (0..256)
        .map(|i| {
            (0..FEATURES)
                .map(|j| ((i * 7 + j) % 64) as f64 / 64.0)
                .collect()
        })
        .collect();

    let mut group = c.benchmark_group("serve_concurrent/dnn_256x256");
    group.sample_size(20);
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("{threads}_threads"), |b| {
            b.iter(|| serve(&handle, &inputs, threads));
        });
    }
    group.finish();

    // The batched fast path for contrast: one lock and one forward pass
    // per 64 requests.
    let mut group = c.benchmark_group("serve_concurrent/dnn_256x256_batch64");
    group.sample_size(20);
    for threads in [1usize, 4] {
        group.bench_function(format!("{threads}_threads"), |b| {
            b.iter(|| {
                let per_thread = TOTAL_PREDICTIONS / threads / 64;
                thread::scope(|scope| {
                    for _ in 0..threads {
                        let h = handle.clone();
                        let batch = &inputs[..64];
                        scope.spawn(move || {
                            for _ in 0..per_thread {
                                black_box(h.predict_batch("M", batch).unwrap());
                            }
                        });
                    }
                });
            });
        });
    }
    group.finish();

    // Native f32 serving for contrast with the scalar f64 rows above: the
    // same requests pre-narrowed once, served through `predict_f32_into`
    // (no per-call f64→f32 conversion, no output allocation).
    let inputs32: Vec<Vec<f32>> = inputs
        .iter()
        .map(|x| x.iter().map(|&v| v as f32).collect())
        .collect();
    let mut group = c.benchmark_group("serve_concurrent/dnn_256x256_f32");
    group.sample_size(20);
    for threads in [1usize, 4] {
        group.bench_function(format!("{threads}_threads"), |b| {
            b.iter(|| {
                let per_thread = TOTAL_PREDICTIONS / threads;
                thread::scope(|scope| {
                    for t in 0..threads {
                        let h = handle.clone();
                        let inputs32 = &inputs32;
                        scope.spawn(move || {
                            let mut out = Vec::with_capacity(4);
                            for i in 0..per_thread {
                                let x = &inputs32[(t * per_thread + i) % inputs32.len()];
                                out.clear();
                                h.predict_f32_into("M", x, &mut out).unwrap();
                                black_box(&out);
                            }
                        });
                    }
                });
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serve_concurrent);
criterion_main!(benches);
