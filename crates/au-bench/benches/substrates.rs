//! Criterion benches for the reimplemented benchmark programs themselves —
//! the Exec. Time baseline column of Table 3.

use au_games::{Arkanoid, Breakout, Flappybird, Game, Mario, Torcs};
use au_image::scene::SceneGenerator;
use au_speech::{DecodeParams, Recognizer, Vocabulary};
use au_vision::canny::{self, CannyParams};
use au_vision::rothwell::{self, RothwellParams};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_vision(c: &mut Criterion) {
    let scene = SceneGenerator::new(1).generate(32, 32);
    c.bench_function("canny/32x32", |b| {
        b.iter(|| {
            black_box(canny::canny(
                black_box(&scene.image),
                CannyParams::default(),
            ))
        });
    });
    c.bench_function("rothwell/32x32", |b| {
        b.iter(|| {
            black_box(rothwell::rothwell(
                black_box(&scene.image),
                RothwellParams::default(),
            ))
        });
    });
    c.bench_function("canny_ideal_search/32x32", |b| {
        b.iter(|| black_box(canny::ideal_params(&scene.image, &scene.truth)));
    });
}

fn bench_phylo(c: &mut Criterion) {
    let data = au_phylo::generate_dataset(8, 150, 3);
    c.bench_function("phylip_infer/8taxa", |b| {
        b.iter(|| {
            black_box(au_phylo::infer_tree(
                black_box(&data.sequences),
                au_phylo::DistParams::default(),
            ))
        });
    });
}

fn bench_speech(c: &mut Criterion) {
    let recognizer = Recognizer::new(Vocabulary::new(4, 20));
    let utterance = au_speech::synthesize(recognizer.vocabulary(), 1, 5);
    c.bench_function("sphinx_recognize/dtw", |b| {
        b.iter(|| black_box(recognizer.recognize(black_box(&utterance), DecodeParams::default())));
    });
}

fn bench_game_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("game_step");
    macro_rules! game_bench {
        ($name:literal, $game:expr) => {
            group.bench_function($name, |b| {
                let mut game = $game;
                b.iter(|| {
                    let a = game.oracle_action();
                    if game.step(black_box(a)).terminal {
                        game.reset();
                    }
                });
            });
        };
    }
    game_bench!("flappybird", Flappybird::new(1));
    game_bench!("mario", Mario::new(1));
    game_bench!("arkanoid", Arkanoid::new(1));
    game_bench!("torcs", Torcs::new(1));
    game_bench!("breakout", Breakout::new(1));
    group.finish();
}

fn bench_render(c: &mut Criterion) {
    let game = Mario::new(1);
    c.bench_function("mario_render/12x12", |b| {
        b.iter(|| black_box(game.render(12, 12)));
    });
}

criterion_group!(
    benches,
    bench_vision,
    bench_phylo,
    bench_speech,
    bench_game_steps,
    bench_render
);
criterion_main!(benches);
