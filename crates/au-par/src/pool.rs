//! Persistent worker pool: parked threads that outlive any one region.
//!
//! The scoped helpers in the crate root spawn threads per region, which is
//! fine for big kernels but makes small regions (per-row inference, short
//! extraction loops) unprofitable. This module keeps a process-wide pool of
//! parked workers so a region's only cost is pushing closures onto a queue
//! and waking sleepers.
//!
//! Shape of the thing:
//!
//! - **Lazy init, lazy growth.** No thread exists until the first job is
//!   submitted. The pool grows one worker at a time, only when a job
//!   arrives and nobody is idle, up to [`max_threads`](crate::max_threads)
//!   (re-resolved per submission, so `AU_PAR_THREADS` / the programmatic
//!   override keep working). It never shrinks except through
//!   [`shutdown_pool`].
//! - **`'static` jobs.** Pool workers outlive any caller's stack frame, so
//!   jobs must own their data (`FnOnce() + Send + 'static`). Callers with
//!   borrowed closures keep using the scoped helpers in the crate root;
//!   the hot engine paths share their inputs via `Arc` and use
//!   [`pool_map_ranges`] / [`Fork`].
//! - **Order-preserving joins, panic propagation.** [`Fork::join`] returns
//!   results in submission order and re-raises the first panic (by
//!   submission order) *after* every job has settled — a panicking region
//!   never wedges or poisons the pool.
//! - **Nested-region suppression.** A `Fork` used from inside a pool (or
//!   scoped) worker runs its jobs inline on the submitting thread, so
//!   nesting degrades to serial execution instead of deadlocking a
//!   fixed-size pool.
//! - **Trace-context inheritance.** Jobs capture the forking thread's
//!   telemetry context when the `Fork` is created and install it on the
//!   worker, exactly like the scoped helpers — spans opened inside pooled
//!   workers parent under the span that forked them.
//!
//! All of this is safe Rust (`forbid(unsafe_code)` is inherited from the
//! crate root): the queue is a `Mutex<VecDeque>` + `Condvar`, results come
//! back over `std::sync::mpsc`, and panics travel as `Box<dyn Any>` via
//! `catch_unwind`/`resume_unwind`.

use crate::{capture_context, in_worker, in_worker_with, max_threads, ForkContext};
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread;

/// A unit of pool work: owns everything it touches.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolQueue {
    jobs: VecDeque<Job>,
    /// Live worker threads (spawned minus exited).
    workers: usize,
    /// Workers currently parked on the condvar.
    idle: usize,
    /// True while [`shutdown_pool`] is draining; new submissions run
    /// inline and workers exit once the queue is empty.
    shutdown: bool,
    handles: Vec<thread::JoinHandle<()>>,
}

struct PoolShared {
    q: Mutex<PoolQueue>,
    cv: Condvar,
}

static POOL: OnceLock<Arc<PoolShared>> = OnceLock::new();

fn pool() -> &'static Arc<PoolShared> {
    POOL.get_or_init(|| {
        Arc::new(PoolShared {
            q: Mutex::new(PoolQueue {
                jobs: VecDeque::new(),
                workers: 0,
                idle: 0,
                shutdown: false,
                handles: Vec::new(),
            }),
            cv: Condvar::new(),
        })
    })
}

/// Jobs run under `catch_unwind`, so a worker never panics while holding
/// the queue lock; recover from poisoning anyway rather than cascading.
fn lock(shared: &PoolShared) -> MutexGuard<'_, PoolQueue> {
    shared
        .q
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Warns once per process if the pool grows past the machine's available
/// parallelism — extra workers only oversubscribe cores, so a persistent
/// `AU_PAR_THREADS`/override above the core count deserves a visible note.
fn warn_if_oversubscribed(workers: usize) {
    #[cfg(feature = "telemetry")]
    {
        let avail = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if workers > avail {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                au_telemetry::event(
                    au_telemetry::Level::Warn,
                    "au_par",
                    &format!(
                        "worker pool grew to {workers} threads but this host reports \
                         {avail} available core(s); the extra workers can only \
                         oversubscribe (check AU_PAR_THREADS / set_thread_override)"
                    ),
                );
            });
        }
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = workers;
}

/// Pushes one job, growing the pool if every worker is busy and the cap
/// allows, then wakes a sleeper. During shutdown the job runs inline on
/// the submitting thread instead (progress is guaranteed either way).
fn submit_job(job: Job) {
    let shared = pool();
    let mut q = lock(shared);
    if q.shutdown {
        drop(q);
        job();
        return;
    }
    #[cfg(feature = "telemetry")]
    let job: Job = if au_telemetry::enabled() {
        let queued = std::time::Instant::now();
        Box::new(move || {
            pmetrics::queue_wait(queued.elapsed().as_nanos() as u64);
            job();
        })
    } else {
        job
    };
    q.jobs.push_back(job);
    if q.idle == 0 && q.workers < max_threads() {
        q.workers += 1;
        let workers = q.workers;
        let sh = Arc::clone(shared);
        let handle = thread::Builder::new()
            .name(format!("au-par-pool-{workers}"))
            .spawn(move || worker_loop(&sh))
            .expect("failed to spawn au-par pool worker");
        q.handles.push(handle);
        pmetrics::pool_size(workers);
        warn_if_oversubscribed(workers);
    }
    drop(q);
    shared.cv.notify_one();
}

/// Park-until-work loop. Exits (decrementing the live count) only when
/// shutdown is flagged *and* the queue has been drained.
fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut q = lock(shared);
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break Some(job);
                }
                if q.shutdown {
                    break None;
                }
                q.idle += 1;
                pmetrics::park();
                q = shared
                    .cv
                    .wait(q)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                q.idle -= 1;
                pmetrics::wake();
            }
        };
        match job {
            Some(job) => {
                pmetrics::job_run();
                // Jobs built by Fork already catch panics; this is the
                // belt-and-suspenders layer keeping the worker alive for
                // raw submissions.
                let _ = catch_unwind(AssertUnwindSafe(job));
            }
            None => {
                let mut q = lock(shared);
                q.workers -= 1;
                pmetrics::pool_size(q.workers);
                return;
            }
        }
    }
}

/// Drains the queue, parks out every worker, and joins them. The pool
/// stays usable afterwards: the next submission lazily respawns workers.
///
/// Call this from tests that assert on thread lifecycles or from hosts
/// that want a quiescent process before exiting; regular callers never
/// need it (parked workers cost nothing).
pub fn shutdown_pool() {
    let Some(shared) = POOL.get() else { return };
    let handles = {
        let mut q = lock(shared);
        q.shutdown = true;
        shared.cv.notify_all();
        std::mem::take(&mut q.handles)
    };
    for h in handles {
        let _ = h.join();
    }
    let mut q = lock(shared);
    debug_assert_eq!(q.workers, 0, "every pool worker joined");
    q.shutdown = false;
}

/// Number of live pool worker threads (0 before first use / after
/// [`shutdown_pool`]).
pub fn pool_worker_count() -> usize {
    POOL.get().map_or(0, |shared| lock(shared).workers)
}

/// An in-flight fan-out region on the persistent pool.
///
/// [`submit`](Fork::submit) hands owned closures to pool workers;
/// [`join`](Fork::join) blocks until all of them settle and returns their
/// results **in submission order**, re-raising the first panic (by
/// submission order) if any job panicked. Submissions made from inside an
/// au-par worker run inline on the submitting thread, so nested regions
/// degrade to serial execution instead of deadlocking the pool.
///
/// The forking thread's telemetry trace context is captured at
/// [`Fork::new`] and installed around every job, so spans opened inside
/// pooled workers parent under the span that forked them.
pub struct Fork<R> {
    tx: Sender<(usize, thread::Result<R>)>,
    rx: Receiver<(usize, thread::Result<R>)>,
    submitted: usize,
    inline: Vec<(usize, thread::Result<R>)>,
    ctx: ForkContext,
}

impl<R: Send + 'static> Fork<R> {
    /// Opens a region, capturing the caller's trace context.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        let (tx, rx) = channel();
        Fork {
            tx,
            rx,
            submitted: 0,
            inline: Vec::new(),
            ctx: capture_context(),
        }
    }

    /// The trace context captured when this region was opened. Callers
    /// that run a chunk on their own thread wrap it in
    /// `in_worker_with`-style execution via [`pool_map_ranges`]; exposed
    /// for symmetry and tests.
    pub(crate) fn context(&self) -> ForkContext {
        self.ctx
    }

    /// Submits one job. Runs inline (still catching panics, so join-order
    /// semantics are identical) when called from inside an au-par worker.
    pub fn submit(&mut self, f: impl FnOnce() -> R + Send + 'static) {
        let idx = self.submitted;
        self.submitted += 1;
        if in_worker() {
            let res = catch_unwind(AssertUnwindSafe(f));
            self.inline.push((idx, res));
            return;
        }
        let tx = self.tx.clone();
        let ctx = self.ctx;
        submit_job(Box::new(move || {
            let res = catch_unwind(AssertUnwindSafe(|| in_worker_with(ctx, f)));
            // The region may have unwound past its join; a dead receiver
            // is fine, the result is simply dropped.
            let _ = tx.send((idx, res));
        }));
    }

    /// Waits for every submitted job and returns the results in
    /// submission order.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic (by submission order) after **all** jobs
    /// have settled, so a panicking region never leaves stray work running
    /// and the pool stays usable.
    pub fn join(self) -> Vec<R> {
        let Fork {
            tx,
            rx,
            submitted,
            inline,
            ..
        } = self;
        drop(tx);
        let mut slots: Vec<Option<thread::Result<R>>> = (0..submitted).map(|_| None).collect();
        let pending = submitted - inline.len();
        for (idx, res) in inline {
            slots[idx] = Some(res);
        }
        for _ in 0..pending {
            let (idx, res) = rx
                .recv()
                .expect("au-par pool worker dropped a result without sending");
            slots[idx] = Some(res);
        }
        let mut out = Vec::with_capacity(submitted);
        let mut first_panic = None;
        for slot in slots {
            match slot.expect("every submitted job settles") {
                Ok(v) => out.push(v),
                Err(p) => {
                    if first_panic.is_none() {
                        first_panic = Some(p);
                    }
                }
            }
        }
        if let Some(p) = first_panic {
            resume_unwind(p);
        }
        out
    }
}

/// [`crate::par_map_ranges`] on the persistent pool: runs `f` once per
/// range of `split_ranges(len, min_chunk)` and returns the per-range
/// results in range order. The calling thread takes the first range
/// instead of idling; the rest go to parked pool workers.
///
/// Requires an owning closure (`Send + Sync + 'static`) — share big
/// read-only inputs via `Arc` and move clones in. Results are identical
/// to the scoped helper (and to a serial map) at every thread count.
pub fn pool_map_ranges<T, F>(len: usize, min_chunk: usize, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(Range<usize>) -> T + Send + Sync + 'static,
{
    let ranges = crate::split_ranges(len, min_chunk);
    if ranges.len() <= 1 {
        crate::note_inline_region();
        return ranges.into_iter().map(f).collect();
    }
    let stats = Arc::new(crate::RegionStats::new(ranges.len()));
    let f = Arc::new(f);
    let mut fork: Fork<T> = Fork::new();
    let mut iter = ranges.into_iter();
    let first = iter.next().expect("at least two ranges");
    for r in iter {
        let f = Arc::clone(&f);
        let stats = Arc::clone(&stats);
        fork.submit(move || stats.measure(|| f(r)));
    }
    let ctx = fork.context();
    let head = in_worker_with(ctx, || stats.measure(|| f(first)));
    let join_from = stats.join_point();
    let tail = fork.join();
    stats.finish(join_from);
    let mut out = Vec::with_capacity(tail.len() + 1);
    out.push(head);
    out.extend(tail);
    out
}

/// [`crate::par_map`] on the persistent pool: order-preserving parallel
/// map returning `[f(0), …, f(len-1)]`. Same `'static` requirement as
/// [`pool_map_ranges`].
pub fn pool_map<T, F>(len: usize, min_chunk: usize, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let parts = pool_map_ranges(len, min_chunk, move |r: Range<usize>| {
        r.map(|i| f(i)).collect::<Vec<T>>()
    });
    let mut out = Vec::with_capacity(len);
    for part in parts {
        out.extend(part);
    }
    out
}

/// Pool-specific observability: park/wake totals, jobs executed, queue
/// wait, and the live pool size, alongside the crate's region series.
#[cfg(feature = "telemetry")]
mod pmetrics {
    use std::sync::OnceLock;

    pub(crate) fn park() {
        if !au_telemetry::enabled() {
            return;
        }
        static C: OnceLock<au_telemetry::Counter> = OnceLock::new();
        C.get_or_init(|| au_telemetry::counter("au_par.pool_park_total"))
            .add(1);
    }

    pub(crate) fn wake() {
        if !au_telemetry::enabled() {
            return;
        }
        static C: OnceLock<au_telemetry::Counter> = OnceLock::new();
        C.get_or_init(|| au_telemetry::counter("au_par.pool_wake_total"))
            .add(1);
    }

    pub(crate) fn job_run() {
        if !au_telemetry::enabled() {
            return;
        }
        static C: OnceLock<au_telemetry::Counter> = OnceLock::new();
        C.get_or_init(|| au_telemetry::counter("au_par.pool_jobs_total"))
            .add(1);
    }

    pub(crate) fn queue_wait(ns: u64) {
        static H: OnceLock<au_telemetry::Histogram> = OnceLock::new();
        H.get_or_init(|| au_telemetry::histogram("au_par.pool_queue_wait"))
            .record(ns);
    }

    pub(crate) fn pool_size(workers: usize) {
        if !au_telemetry::enabled() {
            return;
        }
        static G: OnceLock<au_telemetry::Gauge> = OnceLock::new();
        G.get_or_init(|| au_telemetry::gauge("au_par.pool_size"))
            .set(workers as f64);
    }
}

#[cfg(not(feature = "telemetry"))]
mod pmetrics {
    // queue_wait has no feature-off twin: its only call site is the
    // telemetry-gated job wrapper in `submit_job`.
    pub(crate) fn park() {}
    pub(crate) fn wake() {}
    pub(crate) fn job_run() {}
    pub(crate) fn pool_size(_workers: usize) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_thread_override;
    use crate::tests::OVERRIDE_LOCK;

    #[test]
    fn pool_map_matches_serial_at_every_thread_count() {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        let want: Vec<usize> = (0..100).map(|i| i * 3 + 1).collect();
        for threads in [1usize, 2, 4, 8] {
            set_thread_override(Some(threads));
            let got = pool_map(100, 1, |i| i * 3 + 1);
            assert_eq!(got, want, "threads={threads}");
        }
        set_thread_override(None);
    }

    #[test]
    fn pool_map_ranges_preserves_range_order() {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        set_thread_override(Some(4));
        let got = pool_map_ranges(40, 1, |r| (r.start, r.end));
        let mut next = 0;
        for (s, e) in got {
            assert_eq!(s, next, "ranges come back in order");
            assert!(e > s);
            next = e;
        }
        assert_eq!(next, 40);
        set_thread_override(None);
    }

    #[test]
    fn lazy_init_grows_and_parks_workers() {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        set_thread_override(Some(4));
        let _ = pool_map(64, 1, |i| i);
        let live = pool_worker_count();
        assert!(live >= 1, "at least one worker spawned, got {live}");
        assert!(live <= 4, "never more than the cap, got {live}");
        set_thread_override(None);
    }

    #[test]
    fn panic_in_one_job_propagates_and_pool_stays_usable() {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        set_thread_override(Some(4));
        let err = std::panic::catch_unwind(|| {
            pool_map(16, 1, |i| {
                if i == 7 {
                    panic!("job seven exploded");
                }
                i
            })
        });
        let payload = err.expect_err("the panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("job seven exploded"), "got {msg:?}");
        // The pool must still produce correct results afterwards.
        let got = pool_map(32, 1, |i| i + 1);
        let want: Vec<usize> = (1..=32).collect();
        assert_eq!(got, want, "pool usable after a panicking region");
        set_thread_override(None);
    }

    #[test]
    fn first_panic_by_submission_order_wins() {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        set_thread_override(Some(4));
        let mut fork: Fork<()> = Fork::new();
        for i in 0..6usize {
            fork.submit(move || {
                if i >= 2 {
                    panic!("panic-{i}");
                }
            });
        }
        let payload =
            std::panic::catch_unwind(AssertUnwindSafe(|| fork.join())).expect_err("join re-raises");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(msg, "panic-2", "earliest submitted panic is the one raised");
        set_thread_override(None);
    }

    #[test]
    fn shutdown_joins_all_workers_and_pool_restarts() {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        set_thread_override(Some(4));
        let _ = pool_map(64, 1, |i| i * 2);
        assert!(pool_worker_count() >= 1, "workers live before shutdown");
        shutdown_pool();
        assert_eq!(pool_worker_count(), 0, "shutdown joined every worker");
        // The next region lazily respawns workers and still works.
        let got = pool_map(64, 1, |i| i * 2);
        let want: Vec<usize> = (0..64).map(|i| i * 2).collect();
        assert_eq!(got, want);
        set_thread_override(None);
    }

    #[test]
    fn nested_fork_runs_inline_without_deadlock() {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        set_thread_override(Some(2));
        let outer = pool_map(4, 1, |i| {
            assert!(crate::in_worker());
            // Nested region: must complete inline even though every pool
            // worker is already busy with the outer region.
            let inner = pool_map(10, 1, move |j| i * 10 + j);
            inner.into_iter().sum::<usize>()
        });
        let want: Vec<usize> = (0..4).map(|i| (0..10).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(outer, want);
        set_thread_override(None);
    }

    #[test]
    fn fork_collects_results_in_submission_order() {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        set_thread_override(Some(4));
        let mut fork: Fork<usize> = Fork::new();
        for i in 0..16usize {
            fork.submit(move || {
                // Stagger completion so out-of-order finishes are likely.
                std::thread::sleep(std::time::Duration::from_micros(((16 - i) as u64) * 50));
                i * i
            });
        }
        let got = fork.join();
        let want: Vec<usize> = (0..16).map(|i| i * i).collect();
        assert_eq!(got, want);
        set_thread_override(None);
    }

    /// Spans opened inside pooled workers must parent under the forking
    /// span — same contract as the scoped helpers.
    #[cfg(feature = "telemetry")]
    #[test]
    fn pooled_worker_spans_parent_under_the_forking_span() {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        set_thread_override(Some(4));
        let rec = au_telemetry::global();
        au_telemetry::enable();
        let before = rec.span_count();
        let (root_trace, root_span) = {
            let root = rec.span("pool_root").expect("enabled");
            let ids = (root.trace_id().0, root.span_id().0);
            let _results = pool_map(8, 1, |i| {
                let _s = rec.span("pool_worker");
                i
            });
            ids
        };
        au_telemetry::disable();
        let workers: Vec<_> = rec
            .spans_since(before)
            .into_iter()
            .filter(|s| s.name == "pool_worker")
            .collect();
        assert_eq!(workers.len(), 8);
        for w in &workers {
            assert_eq!(w.trace_id, root_trace, "worker joined the trace");
            assert_eq!(w.parent_id, root_span, "worker parents under root");
        }
        set_thread_override(None);
    }
}
