//! Zero-dependency parallel runtime: a persistent worker pool plus scoped
//! fork/join helpers.
//!
//! The workspace builds offline from `vendor/`, so this crate provides the
//! small slice of rayon the Autonomizer runtime actually needs — a
//! parallel-for and an order-preserving map over chunked index ranges —
//! using nothing but `std` threads.
//!
//! Two execution backends share one range-splitting policy:
//!
//! - the **persistent pool** ([`pool_map_ranges`], [`pool_map`], [`Fork`])
//!   keeps parked workers alive across regions, so small regions pay a
//!   queue push + condvar wake instead of a thread spawn. Jobs must own
//!   their data (`'static`); the hot engine paths share inputs via `Arc`.
//! - the **scoped helpers** ([`par_map_ranges`], [`par_map`],
//!   [`par_ranges`], [`par_row_chunks_mut`]) spawn per region via
//!   `std::thread::scope` and accept borrowing closures — still the right
//!   tool for big borrowed slices (e.g. the blocked GEMM's row partition,
//!   which is gated on a work threshold that amortizes the spawns).
//!
//! Design rules, in priority order:
//!
//! 1. **Determinism.** Work is split into *contiguous* index ranges and
//!    results are always recombined in range order, so every helper returns
//!    bit-identical results regardless of thread count. Callers that cannot
//!    guarantee that on their own (e.g. floating-point reductions across
//!    chunk boundaries) must document their tolerance.
//! 2. **Zero overhead when serial.** With one thread (or one range, or when
//!    already inside an au-par worker) everything runs inline on the calling
//!    thread — no spawn, no allocation beyond the range list.
//! 3. **No nesting.** A worker thread that calls back into au-par runs the
//!    nested region inline. Parallelism is spent at the outermost level
//!    (e.g. an engine-level batch split) and inner kernels degrade to their
//!    serial form instead of oversubscribing.
//!
//! Thread count resolution: programmatic [`set_thread_override`] >
//! `AU_PAR_THREADS` environment variable (read per call, so benchmark
//! sweeps can vary it) > [`std::thread::available_parallelism`].
//!
//! With the `telemetry` feature on, every parallel region captures the
//! caller's `au_telemetry` trace context before spawning and installs it in
//! each worker, so spans opened inside a fork/join region parent under the
//! span that forked them — a fanned-out request exports as one causal tree
//! instead of per-thread orphans. The feature is off by default, keeping
//! the crate zero-dependency for standalone use.
//!
//! **Unsafe audit (none needed).** Work distribution hands each scoped
//! worker an owned `Vec` slot rather than a raw pointer into shared output
//! (the rayon trick this crate replaces); recombination moves results back
//! in range order after `std::thread::scope` joins. There is nothing to
//! write a SAFETY comment about, and the crate pins that property with
//! `forbid(unsafe_code)` so a future "optimization" cannot quietly
//! reintroduce shared-mutation raciness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

mod pool;

pub use pool::{pool_map, pool_map_ranges, pool_worker_count, shutdown_pool, Fork};

/// Upper bound on the resolved thread count; a safety valve against
/// misconfigured overrides, far above any machine this targets.
const MAX_THREADS: usize = 256;

/// `0` means "no override"; any other value wins over the environment.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True while executing inside an au-par worker; used to run nested
    /// parallel regions inline instead of spawning threads under threads.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// The caller's telemetry trace context, captured before fanning work out
/// so spans opened inside workers parent under the span that forked them.
/// With the `telemetry` feature off this is a zero-sized no-op.
#[cfg(feature = "telemetry")]
type ForkContext = au_telemetry::TraceContext;
#[cfg(not(feature = "telemetry"))]
#[derive(Clone, Copy)]
struct NoContext;
#[cfg(not(feature = "telemetry"))]
type ForkContext = NoContext;

#[cfg(feature = "telemetry")]
fn capture_context() -> ForkContext {
    au_telemetry::current_context()
}
#[cfg(not(feature = "telemetry"))]
fn capture_context() -> ForkContext {
    NoContext
}

/// Fork/join observability series (all on the global recorder, handles
/// cached per process): how many regions ran, how wide, how long each
/// worker was busy, how long the forking thread waited at the join, and
/// how lopsided the per-region work split was.
#[cfg(feature = "telemetry")]
mod metrics {
    use std::sync::OnceLock;

    pub(crate) fn region(ranges: usize, threads: usize) {
        static REGIONS: OnceLock<au_telemetry::Counter> = OnceLock::new();
        static RANGES: OnceLock<au_telemetry::Counter> = OnceLock::new();
        static THREADS: OnceLock<au_telemetry::Gauge> = OnceLock::new();
        REGIONS
            .get_or_init(|| au_telemetry::counter("au_par.regions"))
            .add(1);
        RANGES
            .get_or_init(|| au_telemetry::counter("au_par.ranges"))
            .add(ranges as u64);
        THREADS
            .get_or_init(|| au_telemetry::gauge("au_par.threads"))
            .set(threads as f64);
    }

    pub(crate) fn worker_busy(ns: u64) {
        static H: OnceLock<au_telemetry::Histogram> = OnceLock::new();
        H.get_or_init(|| au_telemetry::histogram("au_par.worker_busy"))
            .record(ns);
    }

    pub(crate) fn join_wait(ns: u64) {
        static H: OnceLock<au_telemetry::Histogram> = OnceLock::new();
        H.get_or_init(|| au_telemetry::histogram("au_par.join_wait"))
            .record(ns);
    }

    pub(crate) fn imbalance(ns: u64) {
        static H: OnceLock<au_telemetry::Histogram> = OnceLock::new();
        H.get_or_init(|| au_telemetry::histogram("au_par.region_imbalance"))
            .record(ns);
    }

    pub(crate) fn region_inline() {
        static C: OnceLock<au_telemetry::Counter> = OnceLock::new();
        C.get_or_init(|| au_telemetry::counter("au_par.region_inline_total"))
            .add(1);
    }
}

/// Counts a region that ran inline (one range / one thread / nested) so
/// the pool's profitability threshold is observable: a high
/// `au_par.region_inline_total` relative to `au_par.regions` means most
/// call sites fall under the `min_chunk` split or run nested.
fn note_inline_region() {
    #[cfg(feature = "telemetry")]
    if au_telemetry::enabled() {
        metrics::region_inline();
    }
}

/// Per-region accounting shared by every worker of one parallel region:
/// times each chunk, folds a min/max busy envelope, and reports the
/// region's join wait and imbalance when it finishes. With the
/// `telemetry` feature off (or the recorder disabled) everything here is
/// a no-op and no clock is read.
#[cfg(feature = "telemetry")]
struct RegionStats {
    enabled: bool,
    min_busy: std::sync::atomic::AtomicU64,
    max_busy: std::sync::atomic::AtomicU64,
}

#[cfg(feature = "telemetry")]
impl RegionStats {
    fn new(ranges: usize) -> Self {
        let enabled = au_telemetry::enabled();
        if enabled {
            metrics::region(ranges, max_threads());
        }
        RegionStats {
            enabled,
            min_busy: std::sync::atomic::AtomicU64::new(u64::MAX),
            max_busy: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Runs one worker's chunk, recording its busy time.
    fn measure<R>(&self, f: impl FnOnce() -> R) -> R {
        if !self.enabled {
            return f();
        }
        let start = std::time::Instant::now();
        let out = f();
        let ns = start.elapsed().as_nanos() as u64;
        metrics::worker_busy(ns);
        self.min_busy.fetch_min(ns, Ordering::Relaxed);
        self.max_busy.fetch_max(ns, Ordering::Relaxed);
        out
    }

    /// Marks the moment the forking thread starts waiting on its workers.
    fn join_point(&self) -> Option<std::time::Instant> {
        self.enabled.then(std::time::Instant::now)
    }

    /// Records the join wait and the busy-time spread (max − min) of the
    /// finished region.
    fn finish(&self, join_from: Option<std::time::Instant>) {
        if !self.enabled {
            return;
        }
        if let Some(t) = join_from {
            metrics::join_wait(t.elapsed().as_nanos() as u64);
        }
        let min = self.min_busy.load(Ordering::Relaxed);
        let max = self.max_busy.load(Ordering::Relaxed);
        if min != u64::MAX {
            metrics::imbalance(max.saturating_sub(min));
        }
    }
}

#[cfg(not(feature = "telemetry"))]
struct RegionStats;

#[cfg(not(feature = "telemetry"))]
impl RegionStats {
    fn new(_ranges: usize) -> Self {
        RegionStats
    }
    fn measure<R>(&self, f: impl FnOnce() -> R) -> R {
        f()
    }
    fn join_point(&self) -> Option<std::time::Instant> {
        None
    }
    fn finish(&self, _join_from: Option<std::time::Instant>) {}
}

/// Runs `f` on a worker thread with the forked context installed (and the
/// in-worker marker set), restoring both on the way out.
fn in_worker_with<R>(ctx: ForkContext, f: impl FnOnce() -> R) -> R {
    #[cfg(feature = "telemetry")]
    let _ctx = au_telemetry::set_context(ctx);
    #[cfg(not(feature = "telemetry"))]
    let NoContext = ctx;
    IN_WORKER.with(|w| {
        w.set(true);
        let out = f();
        w.set(false);
        out
    })
}

/// Sets (or with `None` clears) a process-wide thread-count override that
/// takes precedence over `AU_PAR_THREADS`. `Some(0)` is treated as `None`.
///
/// Intended for benchmarks and tests that sweep thread counts without
/// mutating the process environment.
pub fn set_thread_override(threads: Option<usize>) {
    OVERRIDE.store(threads.unwrap_or(0).min(MAX_THREADS), Ordering::SeqCst);
}

/// Resolves the maximum number of worker threads a parallel region may use:
/// override > `AU_PAR_THREADS` > available parallelism, clamped to
/// `1..=256`. Always at least 1.
pub fn max_threads() -> usize {
    let forced = OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced.min(MAX_THREADS);
    }
    if let Ok(v) = std::env::var("AU_PAR_THREADS") {
        match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => return n.min(MAX_THREADS),
            _ => warn_invalid_threads(&v),
        }
    }
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_THREADS)
}

/// Surfaces a rejected `AU_PAR_THREADS` value instead of falling back
/// silently: one leveled telemetry warning per process naming the value
/// (echoed to stderr by the recorder's verbosity filter even when span
/// capture is off). Without the `telemetry` feature the fallback stays
/// silent — there is nowhere to report to.
fn warn_invalid_threads(value: &str) {
    #[cfg(feature = "telemetry")]
    {
        static WARNED: std::sync::Once = std::sync::Once::new();
        WARNED.call_once(|| {
            au_telemetry::event(
                au_telemetry::Level::Warn,
                "au_par",
                &format!(
                    "ignoring invalid AU_PAR_THREADS={value:?} (want an integer >= 1); \
                     falling back to available parallelism"
                ),
            );
        });
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = value;
}

/// True while the calling thread is an au-par worker. Nested parallel
/// regions run inline; exposed so callers can skip parallel setup work
/// (e.g. building per-thread replicas) when it would be wasted.
pub fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Splits `0..len` into at most [`max_threads`] contiguous ranges of at
/// least `min_chunk` items each (a single range when `len < 2 * min_chunk`).
/// Returns an empty vector for `len == 0`.
///
/// Ranges are as even as possible and cover `0..len` exactly, in order.
pub fn split_ranges(len: usize, min_chunk: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let min_chunk = min_chunk.max(1);
    let cap = if in_worker() { 1 } else { max_threads() };
    let pieces = cap.min(len / min_chunk).max(1);
    let base = len / pieces;
    let rem = len % pieces;
    let mut ranges = Vec::with_capacity(pieces);
    let mut start = 0;
    for i in 0..pieces {
        let extra = usize::from(i < rem);
        let end = start + base + extra;
        ranges.push(start..end);
        start = end;
    }
    debug_assert_eq!(start, len);
    ranges
}

/// Runs `f` once per range of `split_ranges(len, min_chunk)`, in parallel
/// when more than one range results. `f` must only touch state it can
/// safely share; use [`par_map`] or [`par_row_chunks_mut`] when each range
/// produces a value or owns a slice.
pub fn par_ranges<F>(len: usize, min_chunk: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let ranges = split_ranges(len, min_chunk);
    if ranges.len() <= 1 {
        note_inline_region();
        for r in ranges {
            f(r);
        }
        return;
    }
    let ctx = capture_context();
    let stats = RegionStats::new(ranges.len());
    let join_from = Cell::new(None);
    thread::scope(|scope| {
        let mut iter = ranges.into_iter();
        let first = iter.next().expect("at least two ranges");
        for r in iter {
            let f = &f;
            let stats = &stats;
            scope.spawn(move || in_worker_with(ctx, || stats.measure(|| f(r))));
        }
        // The calling thread takes the first range instead of idling.
        in_worker_with(ctx, || stats.measure(|| f(first)));
        // Everything past this point is the implicit scope join.
        join_from.set(stats.join_point());
    });
    stats.finish(join_from.get());
}

/// Order-preserving parallel map: returns `[f(0), f(1), …, f(len-1)]`.
///
/// Indices are processed in contiguous chunks of at least `min_chunk`; the
/// output order is identical to a serial map regardless of thread count.
pub fn par_map<T, F>(len: usize, min_chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let parts = par_map_ranges(len, min_chunk, |r| r.map(&f).collect::<Vec<T>>());
    let mut out = Vec::with_capacity(len);
    for part in parts {
        out.extend(part);
    }
    out
}

/// Runs `f` once per chunk range and returns the per-range results in
/// range order. The building block under [`par_map`] and
/// [`par_map_reduce`]; useful directly when a whole-chunk result is
/// cheaper than per-index values (e.g. partial gradient sums).
pub fn par_map_ranges<T, F>(len: usize, min_chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges = split_ranges(len, min_chunk);
    if ranges.len() <= 1 {
        note_inline_region();
        return ranges.into_iter().map(f).collect();
    }
    let ctx = capture_context();
    let stats = RegionStats::new(ranges.len());
    thread::scope(|scope| {
        let mut iter = ranges.into_iter();
        let first = iter.next().expect("at least two ranges");
        let handles: Vec<_> = iter
            .map(|r| {
                let f = &f;
                let stats = &stats;
                scope.spawn(move || in_worker_with(ctx, || stats.measure(|| f(r))))
            })
            .collect();
        let head = in_worker_with(ctx, || stats.measure(|| f(first)));
        let join_from = stats.join_point();
        let mut results = Vec::with_capacity(handles.len() + 1);
        results.push(head);
        for h in handles {
            results.push(h.join().expect("au-par worker panicked"));
        }
        stats.finish(join_from);
        results
    })
}

/// Parallel map-reduce: maps each index chunk with `map` and folds the
/// per-chunk results left-to-right in range order with `reduce`, starting
/// from `identity`. The fold order is fixed, so the result is deterministic
/// for a given thread count; it matches the serial result exactly whenever
/// `reduce` is associative over the chunk boundaries actually used.
pub fn par_map_reduce<T, M, R>(len: usize, min_chunk: usize, identity: T, map: M, reduce: R) -> T
where
    T: Send,
    M: Fn(Range<usize>) -> T + Sync,
    R: Fn(T, T) -> T,
{
    par_map_ranges(len, min_chunk, map)
        .into_iter()
        .fold(identity, reduce)
}

/// Parallel-for over the rows of a dense row-major buffer: splits
/// `data` (of `data.len() / row_len` rows) into contiguous row ranges and
/// hands each worker `(first_row, rows_slice)` for its disjoint slice.
///
/// # Panics
///
/// Panics if `row_len == 0` or `data.len()` is not a multiple of `row_len`.
pub fn par_row_chunks_mut<T, F>(data: &mut [T], row_len: usize, min_rows: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(row_len > 0, "row_len must be positive");
    assert_eq!(
        data.len() % row_len,
        0,
        "data is not a whole number of rows"
    );
    let rows = data.len() / row_len;
    let ranges = split_ranges(rows, min_rows);
    if ranges.len() <= 1 {
        note_inline_region();
        for r in ranges {
            f(r.start, &mut data[r.start * row_len..r.end * row_len]);
        }
        return;
    }
    let ctx = capture_context();
    let stats = RegionStats::new(ranges.len());
    let join_from = Cell::new(None);
    thread::scope(|scope| {
        let mut rest = data;
        let mut consumed = 0usize;
        for r in ranges {
            let (chunk, tail) = rest.split_at_mut((r.end - r.start) * row_len);
            rest = tail;
            debug_assert_eq!(consumed, r.start * row_len);
            consumed += chunk.len();
            let f = &f;
            let stats = &stats;
            let first_row = r.start;
            scope.spawn(move || in_worker_with(ctx, || stats.measure(|| f(first_row, chunk))));
        }
        // The forking thread idles for the whole region here.
        join_from.set(stats.join_point());
    });
    stats.finish(join_from.get());
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that mutate the process-wide override (shared
    /// with the pool module's tests).
    pub(crate) static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn split_covers_exactly_in_order() {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        set_thread_override(Some(4));
        for len in [0usize, 1, 3, 4, 5, 17, 100] {
            for min_chunk in [1usize, 2, 8, 64] {
                let ranges = split_ranges(len, min_chunk);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "gap in ranges for len={len}");
                    assert!(r.end > r.start, "empty range for len={len}");
                    next = r.end;
                }
                assert_eq!(next, len, "ranges do not cover len={len}");
                if ranges.len() > 1 {
                    assert!(
                        ranges.iter().all(|r| r.end - r.start >= min_chunk),
                        "undersized chunk for len={len} min_chunk={min_chunk}"
                    );
                }
            }
        }
        set_thread_override(None);
    }

    #[test]
    fn override_beats_environment() {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        set_thread_override(Some(3));
        assert_eq!(max_threads(), 3);
        set_thread_override(Some(0));
        assert!(max_threads() >= 1);
        set_thread_override(None);
    }

    #[test]
    fn par_map_is_order_preserving() {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        for threads in [1usize, 2, 7] {
            set_thread_override(Some(threads));
            let got = par_map(100, 1, |i| i * i);
            let want: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
        set_thread_override(None);
    }

    #[test]
    fn map_reduce_matches_serial_sum() {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        for threads in [1usize, 3, 8] {
            set_thread_override(Some(threads));
            let total = par_map_reduce(1000, 16, 0u64, |r| r.map(|i| i as u64).sum(), |a, b| a + b);
            assert_eq!(total, 1000 * 999 / 2, "threads={threads}");
        }
        set_thread_override(None);
    }

    #[test]
    fn row_chunks_cover_all_rows_disjointly() {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        set_thread_override(Some(4));
        let mut data = vec![0u32; 7 * 3];
        par_row_chunks_mut(&mut data, 3, 1, |first_row, chunk| {
            for (i, row) in chunk.chunks_exact_mut(3).enumerate() {
                for v in row.iter_mut() {
                    *v += (first_row + i) as u32 + 1;
                }
            }
        });
        let want: Vec<u32> = (0..7).flat_map(|r| [r + 1; 3]).collect();
        assert_eq!(data, want);
        set_thread_override(None);
    }

    #[test]
    fn nested_regions_run_inline() {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        set_thread_override(Some(4));
        let outer = par_map(4, 1, |i| {
            assert!(in_worker());
            // A nested region must not spawn: it sees a single range.
            assert_eq!(split_ranges(100, 1).len(), 1);
            par_map(10, 1, move |j| i * 10 + j)
        });
        let flat: Vec<usize> = outer.into_iter().flatten().collect();
        let want: Vec<usize> = (0..40).collect();
        assert_eq!(flat, want);
        set_thread_override(None);
    }

    /// Spans opened inside workers must parent under the caller's span —
    /// the propagation contract au-core's batch/extraction fan-outs rely on.
    #[cfg(feature = "telemetry")]
    #[test]
    fn worker_spans_parent_under_the_forking_span() {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        set_thread_override(Some(4));
        let rec = au_telemetry::global();
        au_telemetry::enable();
        let (root_trace, root_span) = {
            let root = rec.span("fork_root").expect("enabled");
            let ids = (root.trace_id().0, root.span_id().0);
            let _results = par_map(8, 1, |i| {
                let _s = rec.span("fork_worker");
                i
            });
            ids
        };
        au_telemetry::disable();
        let workers: Vec<_> = rec
            .spans()
            .into_iter()
            .filter(|s| s.name == "fork_worker")
            .collect();
        assert_eq!(workers.len(), 8);
        for w in &workers {
            assert_eq!(w.trace_id, root_trace, "worker joined the trace");
            assert_eq!(w.parent_id, root_span, "worker parents under root");
        }
        set_thread_override(None);
    }

    /// A nested region runs inline on its worker (the suppression path),
    /// so spans it opens must stay on the worker's thread, inside the
    /// caller's trace, parented under the worker's own span — not under a
    /// second-generation fork context.
    #[cfg(feature = "telemetry")]
    #[test]
    fn nested_spawn_spans_inherit_the_outer_trace() {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        set_thread_override(Some(4));
        let rec = au_telemetry::global();
        au_telemetry::enable();
        let before = rec.span_count();
        let (root_trace, root_span) = {
            let root = rec.span("nested_root").expect("enabled");
            let ids = (root.trace_id().0, root.span_id().0);
            let _ = par_map(4, 1, |i| {
                let outer = rec.span("nested_outer").expect("enabled");
                let _ = (outer.trace_id(), i);
                let inner: Vec<usize> = par_map(3, 1, |j| {
                    let _s = rec.span("nested_inner");
                    j
                });
                inner.into_iter().sum::<usize>()
            });
            ids
        };
        au_telemetry::disable();
        let spans = rec.spans_since(before);
        let outers: Vec<_> = spans.iter().filter(|s| s.name == "nested_outer").collect();
        let inners: Vec<_> = spans.iter().filter(|s| s.name == "nested_inner").collect();
        assert_eq!(outers.len(), 4);
        assert_eq!(inners.len(), 12);
        for o in &outers {
            assert_eq!(o.trace_id, root_trace, "worker span joins the trace");
            assert_eq!(o.parent_id, root_span, "worker span parents under root");
        }
        for i in &inners {
            assert_eq!(i.trace_id, root_trace, "inner span stays in the trace");
            let parent = outers
                .iter()
                .find(|o| o.span_id == i.parent_id)
                .expect("inner span parents under one of the worker spans");
            assert_eq!(i.tid, parent.tid, "nested region ran inline, same thread");
        }
        set_thread_override(None);
    }

    /// A junk `AU_PAR_THREADS` must fall back *and* say so — once.
    #[cfg(feature = "telemetry")]
    #[test]
    fn invalid_au_par_threads_warns_once_and_falls_back() {
        let _g = OVERRIDE_LOCK.lock().unwrap();
        set_thread_override(None);
        let rec = au_telemetry::global();
        au_telemetry::enable();
        let before = rec.event_count();
        std::env::set_var("AU_PAR_THREADS", "banana");
        assert!(max_threads() >= 1, "falls back to available parallelism");
        let _ = max_threads(); // the warning must not repeat
        std::env::remove_var("AU_PAR_THREADS");
        au_telemetry::disable();
        let warnings: Vec<_> = rec
            .events_since(before)
            .into_iter()
            .filter(|e| {
                e.level == au_telemetry::Level::Warn
                    && e.target == "au_par"
                    && e.message.contains("AU_PAR_THREADS=\"banana\"")
            })
            .collect();
        assert_eq!(warnings.len(), 1, "exactly one warning naming the value");
    }

    #[test]
    fn empty_input_is_a_no_op() {
        assert!(par_map(0, 1, |i| i).is_empty());
        assert!(split_ranges(0, 4).is_empty());
        par_ranges(0, 1, |_| panic!("must not run"));
    }
}
