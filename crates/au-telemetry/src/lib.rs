//! Structured tracing, metrics, and profiling hooks for the Autonomizer
//! runtime.
//!
//! The crate provides three instrument families behind one [`Recorder`]:
//!
//! - **Spans** — scoped timings with key/value arguments, recorded on drop
//!   ([`span!`], [`Recorder::span_with`]). Every span carries a causal
//!   identity: a [`TraceId`] naming the request tree it belongs to, its own
//!   [`SpanId`], and the `SpanId` of its parent (0 for roots). Within a
//!   thread parents are tracked automatically; across threads the caller
//!   captures [`current_context`] and the worker installs it with
//!   [`set_context`] (au-par does this for every fork/join worker), so an
//!   exported trace shows one causal tree per request instead of a flat
//!   span list. Nesting depth is still tracked per thread so exports
//!   reconstruct the call tree.
//! - **Metrics** — saturating monotonic counters, last-write-wins gauges,
//!   and fixed log₂-bucket latency histograms ([`count!`], [`time!`]).
//! - **Events** — leveled log records ([`Recorder::event`]) that echo to
//!   stderr according to a verbosity threshold and are captured in the
//!   recorder when it is enabled.
//!
//! Exporters: a human-readable [`Recorder::summary`], a JSONL event log
//! ([`Recorder::write_jsonl`]), and Chrome `trace_event` JSON
//! ([`Recorder::write_chrome_trace`]) loadable in Perfetto / `chrome://tracing`.
//!
//! The global recorder starts **disabled**; every macro first checks one
//! relaxed atomic load ([`enabled`]) so the off path costs a test-and-branch
//! and never allocates. Instrumented callsites cache their counter/histogram
//! handles in a `OnceLock`, so the on path is lock-free after first touch.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Number of log₂ histogram buckets; bucket `i ≥ 1` covers `[2^(i-1), 2^i)`
/// nanoseconds and bucket 0 holds exact zeros.
pub const BUCKETS: usize = 64;

/// Retained span/event records are capped so a runaway loop cannot exhaust
/// memory; drops beyond the cap are counted and reported in the summary.
pub const MAX_RECORDS: usize = 262_144;

// ---------------------------------------------------------------------
// Levels
// ---------------------------------------------------------------------

/// Event severity, ordered from most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
    Trace = 4,
}

impl Level {
    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            3 => Level::Debug,
            _ => Level::Trace,
        }
    }

    /// Lower-case name used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

// ---------------------------------------------------------------------
// Metric cells
// ---------------------------------------------------------------------

/// A saturating monotonic counter handle; cheap to clone and lock-free to
/// update. Saturates at `u64::MAX` instead of wrapping so long-running
/// processes never report a small value after overflow.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `n`, saturating at `u64::MAX`.
    pub fn add(&self, n: u64) {
        let mut cur = self.cell.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(n);
            match self
                .cell
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` gauge handle (bits stored in an atomic u64).
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Replaces the gauge value.
    pub fn set(&self, v: f64) {
        self.cell.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }
}

struct HistCell {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl HistCell {
    fn new() -> Self {
        HistCell {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// Maps a nanosecond value to its log₂ bucket: 0 stays in bucket 0, any
/// other `v` lands in bucket `floor(log2(v)) + 1`, clamped to [`BUCKETS`]` - 1`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive upper bound of a bucket, used when estimating percentiles.
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A latency-histogram handle; records nanosecond durations lock-free.
#[derive(Clone)]
pub struct Histogram {
    cell: Arc<HistCell>,
}

impl Histogram {
    /// Records one duration, in nanoseconds.
    pub fn record(&self, nanos: u64) {
        self.cell.record(nanos);
    }

    /// Starts a timer that records into this histogram when dropped.
    pub fn start_timer(&self) -> Timer {
        Timer {
            hist: self.clone(),
            start: Instant::now(),
        }
    }

    /// Consistent-enough snapshot of the current contents.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.cell.count.load(Ordering::Relaxed),
            sum: self.cell.sum.load(Ordering::Relaxed),
            min: self.cell.min.load(Ordering::Relaxed),
            max: self.cell.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.cell.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time view of a histogram.
#[derive(Clone)]
pub struct HistogramSnapshot {
    pub count: u64,
    /// Sum of all recorded nanoseconds.
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub buckets: [u64; BUCKETS],
}

impl HistogramSnapshot {
    /// Mean recorded value, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper-bound estimate of the `p`-th percentile (`p` in `[0, 100]`),
    /// resolved to bucket granularity.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }
}

/// Drop guard recording elapsed wall time into a histogram.
pub struct Timer {
    hist: Histogram,
    start: Instant,
}

impl Drop for Timer {
    fn drop(&mut self) {
        self.hist.record(self.start.elapsed().as_nanos() as u64);
    }
}

// ---------------------------------------------------------------------
// Spans & events
// ---------------------------------------------------------------------

static NEXT_TID: AtomicU64 = AtomicU64::new(1);
/// Process-wide span/trace id wells. Ids start at 1 so 0 can mean "none".
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static SPAN_DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
    static THREAD_ID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    /// The calling thread's current `(trace_id, span_id)`; `(0, 0)` when no
    /// span is open and no cross-thread context has been installed.
    static CONTEXT: std::cell::Cell<(u64, u64)> = const { std::cell::Cell::new((0, 0)) };
}

fn thread_id() -> u64 {
    THREAD_ID.with(|t| *t)
}

/// Identity of one causal tree of spans (usually: one request). Allocated
/// when a root span opens and inherited by every descendant, including
/// spans opened on other threads under [`set_context`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Identity of a single span within a trace; unique process-wide.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// A capturable position in a trace: the ids a child span opened *now*
/// would inherit. `Copy + Send`, so it crosses thread boundaries freely.
///
/// The zero value ([`TraceContext::NONE`]) means "no active span": spans
/// opened under it become roots of fresh traces.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace the current span belongs to; 0 when no span is open.
    pub trace_id: u64,
    /// The currently open span; 0 when no span is open.
    pub span_id: u64,
}

impl TraceContext {
    /// The empty context: no trace, no parent.
    pub const NONE: TraceContext = TraceContext {
        trace_id: 0,
        span_id: 0,
    };
}

/// The calling thread's current trace position — capture this before
/// handing work to another thread, then [`set_context`] it over there.
pub fn current_context() -> TraceContext {
    let (trace_id, span_id) = CONTEXT.with(std::cell::Cell::get);
    TraceContext { trace_id, span_id }
}

/// Installs a captured [`TraceContext`] as the calling thread's parent
/// context; the returned guard restores the previous context on drop.
/// Spans opened while the guard lives are parented under `ctx.span_id`
/// and belong to `ctx.trace_id` — this is how fork/join workers attach
/// their spans to the caller's causal tree.
#[must_use = "dropping the guard immediately uninstalls the context"]
pub fn set_context(ctx: TraceContext) -> ContextGuard {
    let prev = CONTEXT.with(|c| {
        let prev = c.get();
        c.set((ctx.trace_id, ctx.span_id));
        prev
    });
    ContextGuard { prev }
}

/// Restores the thread's previous trace context on drop; see [`set_context`].
pub struct ContextGuard {
    prev: (u64, u64),
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CONTEXT.with(|c| c.set(self.prev));
    }
}

/// One completed span, as stored by the recorder.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    pub name: String,
    pub args: Vec<(String, String)>,
    /// Start offset from the recorder epoch, in nanoseconds.
    pub start_ns: u64,
    pub dur_ns: u64,
    pub tid: u64,
    /// Nesting depth at entry (0 = top level).
    pub depth: u32,
    /// Causal tree this span belongs to (one per root request).
    pub trace_id: u64,
    /// This span's process-wide unique id.
    pub span_id: u64,
    /// `span_id` of the parent span; 0 for trace roots.
    pub parent_id: u64,
}

/// One captured log event.
#[derive(Clone, Debug)]
pub struct EventRecord {
    pub level: Level,
    /// Offset from the recorder epoch, in nanoseconds.
    pub ts_ns: u64,
    pub target: String,
    pub message: String,
    /// Whether this event is a monitoring alert ([`Recorder::alert`]);
    /// alerts export as `"kind":"alert"` and are counted separately.
    pub alert: bool,
}

/// Live span; records itself into the recorder when dropped.
pub struct SpanGuard<'a> {
    rec: &'a Recorder,
    name: &'static str,
    args: Vec<(String, String)>,
    start_ns: u64,
    start: Instant,
    depth: u32,
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    /// The thread context to restore when this span closes.
    prev_context: (u64, u64),
}

impl SpanGuard<'_> {
    /// The causal tree this span belongs to.
    pub fn trace_id(&self) -> TraceId {
        TraceId(self.trace_id)
    }

    /// This span's process-wide unique id.
    pub fn span_id(&self) -> SpanId {
        SpanId(self.span_id)
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        SPAN_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        CONTEXT.with(|c| c.set(self.prev_context));
        self.rec.finish_span(SpanRecord {
            name: self.name.to_string(),
            args: std::mem::take(&mut self.args),
            start_ns: self.start_ns,
            dur_ns: self.start.elapsed().as_nanos() as u64,
            tid: thread_id(),
            depth: self.depth,
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent_id: self.parent_id,
        });
    }
}

// ---------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// The telemetry sink: metric registry plus span/event buffers.
///
/// Use [`global`] (plus the free-function wrappers and macros) for normal
/// instrumentation; construct instances directly in tests.
pub struct Recorder {
    enabled: AtomicBool,
    verbosity: AtomicU8,
    epoch: Instant,
    registry: Mutex<Registry>,
    spans: Mutex<Vec<SpanRecord>>,
    events: Mutex<Vec<EventRecord>>,
    dropped: AtomicU64,
    alerts: AtomicU64,
    /// Bumped by every [`Recorder::reset`] so incremental readers (the
    /// scope server's SSE poller) can detect that their saved offsets
    /// belong to a previous epoch and must restart from zero.
    reset_epoch: AtomicU64,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// Creates a disabled recorder with default (`Info`) verbosity.
    pub fn new() -> Self {
        Recorder {
            enabled: AtomicBool::new(false),
            verbosity: AtomicU8::new(Level::Info as u8),
            epoch: Instant::now(),
            registry: Mutex::new(Registry::default()),
            spans: Mutex::new(Vec::new()),
            events: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            alerts: AtomicU64::new(0),
            reset_epoch: AtomicU64::new(0),
        }
    }

    /// Starts recording.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Stops recording; existing data is kept.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether the recorder currently accepts data.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Sets the stderr echo threshold for [`Recorder::event`].
    pub fn set_verbosity(&self, level: Level) {
        self.verbosity.store(level as u8, Ordering::Relaxed);
    }

    /// Current stderr echo threshold.
    pub fn verbosity(&self) -> Level {
        Level::from_u8(self.verbosity.load(Ordering::Relaxed))
    }

    /// Zeroes every metric and clears span/event buffers. Existing handles
    /// stay valid (cells are zeroed in place, not replaced).
    ///
    /// The reset is *epoch-consistent*: counters, gauges, histograms,
    /// spans, events, the drop count, and the alert count all clear in one
    /// call, and [`Recorder::reset_epoch`] is bumped last so a scraper that
    /// snapshots the epoch before and after a read can tell whether the
    /// data it saw mixes epochs.
    pub fn reset(&self) {
        let reg = self.registry.lock().unwrap();
        for c in reg.counters.values() {
            c.cell.store(0, Ordering::Relaxed);
        }
        for g in reg.gauges.values() {
            g.cell.store(0f64.to_bits(), Ordering::Relaxed);
        }
        for h in reg.histograms.values() {
            h.cell.reset();
        }
        drop(reg);
        self.spans.lock().unwrap().clear();
        self.events.lock().unwrap().clear();
        self.dropped.store(0, Ordering::Relaxed);
        self.alerts.store(0, Ordering::Relaxed);
        self.reset_epoch.fetch_add(1, Ordering::Release);
    }

    /// Number of times [`Recorder::reset`] has run. Incremental readers
    /// compare epochs across reads and restart their offsets when the
    /// value changed, so a scrape never silently mixes data from two
    /// epochs.
    pub fn reset_epoch(&self) -> u64 {
        self.reset_epoch.load(Ordering::Acquire)
    }

    fn nanos_since_epoch(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Returns (registering if needed) the counter handle for `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut reg = self.registry.lock().unwrap();
        reg.counters
            .entry(name.to_string())
            .or_insert_with(|| Counter {
                cell: Arc::new(AtomicU64::new(0)),
            })
            .clone()
    }

    /// Current value of a counter; 0 when never touched.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.registry
            .lock()
            .unwrap()
            .counters
            .get(name)
            .map_or(0, Counter::get)
    }

    /// Returns (registering if needed) the gauge handle for `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut reg = self.registry.lock().unwrap();
        reg.gauges
            .entry(name.to_string())
            .or_insert_with(|| Gauge {
                cell: Arc::new(AtomicU64::new(0f64.to_bits())),
            })
            .clone()
    }

    /// Returns (registering if needed) the histogram handle for `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut reg = self.registry.lock().unwrap();
        reg.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram {
                cell: Arc::new(HistCell::new()),
            })
            .clone()
    }

    /// Snapshot of a histogram; `None` when never touched.
    pub fn histogram_snapshot(&self, name: &str) -> Option<HistogramSnapshot> {
        self.registry
            .lock()
            .unwrap()
            .histograms
            .get(name)
            .map(Histogram::snapshot)
    }

    /// Opens a span when enabled; the guard records it on drop.
    pub fn span(&self, name: &'static str) -> Option<SpanGuard<'_>> {
        self.span_with(name, &[])
    }

    /// Opens a span with key/value arguments when enabled.
    pub fn span_with(&self, name: &'static str, args: &[(&str, String)]) -> Option<SpanGuard<'_>> {
        if !self.is_enabled() {
            return None;
        }
        let depth = SPAN_DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        // Causal identity: inherit the thread's current (trace, span) as
        // (trace, parent); a span opened with no active context roots a
        // fresh trace. The new span becomes the thread's context until it
        // drops (or until a nested set_context overrides it).
        let (cur_trace, parent_id) = CONTEXT.with(std::cell::Cell::get);
        let trace_id = if cur_trace == 0 {
            NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
        } else {
            cur_trace
        };
        let span_id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let prev_context = CONTEXT.with(|c| {
            let prev = c.get();
            c.set((trace_id, span_id));
            prev
        });
        Some(SpanGuard {
            rec: self,
            name,
            args: args
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            start_ns: self.nanos_since_epoch(),
            start: Instant::now(),
            depth,
            trace_id,
            span_id,
            parent_id,
            prev_context,
        })
    }

    fn finish_span(&self, record: SpanRecord) {
        let mut spans = self.spans.lock().unwrap();
        if spans.len() < MAX_RECORDS {
            spans.push(record);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a log event. The event echoes to stderr whenever `level` is
    /// at or above the verbosity threshold (even with recording disabled),
    /// and is captured in the buffer when the recorder is enabled.
    pub fn event(&self, level: Level, target: &str, message: &str) {
        self.record_event(level, target, message, false);
    }

    /// Records a monitoring **alert**: a leveled event flagged for operator
    /// attention. Alerts always echo to stderr (an operator must see a
    /// degraded model regardless of verbosity), are counted separately
    /// ([`Recorder::alert_count`]), and export as `"kind":"alert"` in JSONL.
    pub fn alert(&self, level: Level, target: &str, message: &str) {
        self.alerts.fetch_add(1, Ordering::Relaxed);
        self.record_event(level, target, message, true);
    }

    fn record_event(&self, level: Level, target: &str, message: &str, alert: bool) {
        if alert {
            eprintln!("[ALERT {}] {}: {}", level.as_str(), target, message);
        } else if level <= self.verbosity() {
            eprintln!("[{}] {}: {}", level.as_str(), target, message);
        }
        if self.is_enabled() {
            let mut events = self.events.lock().unwrap();
            if events.len() < MAX_RECORDS {
                let ts_ns = self.nanos_since_epoch();
                events.push(EventRecord {
                    level,
                    ts_ns,
                    target: target.to_string(),
                    message: message.to_string(),
                    alert,
                });
            } else {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Alerts raised so far (counted even when recording is disabled).
    pub fn alert_count(&self) -> u64 {
        self.alerts.load(Ordering::Relaxed)
    }

    /// Number of completed spans, without cloning them — lets incremental
    /// readers seed their offsets cheaply.
    pub fn span_count(&self) -> usize {
        self.spans.lock().unwrap().len()
    }

    /// Number of captured events (see [`Recorder::span_count`]).
    pub fn event_count(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// All completed spans, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().unwrap().clone()
    }

    /// All captured events, in order.
    pub fn events(&self) -> Vec<EventRecord> {
        self.events.lock().unwrap().clone()
    }

    /// Spans completed since index `from` (in completion order), for
    /// incremental readers. Pair with [`Recorder::reset_epoch`]: after a
    /// reset, restart from 0.
    pub fn spans_since(&self, from: usize) -> Vec<SpanRecord> {
        let spans = self.spans.lock().unwrap();
        spans
            .get(from..)
            .map(<[SpanRecord]>::to_vec)
            .unwrap_or_default()
    }

    /// Zero-copy variant of [`Recorder::spans_since`]: runs `f` over the
    /// spans recorded since index `from` while the span buffer is locked,
    /// so incremental consumers (the au-prof profiler) can fold a burst of
    /// records without cloning the backlog first. Keep `f` short — the
    /// hot path blocks on the same lock while it runs.
    pub fn tap_spans_since<R>(&self, from: usize, f: impl FnOnce(&[SpanRecord]) -> R) -> R {
        let spans = self.spans.lock().unwrap();
        f(spans.get(from..).unwrap_or(&[]))
    }

    /// Events captured since index `from`, for incremental readers.
    pub fn events_since(&self, from: usize) -> Vec<EventRecord> {
        let events = self.events.lock().unwrap();
        events
            .get(from..)
            .map(<[EventRecord]>::to_vec)
            .unwrap_or_default()
    }

    /// Snapshot of every registered counter, in name order.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.registry
            .lock()
            .unwrap()
            .counters
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect()
    }

    /// Snapshot of every registered gauge, in name order.
    pub fn gauges(&self) -> Vec<(String, f64)> {
        self.registry
            .lock()
            .unwrap()
            .gauges
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect()
    }

    /// Snapshot of every registered histogram, in name order.
    pub fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        self.registry
            .lock()
            .unwrap()
            .histograms
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect()
    }

    /// Records dropped after the [`MAX_RECORDS`] cap was hit.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    // -----------------------------------------------------------------
    // Exporters
    // -----------------------------------------------------------------

    /// Human-readable report of every counter, gauge, and histogram plus
    /// span totals, suitable for printing at the end of a run.
    pub fn summary(&self) -> String {
        let reg = self.registry.lock().unwrap();
        let mut out = String::new();
        out.push_str("== telemetry summary ==\n");
        if !reg.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, c) in &reg.counters {
                out.push_str(&format!("  {:<40} {}\n", name, c.get()));
            }
        }
        if !reg.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, g) in &reg.gauges {
                out.push_str(&format!("  {:<40} {}\n", name, g.get()));
            }
        }
        if !reg.histograms.is_empty() {
            out.push_str("histograms (latency, ns):\n");
            for (name, h) in &reg.histograms {
                let s = h.snapshot();
                if s.count == 0 {
                    out.push_str(&format!("  {:<40} (empty)\n", name));
                } else {
                    out.push_str(&format!(
                        "  {:<40} n={} mean={:.0} p50<={} p99<={} min={} max={}\n",
                        name,
                        s.count,
                        s.mean(),
                        s.percentile(50.0),
                        s.percentile(99.0),
                        s.min,
                        s.max
                    ));
                }
            }
        }
        drop(reg);
        let spans = self.spans.lock().unwrap();
        let events = self.events.lock().unwrap();
        out.push_str(&format!(
            "spans: {}   events: {}   alerts: {}   dropped: {}\n",
            spans.len(),
            events.len(),
            self.alert_count(),
            self.dropped()
        ));
        out
    }

    /// Writes one JSON object per line: metric snapshots first, then spans
    /// and events in time order.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let reg = self.registry.lock().unwrap();
        for (name, c) in &reg.counters {
            writeln!(
                w,
                "{{\"kind\":\"counter\",\"name\":{},\"value\":{}}}",
                json_str(name),
                c.get()
            )?;
        }
        for (name, g) in &reg.gauges {
            writeln!(
                w,
                "{{\"kind\":\"gauge\",\"name\":{},\"value\":{}}}",
                json_str(name),
                json_f64(g.get())
            )?;
        }
        for (name, h) in &reg.histograms {
            let s = h.snapshot();
            let buckets: Vec<String> = s
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(i, &n)| format!("[{},{}]", i, n))
                .collect();
            writeln!(
                w,
                "{{\"kind\":\"histogram\",\"name\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{}]}}",
                json_str(name),
                s.count,
                s.sum,
                if s.count == 0 { 0 } else { s.min },
                s.max,
                buckets.join(",")
            )?;
        }
        drop(reg);
        for s in self.spans.lock().unwrap().iter() {
            let args: Vec<String> = s
                .args
                .iter()
                .map(|(k, v)| format!("{}:{}", json_str(k), json_str(v)))
                .collect();
            writeln!(
                w,
                "{{\"kind\":\"span\",\"name\":{},\"start_ns\":{},\"dur_ns\":{},\"tid\":{},\"depth\":{},\"trace\":{},\"span\":{},\"parent\":{},\"args\":{{{}}}}}",
                json_str(&s.name),
                s.start_ns,
                s.dur_ns,
                s.tid,
                s.depth,
                s.trace_id,
                s.span_id,
                s.parent_id,
                args.join(",")
            )?;
        }
        for e in self.events.lock().unwrap().iter() {
            writeln!(
                w,
                "{{\"kind\":{},\"level\":{},\"ts_ns\":{},\"target\":{},\"message\":{}}}",
                if e.alert { "\"alert\"" } else { "\"event\"" },
                json_str(e.level.as_str()),
                e.ts_ns,
                json_str(&e.target),
                json_str(&e.message)
            )?;
        }
        Ok(())
    }

    /// Writes Chrome `trace_event` JSON (the `{"traceEvents": [...]}` form)
    /// loadable in Perfetto or `chrome://tracing`. Spans become complete
    /// (`"X"`) events with microsecond timestamps carrying their
    /// trace/span/parent ids in `args`; cross-thread parent→child edges are
    /// drawn as flow events (`"s"`/`"f"` pairs) so a fanned-out request
    /// renders as one connected tree; counters are appended as a final
    /// `"C"` sample.
    pub fn write_chrome_trace<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write!(w, "{{\"traceEvents\":[")?;
        let mut first = true;
        let spans = self.spans.lock().unwrap().clone();
        // span_id → (tid, start_ns) for resolving cross-thread edges.
        let by_id: BTreeMap<u64, (u64, u64)> = spans
            .iter()
            .map(|s| (s.span_id, (s.tid, s.start_ns)))
            .collect();
        for s in &spans {
            if !first {
                write!(w, ",")?;
            }
            first = false;
            let mut args: Vec<String> = s
                .args
                .iter()
                .map(|(k, v)| format!("{}:{}", json_str(k), json_str(v)))
                .collect();
            args.push(format!("\"depth\":{}", s.depth));
            args.push(format!("\"trace\":{}", s.trace_id));
            args.push(format!("\"span\":{}", s.span_id));
            args.push(format!("\"parent\":{}", s.parent_id));
            write!(
                w,
                "{{\"name\":{},\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{{}}}}}",
                json_str(&s.name),
                s.tid,
                json_f64(s.start_ns as f64 / 1_000.0),
                json_f64((s.dur_ns as f64 / 1_000.0).max(0.001)),
                args.join(",")
            )?;
        }
        // Parent edges that cross threads are invisible to the nesting
        // renderer; emit them as bound flow events (id = child span id,
        // start at the parent's slice, finish at the child's).
        for s in &spans {
            let Some(&(parent_tid, parent_start)) = (s.parent_id != 0)
                .then(|| by_id.get(&s.parent_id))
                .flatten()
            else {
                continue;
            };
            if parent_tid == s.tid {
                continue;
            }
            let ts_parent = json_f64(parent_start as f64 / 1_000.0);
            let ts_child = json_f64(s.start_ns as f64 / 1_000.0);
            write!(
                w,
                ",{{\"name\":\"parent\",\"cat\":\"causal\",\"ph\":\"s\",\"pid\":1,\"tid\":{},\"ts\":{},\"id\":{}}}",
                parent_tid, ts_parent, s.span_id
            )?;
            write!(
                w,
                ",{{\"name\":\"parent\",\"cat\":\"causal\",\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":{},\"ts\":{},\"id\":{}}}",
                s.tid, ts_child, s.span_id
            )?;
        }
        drop(spans);
        let last_ts = self.nanos_since_epoch() as f64 / 1_000.0;
        let reg = self.registry.lock().unwrap();
        for (name, c) in &reg.counters {
            if !first {
                write!(w, ",")?;
            }
            first = false;
            write!(
                w,
                "{{\"name\":{},\"ph\":\"C\",\"pid\":1,\"ts\":{},\"args\":{{\"value\":{}}}}}",
                json_str(name),
                json_f64(last_ts),
                c.get()
            )?;
        }
        drop(reg);
        for e in self.events.lock().unwrap().iter() {
            if !first {
                write!(w, ",")?;
            }
            first = false;
            write!(
                w,
                "{{\"name\":{},\"ph\":\"i\",\"pid\":1,\"tid\":1,\"ts\":{},\"s\":\"g\",\"args\":{{\"level\":{},\"message\":{},\"alert\":{}}}}}",
                json_str(&e.target),
                json_f64(e.ts_ns as f64 / 1_000.0),
                json_str(e.level.as_str()),
                json_str(&e.message),
                e.alert
            )?;
        }
        write!(w, "]}}")?;
        Ok(())
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

// ---------------------------------------------------------------------
// Global recorder
// ---------------------------------------------------------------------

static GLOBAL: OnceLock<Recorder> = OnceLock::new();
/// Mirror of the global recorder's enabled flag, checked before touching
/// the `OnceLock` so the disabled hot path is one relaxed load.
static GLOBAL_ENABLED: AtomicBool = AtomicBool::new(false);

/// The process-wide recorder, created on first use (disabled).
pub fn global() -> &'static Recorder {
    GLOBAL.get_or_init(Recorder::new)
}

/// Enables the global recorder.
pub fn enable() {
    global().enable();
    GLOBAL_ENABLED.store(true, Ordering::Relaxed);
}

/// Disables the global recorder (data is kept).
pub fn disable() {
    global().disable();
    GLOBAL_ENABLED.store(false, Ordering::Relaxed);
}

/// Fast check used by all instrumentation macros: one relaxed atomic load.
#[inline(always)]
pub fn enabled() -> bool {
    GLOBAL_ENABLED.load(Ordering::Relaxed)
}

/// Sets the stderr echo threshold on the global recorder.
pub fn set_verbosity(level: Level) {
    global().set_verbosity(level);
}

/// Registers/fetches a counter on the global recorder.
pub fn counter(name: &str) -> Counter {
    global().counter(name)
}

/// Registers/fetches a gauge on the global recorder.
pub fn gauge(name: &str) -> Gauge {
    global().gauge(name)
}

/// Registers/fetches a histogram on the global recorder.
pub fn histogram(name: &str) -> Histogram {
    global().histogram(name)
}

/// Opens a span on the global recorder (no-op `None` when disabled).
pub fn span_with(name: &'static str, args: &[(&str, String)]) -> Option<SpanGuard<'static>> {
    global().span_with(name, args)
}

/// Records an event on the global recorder; see [`Recorder::event`].
pub fn event(level: Level, target: &str, message: &str) {
    global().event(level, target, message);
}

/// Records a monitoring alert on the global recorder; see [`Recorder::alert`].
pub fn alert(level: Level, target: &str, message: &str) {
    global().alert(level, target, message);
}

// ---------------------------------------------------------------------
// Instrumentation macros
// ---------------------------------------------------------------------

/// Increments a named counter on the global recorder. The handle is cached
/// per callsite; the disabled path is a single branch.
#[macro_export]
macro_rules! count {
    ($name:expr, $n:expr) => {{
        if $crate::enabled() {
            static __CELL: ::std::sync::OnceLock<$crate::Counter> = ::std::sync::OnceLock::new();
            __CELL.get_or_init(|| $crate::counter($name)).add($n as u64);
        }
    }};
    ($name:expr) => {
        $crate::count!($name, 1u64)
    };
}

/// Starts a per-callsite-cached histogram timer; bind the result so the
/// duration is recorded when the guard drops:
/// `let _t = au_telemetry::time!("au_extract");`
#[macro_export]
macro_rules! time {
    ($name:expr) => {{
        if $crate::enabled() {
            static __CELL: ::std::sync::OnceLock<$crate::Histogram> = ::std::sync::OnceLock::new();
            ::std::option::Option::Some(
                __CELL
                    .get_or_init(|| $crate::histogram($name))
                    .start_timer(),
            )
        } else {
            ::std::option::Option::None
        }
    }};
}

/// Opens a structured span on the global recorder; bind the result:
/// `let _s = au_telemetry::span!("au_nn", model = name);`
/// Argument expressions are only evaluated when recording is enabled.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::span_with(
                $name,
                &[$((stringify!($key), ::std::string::ToString::to_string(&$val))),*],
            )
        } else {
            ::std::option::Option::None
        }
    };
}

/// Sets a named gauge on the global recorder (cached per callsite).
#[macro_export]
macro_rules! gauge_set {
    ($name:expr, $v:expr) => {{
        if $crate::enabled() {
            static __CELL: ::std::sync::OnceLock<$crate::Gauge> = ::std::sync::OnceLock::new();
            __CELL.get_or_init(|| $crate::gauge($name)).set($v as f64);
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Every bucket's upper bound maps back into that bucket.
        for i in 1..BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_upper_bound(i)), i, "bucket {i}");
            assert_eq!(bucket_index(bucket_upper_bound(i) + 1), i + 1);
        }
    }

    #[test]
    fn histogram_stats_and_percentiles() {
        let rec = Recorder::new();
        let h = rec.histogram("h");
        for v in [1u64, 2, 3, 100, 1000, 100_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 101_106);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100_000);
        assert!((s.mean() - 101_106.0 / 6.0).abs() < 1e-9);
        // p100 is clamped to the true max, p50 to a bucket bound >= median.
        assert_eq!(s.percentile(100.0), 100_000);
        assert!(s.percentile(50.0) >= 3);
        assert!(s.percentile(50.0) <= 127);
        assert_eq!(
            HistogramSnapshot {
                count: 0,
                sum: 0,
                min: u64::MAX,
                max: 0,
                buckets: [0; BUCKETS]
            }
            .percentile(50.0),
            0
        );
    }

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let rec = Recorder::new();
        let c = rec.counter("c");
        c.add(u64::MAX - 5);
        c.add(3);
        assert_eq!(c.get(), u64::MAX - 2);
        c.add(10);
        assert_eq!(c.get(), u64::MAX, "must saturate, not wrap");
        c.add(1);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn counter_handles_share_one_cell() {
        let rec = Recorder::new();
        rec.counter("shared").add(2);
        rec.counter("shared").add(3);
        assert_eq!(rec.counter_value("shared"), 5);
        assert_eq!(rec.counter_value("never"), 0);
    }

    #[test]
    fn gauge_last_write_wins() {
        let rec = Recorder::new();
        let g = rec.gauge("loss");
        g.set(0.5);
        g.set(0.125);
        assert_eq!(g.get(), 0.125);
    }

    #[test]
    fn spans_nest_and_record_depth() {
        let rec = Recorder::new();
        rec.enable();
        {
            let _outer = rec.span("outer");
            {
                let _mid = rec.span_with("mid", &[("k", "v".to_string())]);
                let _inner = rec.span("inner");
            }
            let _sibling = rec.span("sibling");
        }
        let spans = rec.spans();
        // Spans are recorded on drop: inner, mid, sibling, outer.
        let by_name: BTreeMap<&str, u32> =
            spans.iter().map(|s| (s.name.as_str(), s.depth)).collect();
        assert_eq!(by_name["outer"], 0);
        assert_eq!(by_name["mid"], 1);
        assert_eq!(by_name["inner"], 2);
        assert_eq!(by_name["sibling"], 1);
        let mid = spans.iter().find(|s| s.name == "mid").unwrap();
        assert_eq!(mid.args, vec![("k".to_string(), "v".to_string())]);
        // Depth restored: a fresh span is top-level again.
        {
            let _later = rec.span("later");
        }
        assert_eq!(
            rec.spans()
                .iter()
                .find(|s| s.name == "later")
                .unwrap()
                .depth,
            0
        );
    }

    #[test]
    fn nested_spans_share_a_trace_and_link_parents() {
        let rec = Recorder::new();
        rec.enable();
        {
            let _outer = rec.span("outer");
            {
                let _mid = rec.span("mid");
                let _inner = rec.span("inner");
            }
            let _sibling = rec.span("sibling");
        }
        let spans = rec.spans();
        let by_name: BTreeMap<&str, &SpanRecord> =
            spans.iter().map(|s| (s.name.as_str(), s)).collect();
        let outer = by_name["outer"];
        assert_eq!(outer.parent_id, 0, "root span has no parent");
        assert_ne!(outer.trace_id, 0);
        assert_ne!(outer.span_id, 0);
        // One causal tree: everyone shares the root's trace id.
        for name in ["mid", "inner", "sibling"] {
            assert_eq!(by_name[name].trace_id, outer.trace_id, "{name}");
        }
        assert_eq!(by_name["mid"].parent_id, outer.span_id);
        assert_eq!(by_name["inner"].parent_id, by_name["mid"].span_id);
        assert_eq!(by_name["sibling"].parent_id, outer.span_id);
        // A span opened after the tree closed roots a *new* trace.
        {
            let _later = rec.span("later");
        }
        let later = rec.spans().into_iter().find(|s| s.name == "later").unwrap();
        assert_ne!(later.trace_id, outer.trace_id);
        assert_eq!(later.parent_id, 0);
    }

    #[test]
    fn captured_context_parents_spans_on_other_threads() {
        let rec: &'static Recorder = Box::leak(Box::new(Recorder::new()));
        rec.enable();
        let (root_trace, root_span) = {
            let root = rec.span("root").unwrap();
            let ctx = current_context();
            assert_eq!(ctx.trace_id, root.trace_id().0);
            assert_eq!(ctx.span_id, root.span_id().0);
            std::thread::scope(|s| {
                s.spawn(move || {
                    let _g = set_context(ctx);
                    let _w = rec.span("worker");
                });
                // A thread without the context roots its own trace.
                s.spawn(move || {
                    let _w = rec.span("stranger");
                });
            });
            (root.trace_id().0, root.span_id().0)
        };
        let spans = rec.spans();
        let worker = spans.iter().find(|s| s.name == "worker").unwrap();
        assert_eq!(worker.trace_id, root_trace);
        assert_eq!(worker.parent_id, root_span);
        let stranger = spans.iter().find(|s| s.name == "stranger").unwrap();
        assert_ne!(stranger.trace_id, root_trace);
        assert_eq!(stranger.parent_id, 0);
        // The guard restored this thread's context.
        assert_eq!(current_context(), TraceContext::NONE);
    }

    #[test]
    fn reset_clears_all_state_in_one_epoch() {
        let rec = Recorder::new();
        rec.enable();
        rec.set_verbosity(Level::Error);
        let c = rec.counter("c");
        c.add(5);
        rec.gauge("g").set(2.5);
        rec.histogram("h").record(77);
        {
            let _s = rec.span("s");
        }
        rec.event(Level::Info, "t", "hello");
        rec.alert(Level::Warn, "t", "watch out");
        let epoch_before = rec.reset_epoch();
        rec.reset();
        // Spans, events, alert counter, drop counter, and every metric
        // family clear together — a scrape after reset sees one epoch.
        assert!(rec.spans().is_empty());
        assert!(rec.events().is_empty());
        assert_eq!(rec.alert_count(), 0);
        assert_eq!(rec.dropped(), 0);
        assert_eq!(rec.counter_value("c"), 0);
        assert_eq!(rec.gauge("g").get(), 0.0);
        assert_eq!(rec.histogram_snapshot("h").unwrap().count, 0);
        assert_eq!(rec.reset_epoch(), epoch_before + 1);
        // Incremental readers restart cleanly after the epoch bump.
        assert!(rec.spans_since(0).is_empty());
        assert!(rec.events_since(0).is_empty());
    }

    #[test]
    fn incremental_readers_see_only_new_records() {
        let rec = Recorder::new();
        rec.enable();
        rec.set_verbosity(Level::Error);
        {
            let _a = rec.span("a");
        }
        {
            let _b = rec.span("b");
        }
        let first = rec.spans_since(0);
        assert_eq!(first.len(), 2);
        assert!(rec.spans_since(2).is_empty());
        {
            let _c = rec.span("c");
        }
        let next = rec.spans_since(2);
        assert_eq!(next.len(), 1);
        assert_eq!(next[0].name, "c");
        // Out-of-range offsets (e.g. saved before a reset) return empty
        // instead of panicking.
        assert!(rec.spans_since(999).is_empty());
        rec.event(Level::Info, "t", "one");
        assert_eq!(rec.events_since(0).len(), 1);
        assert!(rec.events_since(1).is_empty());
    }

    #[test]
    fn disabled_recorder_produces_no_spans_or_events() {
        let rec = Recorder::new();
        // Silence the stderr echo so `cargo test` output stays clean.
        rec.set_verbosity(Level::Error);
        assert!(rec.span("nothing").is_none());
        rec.event(Level::Info, "t", "ignored");
        assert!(rec.spans().is_empty());
        assert!(rec.events().is_empty());
    }

    #[test]
    fn events_respect_recording_flag() {
        let rec = Recorder::new();
        rec.set_verbosity(Level::Error);
        rec.enable();
        rec.event(Level::Info, "engine", "hello");
        rec.event(Level::Trace, "engine", "details");
        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].message, "hello");
        assert_eq!(events[1].level, Level::Trace);
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let rec = Recorder::new();
        rec.enable();
        let c = rec.counter("n");
        c.add(7);
        let h = rec.histogram("h");
        h.record(9);
        {
            let _s = rec.span("s");
        }
        rec.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.snapshot().count, 0);
        assert!(rec.spans().is_empty());
        // Old handle still feeds the same registered cell.
        c.add(2);
        assert_eq!(rec.counter_value("n"), 2);
    }

    #[test]
    fn summary_lists_metrics() {
        let rec = Recorder::new();
        rec.enable();
        rec.counter("au_extract.rows").add(42);
        rec.histogram("au_nn.predict").record(1500);
        let s = rec.summary();
        assert!(s.contains("au_extract.rows"), "{s}");
        assert!(s.contains("42"), "{s}");
        assert!(s.contains("au_nn.predict"), "{s}");
    }

    #[test]
    fn jsonl_export_shape() {
        let rec = Recorder::new();
        rec.enable();
        rec.set_verbosity(Level::Error);
        rec.counter("c\"x").add(1);
        rec.histogram("h").record(5);
        {
            let _s = rec.span_with("s", &[("model", "m1".to_string())]);
        }
        rec.event(Level::Warn, "t", "line\nbreak");
        let mut buf = Vec::new();
        rec.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("\"kind\":\"counter\""));
        assert!(text.contains("c\\\"x"), "name must be escaped: {text}");
        assert!(text.contains("\"kind\":\"span\""));
        assert!(text.contains("\"model\":\"m1\""));
        assert!(text.contains("line\\nbreak"));
    }

    #[test]
    fn chrome_trace_is_balanced_json() {
        let rec = Recorder::new();
        rec.enable();
        rec.counter("rows").add(3);
        {
            let _a = rec.span("phase_a");
            let _b = rec.span("phase_b");
        }
        let mut buf = Vec::new();
        rec.write_chrome_trace(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.ends_with("]}"));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"ph\":\"C\""));
        // Structural sanity: braces and brackets balance outside strings.
        let (mut braces, mut brackets, mut in_str, mut esc) = (0i64, 0i64, false, false);
        for c in text.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' if !in_str => braces += 1,
                '}' if !in_str => braces -= 1,
                '[' if !in_str => brackets += 1,
                ']' if !in_str => brackets -= 1,
                _ => {}
            }
        }
        assert_eq!(braces, 0);
        assert_eq!(brackets, 0);
    }

    #[test]
    fn alerts_are_flagged_counted_and_exported() {
        let rec = Recorder::new();
        rec.enable();
        rec.set_verbosity(Level::Error);
        rec.event(Level::Info, "engine", "routine");
        rec.alert(Level::Warn, "au_core.monitor", "model `M` drifting");
        assert_eq!(rec.alert_count(), 1);
        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert!(!events[0].alert);
        assert!(events[1].alert);
        let mut buf = Vec::new();
        rec.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"kind\":\"event\""), "{text}");
        assert!(text.contains("\"kind\":\"alert\""), "{text}");
        assert!(text.contains("model `M` drifting"));
        let s = rec.summary();
        assert!(s.contains("alerts: 1"), "{s}");
        let mut trace = Vec::new();
        rec.write_chrome_trace(&mut trace).unwrap();
        let trace = String::from_utf8(trace).unwrap();
        assert!(trace.contains("\"alert\":true"), "{trace}");
        rec.reset();
        assert_eq!(rec.alert_count(), 0);
    }

    #[test]
    fn alerts_count_even_when_recording_disabled() {
        let rec = Recorder::new();
        rec.set_verbosity(Level::Error);
        rec.alert(Level::Error, "m", "boom");
        assert_eq!(rec.alert_count(), 1);
        assert!(rec.events().is_empty(), "buffer untouched while disabled");
    }

    #[test]
    fn record_cap_counts_drops() {
        let rec = Recorder::new();
        rec.enable();
        rec.set_verbosity(Level::Error);
        // Fill the event buffer directly to the cap, then overflow.
        {
            let mut events = rec.events.lock().unwrap();
            events.resize(
                MAX_RECORDS,
                EventRecord {
                    level: Level::Info,
                    ts_ns: 0,
                    target: String::new(),
                    message: String::new(),
                    alert: false,
                },
            );
        }
        rec.event(Level::Info, "t", "overflow");
        assert_eq!(rec.dropped(), 1);
        assert_eq!(rec.events().len(), MAX_RECORDS);
    }
}
