//! Edge-case pinning for the histogram machinery: property tests that the
//! log₂ bucket mapping round-trips across boundary values, and unit tests
//! fixing `HistogramSnapshot::percentile`/`mean` behavior on empty and
//! single-sample snapshots. These behaviors feed the Prometheus exposition
//! in au-scope, so they are pinned here rather than left implied.

use au_telemetry::{bucket_index, bucket_upper_bound, HistogramSnapshot, Recorder, BUCKETS};
use proptest::prelude::*;

proptest! {
    /// Any value maps into a bucket whose inclusive upper bound maps back
    /// into the same bucket, and the value never exceeds that bound
    /// (except in the unbounded last bucket).
    #[test]
    fn bucket_round_trips_for_any_value(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        let ub = bucket_upper_bound(i);
        prop_assert_eq!(bucket_index(ub), i);
        prop_assert!(v <= ub);
    }

    /// Bucket upper bounds are strictly increasing, and the first value of
    /// the next bucket lies just past the previous bound.
    #[test]
    fn bucket_bounds_are_monotone(i in 1usize..BUCKETS - 2) {
        let ub = bucket_upper_bound(i);
        prop_assert!(ub < bucket_upper_bound(i + 1));
        prop_assert_eq!(bucket_index(ub + 1), i + 1);
    }

    /// A recorded value is always counted in exactly one bucket, and the
    /// snapshot totals agree with it.
    #[test]
    fn single_record_lands_in_its_bucket(v in any::<u64>()) {
        let rec = Recorder::new();
        let h = rec.histogram("h");
        h.record(v);
        let s = h.snapshot();
        prop_assert_eq!(s.count, 1);
        prop_assert_eq!(s.sum, v);
        prop_assert_eq!(s.min, v);
        prop_assert_eq!(s.max, v);
        prop_assert_eq!(s.buckets.iter().sum::<u64>(), 1);
        prop_assert_eq!(s.buckets[bucket_index(v)], 1);
    }
}

#[test]
fn boundary_values_pin_the_log2_mapping() {
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_upper_bound(0), 0);
    // Powers of two start new buckets; their predecessors close them.
    for shift in 1..62 {
        let pow = 1u64 << shift;
        assert_eq!(bucket_index(pow), bucket_index(pow - 1) + 1, "2^{shift}");
    }
    assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    assert_eq!(bucket_upper_bound(BUCKETS - 1), u64::MAX);
    // The clamp bucket's bound still round-trips.
    assert_eq!(bucket_index(bucket_upper_bound(BUCKETS - 1)), BUCKETS - 1);
}

#[test]
fn empty_snapshot_percentile_and_mean_are_zero() {
    let empty = HistogramSnapshot {
        count: 0,
        sum: 0,
        min: u64::MAX,
        max: 0,
        buckets: [0; BUCKETS],
    };
    assert_eq!(empty.mean(), 0.0);
    for p in [0.0, 50.0, 99.0, 100.0] {
        assert_eq!(empty.percentile(p), 0, "p{p}");
    }
}

#[test]
fn single_sample_snapshot_reports_that_sample_everywhere() {
    let rec = Recorder::new();
    let h = rec.histogram("h");
    h.record(1234);
    let s = h.snapshot();
    assert_eq!(s.mean(), 1234.0);
    // Every percentile of a one-sample distribution is that sample:
    // the bucket bound estimate is clamped to the true max.
    for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
        assert_eq!(s.percentile(p), 1234, "p{p}");
    }
    assert_eq!(s.min, 1234);
    assert_eq!(s.max, 1234);
}

#[test]
fn zero_only_histogram_stays_in_bucket_zero() {
    let rec = Recorder::new();
    let h = rec.histogram("h");
    for _ in 0..5 {
        h.record(0);
    }
    let s = h.snapshot();
    assert_eq!(s.buckets[0], 5);
    assert_eq!(s.percentile(50.0), 0);
    assert_eq!(s.mean(), 0.0);
}
