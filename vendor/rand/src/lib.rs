//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand`'s API it actually uses: a seedable
//! `StdRng` plus the [`Rng`] convenience methods `gen`, `gen_range`, and
//! `gen_bool`. The generator is xoshiro256** seeded via SplitMix64 — fast,
//! deterministic, and statistically sound for simulation workloads. It is
//! **not** the same stream as upstream `rand`, which is fine here: every
//! consumer seeds explicitly and only relies on determinism, not on a
//! specific stream.

use core::ops::Range;

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Deterministically builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values uniformly sampleable from raw bits (the `Standard` distribution).
pub trait SampleValue: Sized {
    /// Samples one value from `rng`.
    fn sample_value<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleValue for u64 {
    fn sample_value<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleValue for u32 {
    fn sample_value<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleValue for bool {
    fn sample_value<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleValue for f64 {
    fn sample_value<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleValue for f32 {
    fn sample_value<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types `Rng::gen_range` can draw uniformly. Kept as a single blanket
/// `SampleRange` impl per range shape (mirroring upstream) so that
/// `gen_range(-0.01..0.01)` leaves one candidate impl and float-literal
/// fallback to `f64` still applies.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi)` (`inclusive = false`) or
    /// `[lo, hi]` (`inclusive = true`).
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "gen_range: empty range");
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                _inclusive: bool,
                rng: &mut R,
            ) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let unit = <$t as SampleValue>::sample_value(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Ranges a value can be drawn from uniformly (`Rng::gen_range`).
pub trait SampleRange<T> {
    /// Samples one value in the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: SampleValue>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_value(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as SampleValue>::sample_value(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Same engine as [`StdRng`]; upstream distinguishes them by speed and
    /// security, which does not matter for this offline stand-in.
    pub type SmallRng = StdRng;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is the one degenerate case; splitmix64 cannot
            // produce it from any seed, but keep the guard for clarity.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..4.0);
            assert!((-2.0..4.0).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1800..3200).contains(&hits), "got {hits}");
    }
}
