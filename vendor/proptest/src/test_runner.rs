//! Deterministic case runner backing the `proptest!` macro.

use crate::strategy::Strategy;

/// Runner configuration; only `cases` is meaningful in this stand-in.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

impl Config {
    /// Builds a config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

/// xoshiro256** seeded via SplitMix64 — deterministic, no external deps.
pub struct TestRng {
    state: [u64; 4],
}

impl TestRng {
    /// Expands a 64-bit seed into the full generator state.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            state: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// Next raw 64-bit output.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next() % bound
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a over the test name: stable seeds without `std::hash` randomness.
fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives `config.cases` generated inputs through `body`, panicking with
/// the case index and message on the first `Err`.
pub fn run_cases<S, F>(name: &str, config: Config, strategy: S, body: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), String>,
{
    let mut rng = TestRng::from_seed(seed_from_name(name));
    for case in 0..config.cases {
        let value = strategy.generate(&mut rng);
        if let Err(msg) = body(value) {
            panic!("property `{name}` failed at case {case}/{}: {msg}", config.cases);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = TestRng::from_seed(7);
        let mut b = TestRng::from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
        let mut c = TestRng::from_seed(8);
        assert_ne!(TestRng::from_seed(7).next(), c.next());
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = TestRng::from_seed(99);
        for _ in 0..1000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn run_cases_executes_all_cases() {
        let mut seen = std::cell::Cell::new(0u32);
        let seen_ref = &mut seen;
        run_cases("count", Config::with_cases(17), (0u64..10,), |(_,)| {
            seen_ref.set(seen_ref.get() + 1);
            Ok(())
        });
        assert_eq!(seen.get(), 17);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn run_cases_panics_on_err() {
        run_cases("boom", Config::with_cases(4), (0u64..10,), |(_,)| {
            Err("nope".to_string())
        });
    }
}
