//! Offline stand-in for `proptest`.
//!
//! The workspace's property tests use a moderate slice of proptest's API:
//! range and regex-literal strategies, tuples, `prop::collection::vec`,
//! `prop_map`, `prop_recursive`, `prop_oneof!`, `Just`, `any::<bool>()`,
//! the `proptest!` macro with `ProptestConfig`, and the `prop_assert*` /
//! `prop_assume!` macros. This crate reimplements exactly that slice on a
//! deterministic RNG (seeded per test name, so failures reproduce across
//! runs). There is **no shrinking**: a failing case reports its case index
//! and message and panics immediately — acceptable for an offline CI gate.

pub mod strategy;
pub mod test_runner;

/// `prop::…` module tree mirroring proptest's layout.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

pub use strategy::{any, Just, Strategy};
pub use test_runner::Config;

/// The glob import every test file starts with.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0usize..10, v in prop::collection::vec(0f64..1.0, 0..5)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let strategy = ($($strat,)+);
                $crate::test_runner::run_cases(
                    stringify!($name),
                    config,
                    strategy,
                    |($($arg,)+)| {
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} ({}:{})",
                ::std::format!($($fmt)+), file!(), line!()
            ));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($left), stringify!($right), l, r, file!(), line!()
            ));
        }
    }};
}

/// Fails the current case if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` != `{}`\n  both: {:?} ({}:{})",
                stringify!($left), stringify!($right), l, file!(), line!()
            ));
        }
    }};
}

/// Skips the current case when its precondition does not hold.
///
/// Unlike real proptest this does not re-draw a replacement case; the case
/// simply counts as passed, which keeps the runner allocation-free.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniformly picks one of several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
