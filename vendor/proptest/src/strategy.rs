//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of an associated type.
///
/// Unlike real proptest there is no value tree / shrinking; a strategy is
/// just a cloneable generator driven by the runner's deterministic RNG.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, O>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O + 'static,
    {
        Map {
            inner: self,
            f: Rc::new(f),
        }
    }

    /// Builds a recursive strategy: `recurse` receives a strategy for the
    /// shallower levels and returns the next level. `depth` bounds the
    /// nesting; `_desired_size`/`_expected_branch_size` are accepted for
    /// API compatibility and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut level = self.clone().boxed();
        for _ in 0..depth {
            let base = self.clone().boxed();
            let deeper = recurse(level).boxed();
            // 1-in-3 chance of bottoming out early at every level keeps
            // generated trees a mix of shallow and deep.
            level = BoxedStrategy::new(move |rng: &mut TestRng| {
                if rng.below(3) == 0 {
                    base.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            });
        }
        level
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let this = self;
        BoxedStrategy::new(move |rng: &mut TestRng| this.generate(rng))
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> BoxedStrategy<T> {
    pub(crate) fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy { gen: Rc::new(f) }
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S: Strategy, O> {
    inner: S,
    f: Rc<dyn Fn(S::Value) -> O>,
}

impl<S: Strategy, O> Clone for Map<S, O> {
    fn clone(&self) -> Self {
        Map {
            inner: self.inner.clone(),
            f: Rc::clone(&self.f),
        }
    }
}

impl<S: Strategy, O> Strategy for Map<S, O> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between type-erased strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

// ---------------------------------------------------------------------
// Ranges
// ---------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// ---------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

// ---------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------

/// Length bounds for [`vec`]; converted from usize ranges.
#[derive(Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length is
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The result of [`vec`].
pub struct VecStrategy<S: Strategy> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Clone for VecStrategy<S> {
    fn clone(&self) -> Self {
        VecStrategy {
            element: self.element.clone(),
            size: self.size,
        }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

// ---------------------------------------------------------------------
// Arbitrary
// ---------------------------------------------------------------------

/// Types with a canonical strategy, reachable through [`any`].
pub trait Arbitrary {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;
    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Canonical strategy for `T` (`any::<bool>()` and friends).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy for uniformly random `bool`s.
#[derive(Clone)]
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;
    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

macro_rules! arbitrary_full_range_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = FullIntStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                FullIntStrategy(std::marker::PhantomData)
            }
        }
    )*};
}

/// Strategy covering an integer type's whole domain.
pub struct FullIntStrategy<T>(std::marker::PhantomData<T>);

impl<T> Clone for FullIntStrategy<T> {
    fn clone(&self) -> Self {
        FullIntStrategy(std::marker::PhantomData)
    }
}

macro_rules! full_int_strategy_impl {
    ($($t:ty),*) => {$(
        impl Strategy for FullIntStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next() as $t
            }
        }
    )*};
}

full_int_strategy_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
arbitrary_full_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------
// Regex-literal string strategies
// ---------------------------------------------------------------------

/// `&str` strategies interpret the string as a simplified regex pattern:
/// a sequence of atoms (literal characters or `[...]` classes, with `\x`
/// escapes and `a-z` ranges; `&&[^...]` subtracts a set, as in the regex
/// crate's class intersection), each optionally followed by `{m}`, `{m,n}`,
/// `?`, `*`, or `+` (the unbounded quantifiers cap at 8 repetitions).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let span = (atom.max - atom.min) as u64 + 1;
            let count = atom.min + rng.below(span) as usize;
            for _ in 0..count {
                out.push(atom.class.sample(rng));
            }
        }
        out
    }
}

#[derive(Clone)]
struct Atom {
    class: CharClass,
    min: usize,
    max: usize,
}

#[derive(Clone)]
struct CharClass {
    /// Inclusive character ranges to include.
    include: Vec<(char, char)>,
    /// Characters removed from the set.
    exclude: Vec<char>,
}

impl CharClass {
    fn single(c: char) -> Self {
        CharClass {
            include: vec![(c, c)],
            exclude: Vec::new(),
        }
    }

    fn sample(&self, rng: &mut TestRng) -> char {
        let total: u64 = self
            .include
            .iter()
            .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
            .sum();
        assert!(total > 0, "empty character class");
        // Rejection-sample around the excluded characters.
        for _ in 0..64 {
            let mut idx = rng.below(total);
            for &(lo, hi) in &self.include {
                let span = hi as u64 - lo as u64 + 1;
                if idx < span {
                    let c = char::from_u32(lo as u32 + idx as u32).expect("valid scalar");
                    if !self.exclude.contains(&c) {
                        return c;
                    }
                    break;
                }
                idx -= span;
            }
        }
        // Give up on rejection; linear-scan the first admissible char.
        for &(lo, hi) in &self.include {
            for u in lo as u32..=hi as u32 {
                if let Some(c) = char::from_u32(u) {
                    if !self.exclude.contains(&c) {
                        return c;
                    }
                }
            }
        }
        panic!("character class excludes every included character");
    }
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let class = match chars[i] {
            '[' => {
                let (class, next) = parse_class(&chars, i + 1);
                i = next;
                class
            }
            '\\' => {
                i += 2;
                CharClass::single(unescape(chars[i - 1]))
            }
            '.' => {
                i += 1;
                CharClass {
                    include: vec![(' ', '~')],
                    exclude: Vec::new(),
                }
            }
            c => {
                i += 1;
                CharClass::single(c)
            }
        };
        let (min, max) = parse_quantifier(&chars, &mut i);
        atoms.push(Atom { class, min, max });
    }
    atoms
}

/// Parses a class body starting just after `[`; returns the class and the
/// index just past the closing `]`.
fn parse_class(chars: &[char], mut i: usize) -> (CharClass, usize) {
    let mut class = CharClass {
        include: Vec::new(),
        exclude: Vec::new(),
    };
    while i < chars.len() && chars[i] != ']' {
        // `&&[^...]` — subtract the bracketed set.
        if chars[i] == '&' && chars.get(i + 1) == Some(&'&') {
            i += 2;
            assert!(
                chars.get(i) == Some(&'[') && chars.get(i + 1) == Some(&'^'),
                "only `&&[^...]` intersections are supported"
            );
            i += 2;
            while i < chars.len() && chars[i] != ']' {
                if chars[i] == '\\' {
                    class.exclude.push(unescape(chars[i + 1]));
                    i += 2;
                } else {
                    class.exclude.push(chars[i]);
                    i += 1;
                }
            }
            i += 1; // inner ']'
            continue;
        }
        let lo = if chars[i] == '\\' {
            i += 2;
            unescape(chars[i - 1])
        } else {
            i += 1;
            chars[i - 1]
        };
        // Range `a-z` (a trailing '-' is a literal).
        if chars.get(i) == Some(&'-') && chars.get(i + 1).is_some_and(|&c| c != ']') {
            let hi = if chars[i + 1] == '\\' {
                i += 3;
                unescape(chars[i - 1])
            } else {
                i += 2;
                chars[i - 1]
            };
            class.include.push((lo, hi));
        } else {
            class.include.push((lo, lo));
        }
    }
    (class, i + 1) // skip the closing ']'
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        'r' => '\r',
        't' => '\t',
        other => other,
    }
}

fn parse_quantifier(chars: &[char], i: &mut usize) -> (usize, usize) {
    match chars.get(*i) {
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unclosed `{` quantifier")
                + *i;
            let body: String = chars[*i + 1..close].iter().collect();
            *i = close + 1;
            if let Some((lo, hi)) = body.split_once(',') {
                (
                    lo.trim().parse().expect("quantifier min"),
                    hi.trim().parse().expect("quantifier max"),
                )
            } else {
                let n = body.trim().parse().expect("quantifier count");
                (n, n)
            }
        }
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        Some('*') => {
            *i += 1;
            (0, 8)
        }
        Some('+') => {
            *i += 1;
            (1, 8)
        }
        _ => (1, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::from_seed(0xA11CE)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3usize..10).generate(&mut r);
            assert!((3..10).contains(&v));
            let f = (-2.0f64..2.0).generate(&mut r);
            assert!((-2.0..2.0).contains(&f));
            let i = (16usize..=16).generate(&mut r);
            assert_eq!(i, 16);
        }
    }

    #[test]
    fn vec_respects_size_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let v = vec(0u64..5, 2..6).generate(&mut r);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn map_and_oneof_compose() {
        let mut r = rng();
        let s = crate::prop_oneof![
            (0u64..10).prop_map(|n| n as i64),
            Just(-1i64),
        ];
        let mut saw_negative = false;
        for _ in 0..200 {
            let v = s.generate(&mut r);
            assert!((-1..10).contains(&v));
            saw_negative |= v == -1;
        }
        assert!(saw_negative, "union must reach every arm");
    }

    #[test]
    fn regex_identifier_pattern() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,6}".generate(&mut r);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn regex_class_subtraction() {
        let mut r = rng();
        for _ in 0..500 {
            let s = "[ -~&&[^\"\\\\]]{0,8}".generate(&mut r);
            assert!(s.len() <= 8);
            for c in s.chars() {
                assert!((' '..='~').contains(&c), "{c:?}");
                assert!(c != '"' && c != '\\', "excluded {c:?}");
            }
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u64),
            Node(Vec<Tree>),
        }
        let leaf = (0u64..100).prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(4, 32, 3, |inner| {
            vec(inner, 0..4).prop_map(Tree::Node)
        });
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(children) => {
                    1 + children.iter().map(depth).max().unwrap_or(0)
                }
            }
        }
        let mut r = rng();
        for _ in 0..100 {
            let t = strat.generate(&mut r);
            assert!(depth(&t) <= 6, "depth bound violated: {t:?}");
        }
    }
}
