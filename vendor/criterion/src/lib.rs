//! Offline stand-in for `criterion`.
//!
//! Provides the subset of criterion's API the workspace benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple calibrated wall-clock
//! loop. Statistics are deliberately minimal (median / mean / min of the
//! per-sample means); the goal is comparable relative numbers in an
//! offline container, not criterion's full analysis pipeline.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark identifier; display-converted from whatever callers pass.
pub struct BenchmarkId(String);

impl<T: std::fmt::Display> From<T> for BenchmarkId {
    fn from(v: T) -> Self {
        BenchmarkId(v.to_string())
    }
}

/// Top-level harness handle, one per bench binary.
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench` plus any user filter string; accept
        // and ignore flags, treat the first free argument as a substring
        // filter like criterion does.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Overrides the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into().0;
        run_one(&name, self.filter.as_deref(), self.default_sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into().0);
        let samples = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        run_one(&name, self.criterion.filter.as_deref(), samples, &mut f);
        self
    }

    /// Finishes the group (a no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Timing helper handed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iters` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, filter: Option<&str>, samples: usize, f: &mut F) {
    if let Some(pat) = filter {
        if !name.contains(pat) {
            return;
        }
    }
    // Calibrate: grow the iteration count until one sample takes >= 2 ms,
    // so short routines aren't dominated by timer resolution.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 24 {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter.first().copied().unwrap_or(0.0);
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{name:<50} time: [min {} | median {} | mean {}]  ({} iters x {} samples)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        iters,
        per_iter.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group function running each target benchmark in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            filter: None,
            default_sample_size: 3,
        };
        let mut count = 0u64;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        assert!(count > 0, "routine must have been driven");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
            default_sample_size: 3,
        };
        let mut ran = false;
        c.bench_function("other", |b| {
            ran = true;
            b.iter(|| ());
        });
        assert!(!ran);
    }

    #[test]
    fn group_applies_sample_size() {
        let mut c = Criterion {
            filter: None,
            default_sample_size: 3,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut runs = 0u64;
        group.bench_function("inner", |b| {
            runs += 1;
            b.iter(|| ());
        });
        group.finish();
        assert!(runs >= 2);
    }
}
