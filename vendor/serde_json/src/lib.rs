//! Offline stand-in for `serde_json`.
//!
//! Bridges JSON text and the vendored `serde`'s [`Value`] model. Numbers
//! are written with Rust's shortest-round-trip float formatting, so `f64`
//! (and therefore widened `f32`) values survive a text round trip exactly —
//! the model-persistence tests rely on bit-exact predictions after
//! save/load.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization or parse error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Returns [`Error`] if the value contains a non-finite number (JSON has no
/// representation for NaN/infinity).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out)?;
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or on a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::deserialize(&value).map_err(|e| Error(e.to_string()))
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => {
            if !n.is_finite() {
                return Err(Error(format!("non-finite number {n} is not valid JSON")));
            }
            // Rust's Display prints the shortest string that parses back to
            // the same f64; integers print without a fraction, which is
            // still a valid JSON number.
            out.push_str(&n.to_string());
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                c => {
                    return Err(Error(format!(
                        "expected `,` or `]`, got `{}` at byte {}",
                        c as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                c => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, got `{}` at byte {}",
                        c as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("invalid \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("invalid \\u escape".into()))?;
                            // Surrogate pairs: combine a following \uXXXX.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                let lo = self.surrogate_low()?;
                                let combined =
                                    0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error("invalid unicode escape".into()))?);
                        }
                        c => {
                            return Err(Error(format!("unknown escape `\\{}`", c as char)));
                        }
                    }
                }
                b => {
                    // Re-walk multi-byte UTF-8 sequences from the source.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let width = utf8_width(b);
                        let end = start + width;
                        let chunk = self
                            .bytes
                            .get(start..end)
                            .ok_or_else(|| Error("truncated UTF-8".into()))?;
                        out.push_str(
                            std::str::from_utf8(chunk)
                                .map_err(|_| Error("invalid UTF-8 in string".into()))?,
                        );
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn surrogate_low(&mut self) -> Result<u32, Error> {
        if self.bytes.get(self.pos) == Some(&b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u')
        {
            self.pos += 2;
            let hex = self
                .bytes
                .get(self.pos..self.pos + 4)
                .ok_or_else(|| Error("truncated surrogate pair".into()))?;
            self.pos += 4;
            u32::from_str_radix(
                std::str::from_utf8(hex).map_err(|_| Error("invalid surrogate".into()))?,
                16,
            )
            .map_err(|_| Error("invalid surrogate".into()))
        } else {
            Err(Error("lone high surrogate".into()))
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error(format!("invalid number `{text}` at byte {start}")))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn map_round_trip() {
        let mut m: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        m.insert("a b".into(), vec![1.0, -2.5, 3e-7]);
        m.insert("\"quoted\\\"".into(), vec![]);
        let json = to_string(&m).unwrap();
        let back: BTreeMap<String, Vec<f64>> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &f in &[0.1f64, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -0.0] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} via {json}");
        }
        for &f in &[0.1f32, 1.0 / 3.0, f32::MIN_POSITIVE] {
            let json = to_string(&f).unwrap();
            let back: f32 = from_str(&json).unwrap();
            assert_eq!(back, f);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("not json").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<f64>("1 2").is_err());
    }

    #[test]
    fn parses_nested_structures_with_whitespace() {
        let v: Vec<Vec<f64>> = from_str(" [ [1, 2] , [ ] , [3.5] ] ").unwrap();
        assert_eq!(v, vec![vec![1.0, 2.0], vec![], vec![3.5]]);
    }

    #[test]
    fn unicode_strings_survive() {
        let s = "héllo → 世界 \u{1F600}".to_owned();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
        let esc: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(esc, "\u{1F600}");
    }
}
