//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored `serde`'s [`Value`] data model, without `syn`/`quote`: the
//! item is parsed directly from the raw token stream. Supported shapes are
//! exactly what this workspace uses — non-generic named-field structs and
//! non-generic enums whose variants are unit or named-field (externally
//! tagged, `{"Variant": {...}}` / `"Variant"`). Anything else panics at
//! compile time with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Kind {
    Struct(Vec<String>),
    /// Variant name paired with its named fields (empty = unit variant).
    Enum(Vec<(String, Vec<String>)>),
}

struct Item {
    name: String,
    kind: Kind,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let pairs = fields
                .iter()
                .map(|f| field_pair(f, &format!("&self.{f}")))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Object(::std::vec![{pairs}])")
        }
        Kind::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|(variant, fields)| {
                    if fields.is_empty() {
                        format!(
                            "{name}::{variant} => ::serde::Value::Str(\
                             ::std::string::String::from(\"{variant}\")),",
                            name = item.name
                        )
                    } else {
                        let bindings = fields.join(", ");
                        let pairs = fields
                            .iter()
                            .map(|f| field_pair(f, f))
                            .collect::<Vec<_>>()
                            .join(", ");
                        format!(
                            "{name}::{variant} {{ {bindings} }} => ::serde::Value::Object(\
                             ::std::vec![(::std::string::String::from(\"{variant}\"), \
                             ::serde::Value::Object(::std::vec![{pairs}]))]),",
                            name = item.name
                        )
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         }}",
        name = item.name
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let inits = fields
                .iter()
                .map(|f| field_init(f, "v"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "::std::result::Result::Ok({name} {{ {inits} }})",
                name = item.name
            )
        }
        Kind::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|(variant, fields)| {
                    if fields.is_empty() {
                        format!(
                            "\"{variant}\" => ::std::result::Result::Ok({name}::{variant}),",
                            name = item.name
                        )
                    } else {
                        let inits = fields
                            .iter()
                            .map(|f| field_init(f, "payload"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        format!(
                            "\"{variant}\" => ::std::result::Result::Ok(\
                             {name}::{variant} {{ {inits} }}),",
                            name = item.name
                        )
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "let (tag, payload) = v.enum_variant()?;\n\
                 let _ = &payload;\n\
                 match tag {{\n{arms}\n\
                 other => ::std::result::Result::Err(::serde::DeError(\
                 ::std::format!(\"unknown variant `{{other}}`\"))),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         {body}\n\
         }}\n\
         }}",
        name = item.name
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

fn field_pair(field: &str, value_expr: &str) -> String {
    format!(
        "(::std::string::String::from(\"{field}\"), \
         ::serde::Serialize::serialize({value_expr}))"
    )
}

fn field_init(field: &str, source: &str) -> String {
    format!("{field}: ::serde::Deserialize::deserialize({source}.field(\"{field}\")?)?")
}

// ---------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes and visibility; find `struct` or `enum`.
    let is_enum = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next(); // the bracketed attribute body
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break false,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break true,
            Some(other) => panic!("serde derive: unexpected token `{other}` before item keyword"),
            None => panic!("serde derive: no struct or enum found"),
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected item name, got {other:?}"),
    };
    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde derive stand-in does not support generic type `{name}`")
        }
        other => panic!(
            "serde derive stand-in supports only brace-bodied items; `{name}` has {other:?}"
        ),
    };
    let kind = if is_enum {
        Kind::Enum(parse_variants(body))
    } else {
        Kind::Struct(parse_named_fields(body))
    };
    Item { name, kind }
}

/// Parses `name1: Type1, name2: Type2, ...` (attributes and `pub` allowed),
/// returning the field names. Types are skipped with angle-bracket depth
/// tracking so commas inside generics don't split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Field start: skip attributes and visibility.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tok) = tokens.next() else { break };
        let TokenTree::Ident(id) = tok else {
            panic!("serde derive: expected field name, got `{tok}`")
        };
        fields.push(id.to_string());
        // Skip `: Type` until a top-level comma.
        let mut angle_depth = 0i32;
        for tok in tokens.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Parses enum variants: `Name { fields }` or `Name` (unit), comma-separated.
fn parse_variants(stream: TokenStream) -> Vec<(String, Vec<String>)> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes before the variant.
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '#' {
                tokens.next();
                tokens.next();
            } else {
                break;
            }
        }
        let Some(tok) = tokens.next() else { break };
        let TokenTree::Ident(id) = tok else {
            panic!("serde derive: expected variant name, got `{tok}`")
        };
        let variant = id.to_string();
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                tokens.next();
                parse_named_fields(inner)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde derive stand-in does not support tuple variant `{variant}`")
            }
            _ => Vec::new(),
        };
        variants.push((variant, fields));
        // Consume the trailing comma (and any discriminant would be an error).
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => break,
            Some(other) => panic!("serde derive: unexpected token `{other}` after variant"),
        }
    }
    variants
}
