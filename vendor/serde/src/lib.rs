//! Offline stand-in for `serde`.
//!
//! The real serde decouples data structures from formats through a visitor
//! API; this workspace only ever serializes to and from JSON (via the
//! vendored `serde_json`), so the stand-in collapses the data model to a
//! single [`Value`] tree. `#[derive(Serialize, Deserialize)]` is provided
//! by the vendored `serde_derive` proc-macro and generates impls of the two
//! traits below. Only the shapes this workspace uses are covered: named
//! structs, externally tagged enums with struct/unit variants, primitives,
//! strings, tuples, sequences, and string-keyed maps.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The in-memory JSON data model all (de)serialization passes through.
///
/// Object fields keep insertion order so derived structs round-trip with
/// stable field ordering.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (all numerics funnel through `f64`, exact below 2^53).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

/// Deserialization error: a human-readable path/expectation message.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Builds an error describing a type mismatch.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {}", got.kind()))
    }
}

impl Value {
    /// Short name of the JSON kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Looks up a required object field.
    ///
    /// # Errors
    ///
    /// If `self` is not an object or the field is absent.
    pub fn field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError(format!("missing field `{name}`"))),
            other => Err(DeError::expected("object", other)),
        }
    }

    /// Interprets `self` as an externally tagged enum: a one-entry object
    /// `{"Variant": payload}` or a bare string `"Variant"` (unit variant).
    ///
    /// # Errors
    ///
    /// If the shape matches neither form.
    pub fn enum_variant(&self) -> Result<(&str, &Value), DeError> {
        match self {
            Value::Object(fields) if fields.len() == 1 => {
                Ok((fields[0].0.as_str(), &fields[0].1))
            }
            Value::Str(s) => Ok((s.as_str(), &Value::Null)),
            other => Err(DeError::expected("externally tagged enum", other)),
        }
    }

    /// Numeric accessor.
    ///
    /// # Errors
    ///
    /// If `self` is not a number.
    pub fn as_f64(&self) -> Result<f64, DeError> {
        match self {
            Value::Num(n) => Ok(*n),
            other => Err(DeError::expected("number", other)),
        }
    }
}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`] tree.
    fn serialize(&self) -> Value;
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree's shape does not match `Self`.
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                Ok(v.as_f64()? as $t)
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        let out = ($(
                            $t::deserialize(
                                it.next().ok_or_else(|| DeError("tuple too short".into()))?,
                            )?,
                        )+);
                        Ok(out)
                    }
                    other => Err(DeError::expected("array (tuple)", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// String-convertible map keys (JSON objects only admit string keys).
pub trait JsonKey: Ord {
    /// The key rendered as a JSON object key.
    fn to_key(&self) -> String;
    /// Parses an object key back into the key type.
    fn from_key(s: &str) -> Self;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Self {
        s.to_owned()
    }
}

impl JsonKey for &str {
    fn to_key(&self) -> String {
        (*self).to_owned()
    }
    fn from_key(_: &str) -> Self {
        unreachable!("cannot deserialize into a borrowed &str key")
    }
}

impl<K: JsonKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.serialize()))
                .collect(),
        )
    }
}

impl<K: JsonKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::from_key(k), V::deserialize(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl<K: JsonKey + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Value {
        // Sort for deterministic output.
        let mut entries: Vec<_> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_key(), v.serialize()))
                .collect(),
        )
    }
}

impl<K: JsonKey + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::from_key(k), V::deserialize(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::deserialize(&3u64.serialize()).unwrap(), 3);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(
            String::deserialize(&"hi".to_owned().serialize()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1usize, 2usize), (3, 4)];
        assert_eq!(Vec::<(usize, usize)>::deserialize(&v.serialize()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert("a".to_owned(), vec![1.0f64, 2.0]);
        assert_eq!(
            BTreeMap::<String, Vec<f64>>::deserialize(&m.serialize()).unwrap(),
            m
        );
    }

    #[test]
    fn field_lookup_errors_are_descriptive() {
        let v = Value::Object(vec![("x".into(), Value::Num(1.0))]);
        assert!(v.field("x").is_ok());
        let e = v.field("y").unwrap_err();
        assert!(e.to_string().contains("missing field `y`"));
    }
}
