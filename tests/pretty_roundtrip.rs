//! Pretty-printer round-trip over every AuLang program in the repo: the
//! canonical printed form must re-parse to a span-insensitively equal AST
//! (the `PartialEq` impls on `Expr`/`Stmt`/`Function` ignore spans), and
//! printing must be idempotent. This guards the bytecode compiler against
//! silent AST drift: `pretty.rs`, the parser, and `compile.rs` all walk
//! the same shapes.

use autonomizer::lang::{compile_program, compile_program_opt, corpus, parse, pretty, TraceMode};
use std::path::PathBuf;

fn assert_round_trips(name: &str, src: &str) {
    let ast = parse(src).unwrap_or_else(|e| panic!("[{name}] source must parse: {e}"));
    let printed = pretty::print_program(&ast);
    let reparsed = parse(&printed)
        .unwrap_or_else(|e| panic!("[{name}] printed source must re-parse: {e}\n{printed}"));
    assert_eq!(
        ast, reparsed,
        "[{name}] round-trip AST mismatch:\n{printed}"
    );
    let reprinted = pretty::print_program(&reparsed);
    assert_eq!(printed, reprinted, "[{name}] printing is not idempotent");
    // The optimizer must accept everything the plain compiler accepts,
    // and never make the bytecode bigger.
    for mode in [TraceMode::Off, TraceMode::Selective, TraceMode::Full] {
        let plain = compile_program(&ast, mode);
        let opt = compile_program_opt(&ast, mode);
        assert!(
            opt.op_count() <= plain.op_count(),
            "[{name}] {mode:?}: optimizer grew the bytecode ({} -> {})",
            plain.op_count(),
            opt.op_count()
        );
    }
}

/// Every `.au` file in the repository (examples and lint corpus,
/// including the `clean/` counterparts).
#[test]
fn repo_au_files_round_trip() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut checked = 0;
    for dir in [
        "examples/aulang",
        "tests/lint_corpus",
        "tests/lint_corpus/clean",
    ] {
        for entry in std::fs::read_dir(root.join(dir)).expect("au dir exists") {
            let path = entry.unwrap().path();
            if path.extension().and_then(|e| e.to_str()) != Some("au") {
                continue;
            }
            let src = std::fs::read_to_string(&path).unwrap();
            assert_round_trips(&path.file_name().unwrap().to_string_lossy(), &src);
            checked += 1;
        }
    }
    assert!(checked >= 21, "expected every repo .au file, saw {checked}");
}

/// The nine paper corpus programs.
#[test]
fn corpus_programs_round_trip() {
    for p in &corpus::all() {
        assert_round_trips(p.name, p.src);
    }
}
