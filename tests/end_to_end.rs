//! End-to-end autonomization tests spanning the whole workspace: SL
//! (Canny/Sphinx) and RL (Torcs/Flappy) pipelines, run at reduced budgets.

use autonomizer::core::{Engine, Mode, ModelConfig};
use autonomizer::games::harness::{self, FeatureSource};
use autonomizer::games::{Flappybird, Torcs};
use autonomizer::image::scene::SceneGenerator;
use autonomizer::nn::rl::DqnConfig;
use autonomizer::speech::{self, DecodeParams, Recognizer, Vocabulary};
use autonomizer::vision::canny::{self, CannyParams};

#[test]
fn canny_autonomization_beats_or_matches_baseline() {
    autonomizer::nn::set_init_seed(101);
    let mut engine = Engine::new(Mode::Train);
    engine
        .au_config(
            "MinNN",
            ModelConfig::dnn(&[32, 16]).with_learning_rate(3e-3),
        )
        .unwrap();

    // Train on 12 scenes for a few epochs (hist -> lo/hi/sigma).
    let mut gen = SceneGenerator::new(5);
    let training: Vec<_> = (0..12)
        .map(|_| {
            let scene = gen.generate(24, 24);
            let (ideal, _) = canny::ideal_params(&scene.image, &scene.truth);
            let result = canny::canny(&scene.image, ideal);
            (scene, ideal, result.hist)
        })
        .collect();
    let norm = |h: &[f64]| {
        let t: f64 = h.iter().sum::<f64>().max(1.0);
        h.iter().map(|v| v / t).collect::<Vec<f64>>()
    };
    for _ in 0..25 {
        for (_, ideal, hist) in &training {
            engine.au_extract("HIST", &norm(hist));
            engine.au_extract("SIGMA", &[f64::from(ideal.sigma)]);
            engine.au_extract("LO", &[f64::from(ideal.lo)]);
            engine.au_extract("HI", &[f64::from(ideal.hi)]);
            engine
                .au_nn("MinNN", "HIST", &["SIGMA", "LO", "HI"])
                .unwrap();
        }
    }

    // Deploy on 6 held-out scenes.
    engine.set_mode(Mode::Test);
    let mut test_gen = SceneGenerator::new(999);
    let mut baseline_total = 0.0;
    let mut auto_total = 0.0;
    for _ in 0..6 {
        let scene = test_gen.generate(24, 24);
        let probe = canny::canny(&scene.image, CannyParams::default());
        engine.au_extract("HIST", &norm(&probe.hist));
        engine
            .au_nn("MinNN", "HIST", &["SIGMA", "LO", "HI"])
            .unwrap();
        let sigma = engine
            .au_write_back_scalar("SIGMA")
            .unwrap()
            .clamp(0.3, 3.0) as f32;
        let hi = engine.au_write_back_scalar("HI").unwrap().clamp(0.05, 0.95) as f32;
        let lo = engine
            .au_write_back_scalar("LO")
            .unwrap()
            .clamp(0.01, f64::from(hi)) as f32;
        let auto = canny::canny(&scene.image, CannyParams { sigma, lo, hi });
        auto_total += canny::score(&auto.edges, &scene.truth);
        baseline_total += canny::score(&probe.edges, &scene.truth);
    }
    assert!(
        auto_total > baseline_total - 0.05,
        "autonomized {auto_total:.3} should at least match baseline {baseline_total:.3}"
    );
}

#[test]
fn sphinx_autonomization_improves_noisy_recognition() {
    autonomizer::nn::set_init_seed(102);
    let recognizer = Recognizer::new(Vocabulary::new(4, 20));
    let mut engine = Engine::new(Mode::Train);
    engine
        .au_config(
            "SphinxNN",
            ModelConfig::dnn(&[24, 12]).with_learning_rate(3e-3),
        )
        .unwrap();
    // Offline training, as the paper does for SL.
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..60u64 {
        let utterance = speech::synthesize(recognizer.vocabulary(), (i % 4) as usize, i);
        let (ideal, ok) = speech::ideal_params(&recognizer, &utterance);
        if ok {
            xs.push(utterance.summary());
            ys.push(vec![ideal.beam, ideal.floor]);
        }
    }
    engine.train_supervised("SphinxNN", &xs, &ys, 60).unwrap();

    engine.set_mode(Mode::Test);
    let mut default_ok = 0;
    let mut auto_ok = 0;
    let trials = 30u64;
    for i in 0..trials {
        let utterance = speech::synthesize(recognizer.vocabulary(), (i % 4) as usize, 7000 + i);
        let prediction = engine.predict("SphinxNN", &utterance.summary()).unwrap();
        let params = DecodeParams {
            beam: prediction[0].clamp(1.0, 40.0),
            floor: prediction[1].clamp(0.0, 1.5),
        };
        if recognizer.recognize(&utterance, params).0 == utterance.word {
            auto_ok += 1;
        }
        if recognizer.recognize(&utterance, DecodeParams::default()).0 == utterance.word {
            default_ok += 1;
        }
    }
    assert!(
        auto_ok >= default_ok,
        "predicted params ({auto_ok}/{trials}) should not lose to defaults ({default_ok}/{trials})"
    );
}

#[test]
fn torcs_training_improves_driving_through_primitives() {
    autonomizer::nn::set_init_seed(103);
    let mut engine = Engine::new(Mode::Train);
    engine
        .au_config(
            "T",
            ModelConfig::q_dnn(&[32]).with_dqn(DqnConfig {
                hidden: vec![32],
                batch_size: 16,
                learn_every: 2,
                epsilon_decay: 0.995,
                learning_rate: 2e-3,
                seed: 2,
                ..DqnConfig::default()
            }),
        )
        .unwrap();
    let mut game = Torcs::new(4);
    let report = harness::train(
        &mut engine,
        "T",
        &mut game,
        50,
        450,
        FeatureSource::Internal,
    )
    .unwrap();
    let early: f64 = report.episodes[..10]
        .iter()
        .map(|e| e.progress)
        .sum::<f64>()
        / 10.0;
    let late = report.recent_progress(10);
    assert!(
        late > early,
        "driving should improve with training: early {early:.3} late {late:.3}"
    );
}

#[test]
fn trained_rl_model_survives_process_restart() {
    autonomizer::nn::set_init_seed(104);
    let dir = std::env::temp_dir().join("autonomizer_e2e_model");
    let _ = std::fs::remove_dir_all(&dir);

    // TR process.
    {
        let mut engine = Engine::new(Mode::Train);
        engine.set_model_dir(&dir);
        engine
            .au_config(
                "F",
                ModelConfig::q_dnn(&[16]).with_dqn(DqnConfig {
                    hidden: vec![16],
                    batch_size: 8,
                    seed: 3,
                    ..DqnConfig::default()
                }),
            )
            .unwrap();
        let mut game = Flappybird::new(3);
        harness::train(&mut engine, "F", &mut game, 5, 100, FeatureSource::Internal).unwrap();
        engine.save_model("F").unwrap();
    }

    // TS process: au_config loads the trained model (rule CONFIG-TEST).
    {
        let mut engine = Engine::new(Mode::Test);
        engine.set_model_dir(&dir);
        engine
            .au_config(
                "F",
                ModelConfig::q_dnn(&[16]).with_dqn(DqnConfig {
                    hidden: vec![16],
                    batch_size: 8,
                    seed: 3,
                    ..DqnConfig::default()
                }),
            )
            .unwrap();
        let mut game = Flappybird::new(3);
        let out = harness::play_episode(
            &mut engine,
            "F",
            &mut game,
            100,
            FeatureSource::Internal,
            None,
        )
        .unwrap();
        assert!(out.steps > 0);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn feature_extraction_agrees_across_all_nine_benchmarks() {
    // Every benchmark's recorded dependence shape must yield non-empty
    // features for every annotated target.
    use autonomizer::games::Game;
    use autonomizer::trace::{extract_rl, extract_sl, AnalysisDb, RlParams};

    // SL programs (Algorithm 1).
    let mut sl_dbs: Vec<(&str, AnalysisDb)> = Vec::new();
    let mut db = AnalysisDb::new();
    autonomizer::vision::canny::record_dependences(&mut db);
    sl_dbs.push(("Canny", db));
    let mut db = AnalysisDb::new();
    autonomizer::vision::rothwell::record_dependences(&mut db);
    sl_dbs.push(("Rothwell", db));
    let mut db = AnalysisDb::new();
    autonomizer::phylo::record_dependences(&mut db);
    sl_dbs.push(("Phylip", db));
    let mut db = AnalysisDb::new();
    autonomizer::speech::record_dependences(&mut db);
    sl_dbs.push(("Sphinx", db));
    for (name, db) in &sl_dbs {
        let features = extract_sl(db);
        for (&target, ranked) in &features {
            assert!(
                !ranked.is_empty(),
                "{name}: target {} has no features",
                db.name(target)
            );
        }
    }

    // RL programs (Algorithm 2 over live traces).
    fn rl_check(game: &mut (impl Game + ?Sized), name: &str) {
        let mut db = AnalysisDb::new();
        game.record_dependences(&mut db);
        for _ in 0..200 {
            game.record_frame(&mut db);
            let a = game.oracle_action();
            if game.step(a).terminal {
                game.reset();
            }
        }
        let features = extract_rl(&db, RlParams::default());
        for (&target, selected) in &features {
            assert!(
                !selected.is_empty(),
                "{name}: target {} has no features",
                db.name(target)
            );
        }
    }
    rl_check(&mut autonomizer::games::Flappybird::new(1), "Flappybird");
    rl_check(&mut autonomizer::games::Mario::new(1), "Mario");
    rl_check(&mut autonomizer::games::Arkanoid::new(1), "Arkanoid");
    rl_check(&mut autonomizer::games::Torcs::new(1), "Torcs");
    rl_check(&mut autonomizer::games::Breakout::new(1), "Breakout");
}

#[test]
fn static_preprune_never_changes_extraction_results() {
    // Soundness of the static pre-pass on every benchmark: running
    // Algorithm 1/2 behind a StaticFilter must select exactly the same
    // features as the plain dynamic extraction. For the games the filter is
    // built from the *skeleton* graph (record_dependences only — the static
    // view of the program), while the dynamic db additionally holds 200
    // frames of recorded values.
    use autonomizer::games::Game;
    use autonomizer::trace::{extract_sl, extract_sl_pruned, AnalysisDb, StaticFilter};

    // SL benchmarks (Algorithm 1).
    let mut sl_dbs: Vec<(&str, AnalysisDb)> = Vec::new();
    let mut db = AnalysisDb::new();
    autonomizer::vision::canny::record_dependences(&mut db);
    sl_dbs.push(("Canny", db));
    let mut db = AnalysisDb::new();
    autonomizer::vision::rothwell::record_dependences(&mut db);
    sl_dbs.push(("Rothwell", db));
    let mut db = AnalysisDb::new();
    autonomizer::phylo::record_dependences(&mut db);
    sl_dbs.push(("Phylip", db));
    let mut db = AnalysisDb::new();
    autonomizer::speech::record_dependences(&mut db);
    sl_dbs.push(("Sphinx", db));
    for (name, db) in &sl_dbs {
        let filter = StaticFilter::new(db);
        let (pruned, stats) = extract_sl_pruned(db, &filter);
        assert_eq!(
            pruned,
            extract_sl(db),
            "{name}: pre-pruning changed Algorithm 1"
        );
        assert!(stats.pruned <= stats.considered, "{name}: {stats:?}");
    }

    // RL benchmarks (Algorithm 2): static skeleton vs dynamic trace.
    fn rl_check(game: &mut (impl Game + ?Sized), name: &str) {
        use autonomizer::trace::{
            extract_rl_detailed, extract_rl_pruned, AnalysisDb, RlParams, StaticFilter,
        };
        let mut skeleton = AnalysisDb::new();
        game.record_dependences(&mut skeleton);
        let filter = StaticFilter::new(&skeleton);

        let mut db = AnalysisDb::new();
        game.record_dependences(&mut db);
        for _ in 0..200 {
            game.record_frame(&mut db);
            let a = game.oracle_action();
            if game.step(a).terminal {
                game.reset();
            }
        }
        let params = RlParams::default();
        let (pruned, stats) = extract_rl_pruned(&db, &filter, params);
        let unpruned = extract_rl_detailed(&db, params);
        assert_eq!(pruned, unpruned, "{name}: pre-pruning changed Algorithm 2");
        assert!(stats.pruned <= stats.considered, "{name}: {stats:?}");
        for (&target, e) in &unpruned {
            assert!(
                !e.selected.is_empty(),
                "{name}: target {} lost all features",
                db.name(target)
            );
        }
    }
    rl_check(&mut autonomizer::games::Flappybird::new(7), "Flappybird");
    rl_check(&mut autonomizer::games::Mario::new(7), "Mario");
    rl_check(&mut autonomizer::games::Arkanoid::new(7), "Arkanoid");
    rl_check(&mut autonomizer::games::Torcs::new(7), "Torcs");
    rl_check(&mut autonomizer::games::Breakout::new(7), "Breakout");
}
