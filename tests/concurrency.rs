//! Concurrent-serving smoke tests for the layered runtime.
//!
//! The paper's deployment mode (TS) serves a frozen model; the layered
//! engine lets many threads do so through cloned [`EngineHandle`]s. These
//! tests pin down the two properties that make that safe: the handle is
//! `Send + Sync + Clone`, and concurrent serving returns bit-identical
//! results to a single-threaded run (inference takes no training step, so
//! there is nothing order-dependent to race on).

use autonomizer::core::{Engine, EngineHandle, Mode, ModelConfig};
use std::sync::Mutex;
use std::thread;

const THREADS: usize = 8;
const PREDICTIONS_PER_THREAD: usize = 1_000;

/// Serializes tests that mutate the process-wide au-par thread override or
/// the `AU_PAR_THREADS` environment variable — both are global state shared
/// across cargo's parallel test threads.
static PAR_OVERRIDE: Mutex<()> = Mutex::new(());

fn par_guard() -> std::sync::MutexGuard<'static, ()> {
    PAR_OVERRIDE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Compile-time proof that the handle can cross and be shared between
/// threads, and that the facade inherits both properties.
#[test]
fn handle_and_engine_are_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    fn assert_clone<T: Clone>() {}
    assert_send_sync::<EngineHandle>();
    assert_send_sync::<Engine>();
    assert_clone::<EngineHandle>();
}

/// Trains y = 2x and returns the engine frozen in deployment mode.
fn deployed_engine() -> Engine {
    au_nn::set_init_seed(97);
    let mut e = Engine::new(Mode::Train);
    e.au_config("serve", ModelConfig::dnn(&[32]).with_learning_rate(0.02))
        .expect("config");
    let xs: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64 / 64.0]).collect();
    let ys: Vec<Vec<f64>> = xs.iter().map(|x| vec![2.0 * x[0]]).collect();
    e.train_supervised("serve", &xs, &ys, 60).expect("train");
    e.set_mode(Mode::Test);
    e
}

/// 8 threads × 1k predictions on clones of one handle must agree exactly
/// with a single-threaded pass over the same inputs.
#[test]
fn threaded_serving_matches_single_threaded() {
    let engine = deployed_engine();
    let handle = engine.handle();

    let inputs: Vec<Vec<f64>> = (0..PREDICTIONS_PER_THREAD)
        .map(|i| vec![(i % 128) as f64 / 128.0])
        .collect();
    let reference: Vec<Vec<f64>> = inputs
        .iter()
        .map(|x| handle.predict("serve", x).expect("single-threaded predict"))
        .collect();

    let results: Vec<Vec<Vec<f64>>> = thread::scope(|scope| {
        let workers: Vec<_> = (0..THREADS)
            .map(|_| {
                let h = handle.clone();
                let inputs = &inputs;
                scope.spawn(move || {
                    inputs
                        .iter()
                        .map(|x| h.predict("serve", x).expect("threaded predict"))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("join"))
            .collect()
    });

    for (t, outputs) in results.iter().enumerate() {
        assert_eq!(
            outputs, &reference,
            "thread {t} diverged from the single-threaded reference"
        );
    }
}

/// Concurrent extraction through cloned handles loses nothing: π ends up
/// with every appended value and the lifetime counter matches.
#[test]
fn concurrent_extraction_is_lossless() {
    let engine = Engine::new(Mode::Train);
    let handle = engine.handle();
    let per_thread = 500usize;

    thread::scope(|scope| {
        for t in 0..THREADS {
            let h = handle.clone();
            scope.spawn(move || {
                for i in 0..per_thread {
                    h.au_extract(&format!("T{t}"), &[i as f64]);
                }
            });
        }
    });

    assert_eq!(engine.total_extracted(), (THREADS * per_thread) as u64);
    for t in 0..THREADS {
        let db = engine.db();
        let list = db.get(&format!("T{t}"));
        assert_eq!(list.len(), per_thread, "thread {t} lost appends");
        // Appends from one thread land in program order.
        let mut sorted = list.to_vec();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(list, &sorted[..], "thread {t} appends out of order");
    }
}

/// Batched prediction agrees with the scalar path under concurrency — the
/// serving fast path used by the `serve_concurrent` benchmark.
#[test]
fn threaded_batch_serving_matches_scalar_path() {
    let engine = deployed_engine();
    let handle = engine.handle();
    let inputs: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64 / 64.0]).collect();
    let reference: Vec<Vec<f64>> = inputs
        .iter()
        .map(|x| handle.predict("serve", x).expect("predict"))
        .collect();

    thread::scope(|scope| {
        for _ in 0..THREADS {
            let h = handle.clone();
            let inputs = &inputs;
            let reference = &reference;
            scope.spawn(move || {
                for _ in 0..8 {
                    let batch = h.predict_batch("serve", inputs).expect("batch");
                    assert_eq!(&batch, reference);
                }
            });
        }
    });
}

/// `predict_batch` fans rows out across au-par workers; every kernel
/// preserves per-element accumulation order, so the served values must be
/// bit-identical for every worker count.
#[test]
fn predict_batch_is_invariant_to_thread_count() {
    let _g = par_guard();
    let engine = deployed_engine();
    let handle = engine.handle();
    let inputs: Vec<Vec<f64>> = (0..96).map(|i| vec![(i % 64) as f64 / 64.0]).collect();

    au_par::set_thread_override(Some(1));
    let reference = handle.predict_batch("serve", &inputs).expect("batch");
    for threads in [2usize, 4, 8] {
        au_par::set_thread_override(Some(threads));
        let got = handle.predict_batch("serve", &inputs).expect("batch");
        assert_eq!(got, reference, "threads={threads} changed served bits");
    }
    au_par::set_thread_override(None);
}

/// A fixed 32-sample regression set and two identically initialized copies
/// of the same network, for comparing the serial and parallel trainers.
fn training_pair() -> (au_nn::Network, au_nn::Network, au_nn::Tensor, au_nn::Tensor) {
    let build = || {
        au_nn::set_init_seed(555);
        au_nn::Network::builder(3)
            .dense(16)
            .activation(au_nn::Activation::Tanh)
            .dense(2)
            .build()
    };
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..32 {
        let a = i as f32 / 32.0;
        let b = ((i * 7) % 13) as f32 / 13.0;
        let c = ((i * 3) % 5) as f32 / 5.0;
        xs.extend([a, b, c]);
        ys.extend([a * 2.0 - b, c + 0.5 * b]);
    }
    (
        build(),
        build(),
        au_nn::Tensor::from_vec(&[32, 3], xs),
        au_nn::Tensor::from_vec(&[32, 2], ys),
    )
}

/// With `AU_PAR_THREADS=1` (the env-var path, not the programmatic
/// override) the parallel minibatch trainer must be bit-identical to the
/// serial trainer, step for step.
#[test]
fn parallel_training_single_worker_is_bit_identical() {
    let _g = par_guard();
    au_par::set_thread_override(None);
    std::env::set_var("AU_PAR_THREADS", "1");
    let (mut serial, mut parallel, x, y) = training_pair();
    let mut opt_s = au_nn::Adam::new(0.01);
    let mut opt_p = au_nn::Adam::new(0.01);
    for step in 0..15 {
        let ls = serial.train_batch(&x, &y, au_nn::Loss::Mse, &mut opt_s);
        let lp = parallel.train_minibatch(&x, &y, au_nn::Loss::Mse, &mut opt_p);
        assert_eq!(ls.to_bits(), lp.to_bits(), "loss diverged at step {step}");
    }
    let ps = serial.forward(&x);
    let pp = parallel.forward(&x);
    assert_eq!(ps.data(), pp.data(), "trained predictions diverged");
    std::env::remove_var("AU_PAR_THREADS");
}

/// A panic inside a pool job propagates to the submitter — and the pool
/// survives it: the very next region runs normally on the same workers.
#[test]
fn pool_panic_propagates_and_pool_stays_usable() {
    let _g = par_guard();
    au_par::set_thread_override(Some(4));
    let boom = std::panic::catch_unwind(|| {
        au_par::pool_map(64, 1, |i| {
            if i == 37 {
                panic!("job 37 exploded");
            }
            i * 2
        })
    });
    assert!(boom.is_err(), "pool swallowed a job panic");

    let after = au_par::pool_map(64, 1, |i| i * 2);
    assert_eq!(after, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    au_par::set_thread_override(None);
}

/// `shutdown_pool` joins every worker; the next pooled region lazily
/// respawns the pool and still returns order-preserving results.
#[test]
fn pool_shutdown_joins_workers_and_restarts_lazily() {
    let _g = par_guard();
    au_par::set_thread_override(Some(4));
    // Force the pool up, then tear it down.
    let warm = au_par::pool_map(16, 1, |i| i + 1);
    assert_eq!(warm.len(), 16);
    au_par::shutdown_pool();
    assert_eq!(au_par::pool_worker_count(), 0, "shutdown left workers");

    // Lazy restart: the next region brings the pool back transparently.
    let reborn = au_par::pool_map(32, 1, |i| i * i);
    assert_eq!(reborn, (0..32).map(|i| i * i).collect::<Vec<_>>());
    assert!(au_par::pool_worker_count() > 0, "pool did not respawn");
    au_par::set_thread_override(None);
}

/// The f32 batch path fans out over the same persistent pool; like its f64
/// twin it must serve bit-identical values at every worker count.
#[test]
fn predict_batch_f32_is_invariant_to_thread_count() {
    let _g = par_guard();
    let engine = deployed_engine();
    let handle = engine.handle();
    let flat: Vec<f32> = (0..96).map(|i| (i % 64) as f32 / 64.0).collect();

    au_par::set_thread_override(Some(1));
    let reference = handle.predict_batch_f32("serve", &flat).expect("batch");
    for threads in [2usize, 4, 8] {
        au_par::set_thread_override(Some(threads));
        let got = handle.predict_batch_f32("serve", &flat).expect("batch");
        assert_eq!(got, reference, "threads={threads} changed served f32 bits");
    }
    au_par::set_thread_override(None);
}

/// At N workers the minibatch trainer regroups f32 additions at chunk
/// boundaries, so it only promises closeness, not bit-identity: losses
/// within 1e-4 and trained predictions within 1e-3 of the serial run (the
/// tolerance documented in docs/performance.md).
#[test]
fn parallel_training_multi_worker_stays_within_tolerance() {
    let _g = par_guard();
    au_par::set_thread_override(Some(4));
    let (mut serial, mut parallel, x, y) = training_pair();
    let mut opt_s = au_nn::Adam::new(0.01);
    let mut opt_p = au_nn::Adam::new(0.01);
    for _ in 0..15 {
        let ls = serial.train_batch(&x, &y, au_nn::Loss::Mse, &mut opt_s);
        let lp = parallel.train_minibatch(&x, &y, au_nn::Loss::Mse, &mut opt_p);
        assert!(
            (ls - lp).abs() < 1e-4,
            "loss drift: serial {ls} vs par {lp}"
        );
    }
    au_par::set_thread_override(None);
    let ps = serial.forward(&x);
    let pp = parallel.forward(&x);
    for (a, b) in ps.data().iter().zip(pp.data()) {
        assert!((a - b).abs() < 1e-3, "prediction drift: {a} vs {b}");
    }
}
