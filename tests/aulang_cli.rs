//! End-to-end pinning of the `aulang` binary's exit-code contract:
//! `0` success, `1` the program was understood but failed (denied lint
//! findings, runtime errors), `2` the invocation or source could not be
//! processed (usage, unreadable file, parse error). Also pins that
//! `run --opt` is observably identical to a plain `run`.

use std::path::PathBuf;
use std::process::{Command, Output};

fn aulang(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_aulang"))
        .args(args)
        .output()
        .expect("aulang binary runs")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("aulang exited normally")
}

/// Writes `src` to a unique temp file and returns its path.
fn temp_program(tag: &str, src: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("aulang_cli_{}_{tag}.au", std::process::id()));
    std::fs::write(&path, src).expect("temp file writes");
    path
}

fn corpus(file: &str) -> String {
    format!("{}/tests/lint_corpus/{file}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn check_exits_zero_on_warnings_unless_denied() {
    // AU006 is warning-severity: plain `check` reports it but succeeds…
    let warn = corpus("au006_dead_extract.au");
    assert_eq!(code(&aulang(&["check", &warn])), 0);
    // …while `--deny warnings` turns findings into exit 1.
    assert_eq!(code(&aulang(&["check", &warn, "--deny", "warnings"])), 1);
}

#[test]
fn check_exits_one_on_protocol_errors() {
    let err = corpus("au004_restore_without_checkpoint.au");
    assert_eq!(code(&aulang(&["check", &err])), 1);
}

#[test]
fn check_exits_two_on_parse_errors() {
    // A parse error is not a lint finding: the source could not be
    // processed at all, which must be distinguishable in CI.
    let bad = temp_program("parse", "fn main( {\n");
    assert_eq!(
        code(&aulang(&["check", bad.to_str().unwrap()])),
        2,
        "parse errors must exit 2, not be conflated with lint findings"
    );
    let _ = std::fs::remove_file(&bad);
}

#[test]
fn unreadable_file_and_unknown_command_exit_two() {
    assert_eq!(code(&aulang(&["check", "/nonexistent/no_such.au"])), 2);
    let example = format!(
        "{}/examples/aulang/threshold.au",
        env!("CARGO_MANIFEST_DIR")
    );
    assert_eq!(code(&aulang(&["frobnicate", &example])), 2);
    assert_eq!(code(&aulang(&["run"])), 2, "missing file is a usage error");
}

#[test]
fn runtime_errors_exit_one() {
    let bad = temp_program(
        "runtime",
        "fn main() {\n    let a = [1, 2];\n    return a + 1;\n}\n",
    );
    assert_eq!(code(&aulang(&["run", bad.to_str().unwrap()])), 1);
    let _ = std::fs::remove_file(&bad);
}

#[test]
fn run_opt_matches_plain_run() {
    let example = format!(
        "{}/examples/aulang/threshold.au",
        env!("CARGO_MANIFEST_DIR")
    );
    let plain = aulang(&["run", &example, "--seed", "7"]);
    let opt = aulang(&["run", &example, "--seed", "7", "--opt"]);
    assert_eq!(code(&plain), 0);
    assert_eq!(code(&opt), 0);
    assert_eq!(
        String::from_utf8_lossy(&plain.stdout),
        String::from_utf8_lossy(&opt.stdout),
        "--opt must not change observable output"
    );
}

#[test]
fn opt_on_the_interpreter_is_a_usage_error() {
    let example = format!(
        "{}/examples/aulang/threshold.au",
        env!("CARGO_MANIFEST_DIR")
    );
    assert_eq!(
        code(&aulang(&["run", &example, "--engine", "interp", "--opt"])),
        2
    );
}
