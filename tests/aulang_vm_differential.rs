//! Differential testing: the bytecode VM against the tree-walking
//! interpreter (the reference oracle) across the nine paper programs and
//! the lint corpus.
//!
//! For every program and engine pair we assert identical results (value or
//! error message), identical `print` output, identical step/depth
//! statistics, and identical π/θ effects (model training steps). Under
//! Full tracing the VM's analysis database must be *bit-identical*
//! (`to_dot` equality) to the interpreter's; under Selective tracing the
//! database may be smaller, but pruned feature extraction (Algorithms 1–2
//! behind the static filter) must select exactly the same features.

use autonomizer::lang::{
    absint, compile_program_opt, corpus, parse, static_analysis, Interpreter, TraceMode, Value, Vm,
};
use autonomizer::trace::{extract_rl_pruned, extract_sl_pruned, RlParams, StaticFilter};
use std::collections::BTreeMap;

/// Result + observable effects of one run, engine-agnostic.
struct RunOutcome {
    result: Result<Value, String>,
    output: Vec<String>,
    steps: u64,
    max_depth: usize,
    assignments: u64,
    dot: String,
    /// Training steps per model touched by the program.
    train_steps: BTreeMap<String, u64>,
}

fn model_names(src: &str) -> Vec<String> {
    // Every corpus model is introduced by au_config("Name", ...).
    src.split("au_config(\"")
        .skip(1)
        .filter_map(|rest| rest.split('"').next())
        .map(str::to_owned)
        .collect()
}

fn run_interp(p: &corpus::CorpusProgram, tracing: bool) -> RunOutcome {
    autonomizer::nn::set_init_seed(p.nn_seed);
    let mut interp = Interpreter::compile(p.src).expect("corpus parses");
    interp.set_tracing(tracing);
    interp.set_seed(7);
    if let Some(limit) = p.step_limit {
        interp.set_step_limit(limit);
    }
    let result = interp.run().map_err(|e| e.to_string());
    let stats = interp.stats();
    let train_steps = model_names(p.src)
        .into_iter()
        .filter_map(|m| {
            interp
                .engine_mut()
                .model_stats(&m)
                .map(|s| (m, s.train_steps))
        })
        .collect();
    RunOutcome {
        result,
        output: interp.output().to_vec(),
        steps: stats.steps,
        max_depth: stats.max_depth,
        assignments: stats.assignments,
        dot: interp.analysis().to_dot(),
        train_steps,
    }
}

fn run_vm(p: &corpus::CorpusProgram, mode: TraceMode) -> (RunOutcome, Vm) {
    autonomizer::nn::set_init_seed(p.nn_seed);
    let mut vm = Vm::compile(p.src, mode).expect("corpus parses");
    vm.set_seed(7);
    if let Some(limit) = p.step_limit {
        vm.set_step_limit(limit);
    }
    let result = vm.run().map_err(|e| e.to_string());
    let stats = vm.stats();
    let train_steps = model_names(p.src)
        .into_iter()
        .filter_map(|m| vm.engine_mut().model_stats(&m).map(|s| (m, s.train_steps)))
        .collect();
    let outcome = RunOutcome {
        result,
        output: vm.output().to_vec(),
        steps: stats.steps,
        max_depth: stats.max_depth,
        assignments: stats.assignments,
        dot: vm.analysis().to_dot(),
        train_steps,
    };
    (outcome, vm)
}

fn run_vm_opt(p: &corpus::CorpusProgram, mode: TraceMode) -> (RunOutcome, Vm) {
    autonomizer::nn::set_init_seed(p.nn_seed);
    let prog = compile_program_opt(&parse(p.src).expect("corpus parses"), mode);
    let mut vm = Vm::from_compiled(prog);
    vm.set_seed(7);
    if let Some(limit) = p.step_limit {
        vm.set_step_limit(limit);
    }
    let result = vm.run().map_err(|e| e.to_string());
    let stats = vm.stats();
    let train_steps = model_names(p.src)
        .into_iter()
        .filter_map(|m| vm.engine_mut().model_stats(&m).map(|s| (m, s.train_steps)))
        .collect();
    let outcome = RunOutcome {
        result,
        output: vm.output().to_vec(),
        steps: stats.steps,
        max_depth: stats.max_depth,
        assignments: stats.assignments,
        dot: vm.analysis().to_dot(),
        train_steps,
    };
    (outcome, vm)
}

fn assert_same_observables(name: &str, a: &RunOutcome, b: &RunOutcome) {
    assert_eq!(a.result, b.result, "[{name}] result mismatch");
    assert_eq!(a.output, b.output, "[{name}] output mismatch");
    assert_eq!(a.steps, b.steps, "[{name}] step-count mismatch");
    assert_eq!(a.max_depth, b.max_depth, "[{name}] call-depth mismatch");
    assert_eq!(
        a.train_steps, b.train_steps,
        "[{name}] model training diverged"
    );
}

/// Untraced VM vs. untraced interpreter: identical values and effects.
#[test]
fn corpus_untraced_vm_matches_interp() {
    for p in &corpus::all() {
        let interp = run_interp(p, false);
        let (vm, _) = run_vm(p, TraceMode::Off);
        assert_same_observables(p.name, &interp, &vm);
        assert_eq!(vm.assignments, 0, "[{}] untraced VM traced", p.name);
    }
}

/// Fully-traced VM vs. traced interpreter: the analysis database must be
/// bit-identical — same variables in the same interning order, same
/// edges, same marks.
#[test]
fn corpus_full_trace_db_is_bit_identical() {
    for p in &corpus::all() {
        let interp = run_interp(p, true);
        let (vm, _) = run_vm(p, TraceMode::Full);
        assert_same_observables(p.name, &interp, &vm);
        assert_eq!(
            interp.assignments, vm.assignments,
            "[{}] assignment-count mismatch",
            p.name
        );
        assert_eq!(interp.dot, vm.dot, "[{}] analysis db mismatch", p.name);
    }
}

/// Selectively-traced VM vs. traced interpreter: pruned extraction over
/// the selective database selects exactly the features the interpreter's
/// full database yields — Algorithm 1 (SL) and Algorithm 2 (RL), by name.
#[test]
fn corpus_selective_trace_preserves_extraction_selections() {
    for p in &corpus::all() {
        let interp = run_interp(p, true);
        let (vm_out, vm) = run_vm(p, TraceMode::Selective);
        assert_same_observables(p.name, &interp, &vm_out);
        assert_eq!(
            vm.effective_trace_mode(),
            TraceMode::Selective,
            "[{}] corpus programs must be statically analyzable",
            p.name
        );

        // Rebuild the interpreter run to get its database by value.
        autonomizer::nn::set_init_seed(p.nn_seed);
        let mut oracle = Interpreter::compile(p.src).unwrap();
        oracle.set_seed(7);
        if let Some(limit) = p.step_limit {
            oracle.set_step_limit(limit);
        }
        let _ = oracle.run();

        let static_db = static_analysis::analyze(&parse(p.src).unwrap());
        let filter = StaticFilter::new(&static_db);

        // Algorithm 1 (supervised features), by name.
        let (full_sl, _) = extract_sl_pruned(oracle.analysis(), &filter);
        let (sel_sl, _) = extract_sl_pruned(vm.analysis(), &filter);
        let by_name =
            |db: &autonomizer::trace::AnalysisDb,
             map: &BTreeMap<_, Vec<autonomizer::trace::RankedFeature>>| {
                map.iter()
                    .map(|(&t, feats)| {
                        (
                            db.name(t).to_owned(),
                            feats
                                .iter()
                                .map(|f| (db.name(f.var).to_owned(), f.distance))
                                .collect::<Vec<_>>(),
                        )
                    })
                    .collect::<BTreeMap<_, _>>()
            };
        assert_eq!(
            by_name(oracle.analysis(), &full_sl),
            by_name(vm.analysis(), &sel_sl),
            "[{}] Algorithm 1 selections diverged",
            p.name
        );

        // Algorithm 2 (RL feature sets), by name.
        let (full_rl, _) = extract_rl_pruned(oracle.analysis(), &filter, RlParams::default());
        let (sel_rl, _) = extract_rl_pruned(vm.analysis(), &filter, RlParams::default());
        let rl_by_name =
            |db: &autonomizer::trace::AnalysisDb,
             map: &BTreeMap<_, autonomizer::trace::RlExtraction>| {
                map.iter()
                    .map(|(&t, ex)| {
                        (
                            db.name(t).to_owned(),
                            ex.selected
                                .iter()
                                .map(|&v| db.name(v).to_owned())
                                .collect::<Vec<_>>(),
                        )
                    })
                    .collect::<BTreeMap<_, _>>()
            };
        assert_eq!(
            rl_by_name(oracle.analysis(), &full_rl),
            rl_by_name(vm.analysis(), &sel_rl),
            "[{}] Algorithm 2 selections diverged",
            p.name
        );
    }
}

/// Optimized bytecode against the interpreter in every trace mode: the
/// optimizer (constant folding, branch pruning, dead-store elision,
/// superinstruction fusion) must be observably invisible — identical
/// result, output, step counts, π/θ effects, and under Full tracing a
/// bit-identical analysis database (`to_dot` equality).
#[test]
fn corpus_optimized_vm_matches_interp_all_modes() {
    let mut total_folded = 0usize;
    let mut total_fused = 0usize;
    for p in &corpus::all() {
        for mode in [TraceMode::Off, TraceMode::Full, TraceMode::Selective] {
            let interp = run_interp(p, mode != TraceMode::Off);
            let (opt_out, opt_vm) = run_vm_opt(p, mode);
            assert_same_observables(p.name, &interp, &opt_out);
            if mode == TraceMode::Full {
                assert_eq!(
                    interp.assignments, opt_out.assignments,
                    "[{}] optimized Full assignment-count mismatch",
                    p.name
                );
                assert_eq!(
                    interp.dot, opt_out.dot,
                    "[{}] optimized Full analysis db mismatch",
                    p.name
                );
            }
            let unopt = Vm::compile(p.src, mode).unwrap();
            assert!(
                opt_vm.compiled().op_count() <= unopt.compiled().op_count(),
                "[{} {mode:?}] optimizer grew the program: {} > {}",
                p.name,
                opt_vm.compiled().op_count(),
                unopt.compiled().op_count()
            );
            let stats = opt_vm.compiled().opt_stats();
            total_folded += stats.folded;
            total_fused += stats.fused;
        }
    }
    assert!(total_fused > 0, "peephole fusion never fired on the corpus");
    assert!(
        total_folded > 0,
        "constant folding never fired on the corpus"
    );
}

/// Selective tracing with the absint-tightened `StaticFilter`
/// (constant-valued candidates dropped at compile time *and* at
/// extraction time): pruned extraction over the optimized selective
/// database must select exactly what the full-database oracle selects
/// through the same tightened filter.
#[test]
fn corpus_optimized_selective_selections_match_tightened_oracle() {
    for p in &corpus::all() {
        let program = parse(p.src).unwrap();
        let analysis = absint::analyze(&program);
        assert!(analysis.complete, "[{}] absint must complete", p.name);

        let (_, vm) = run_vm_opt(p, TraceMode::Selective);
        assert_eq!(
            vm.effective_trace_mode(),
            TraceMode::Selective,
            "[{}] corpus programs must be statically analyzable",
            p.name
        );

        // The full-database oracle: a traced interpreter run.
        autonomizer::nn::set_init_seed(p.nn_seed);
        let mut oracle = Interpreter::compile(p.src).unwrap();
        oracle.set_seed(7);
        if let Some(limit) = p.step_limit {
            oracle.set_step_limit(limit);
        }
        let _ = oracle.run();

        let (static_db, constants) = static_analysis::analyze_tightened(&program);
        assert_eq!(
            constants,
            analysis.constants.keys().cloned().collect(),
            "[{}] analyze_tightened must expose absint's constant set",
            p.name
        );
        let tight = StaticFilter::with_constants(&static_db, constants);

        let (full_sl, _) = extract_sl_pruned(oracle.analysis(), &tight);
        let (sel_sl, _) = extract_sl_pruned(vm.analysis(), &tight);
        let by_name =
            |db: &autonomizer::trace::AnalysisDb,
             map: &BTreeMap<_, Vec<autonomizer::trace::RankedFeature>>| {
                map.iter()
                    .map(|(&t, feats)| {
                        (
                            db.name(t).to_owned(),
                            feats
                                .iter()
                                .map(|f| (db.name(f.var).to_owned(), f.distance))
                                .collect::<Vec<_>>(),
                        )
                    })
                    .collect::<BTreeMap<_, _>>()
            };
        assert_eq!(
            by_name(oracle.analysis(), &full_sl),
            by_name(vm.analysis(), &sel_sl),
            "[{}] tightened Algorithm 1 selections diverged",
            p.name
        );

        let (full_rl, _) = extract_rl_pruned(oracle.analysis(), &tight, RlParams::default());
        let (sel_rl, _) = extract_rl_pruned(vm.analysis(), &tight, RlParams::default());
        let rl_by_name =
            |db: &autonomizer::trace::AnalysisDb,
             map: &BTreeMap<_, autonomizer::trace::RlExtraction>| {
                map.iter()
                    .map(|(&t, ex)| {
                        (
                            db.name(t).to_owned(),
                            ex.selected
                                .iter()
                                .map(|&v| db.name(v).to_owned())
                                .collect::<Vec<_>>(),
                        )
                    })
                    .collect::<BTreeMap<_, _>>()
            };
        assert_eq!(
            rl_by_name(oracle.analysis(), &full_rl),
            rl_by_name(vm.analysis(), &sel_rl),
            "[{}] tightened Algorithm 2 selections diverged",
            p.name
        );
    }
}

/// The lint corpus holds deliberately broken programs; whatever each does
/// at runtime (error or not), both engines must do the same thing.
#[test]
fn lint_corpus_programs_behave_identically() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lint_corpus");
    let mut checked = 0;
    for path in lint_corpus_files(&dir) {
        let src = std::fs::read_to_string(&path).unwrap();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        for mode in [TraceMode::Off, TraceMode::Full, TraceMode::Selective] {
            autonomizer::nn::set_init_seed(11);
            let mut interp = Interpreter::compile(&src).expect("lint corpus parses");
            interp.set_tracing(mode != TraceMode::Off);
            interp.set_seed(3);
            interp.set_step_limit(50_000);
            let a = interp.run().map_err(|e| e.to_string());

            for optimize in [false, true] {
                autonomizer::nn::set_init_seed(11);
                let mut vm = if optimize {
                    Vm::compile_opt(&src, mode).expect("lint corpus parses")
                } else {
                    Vm::compile(&src, mode).expect("lint corpus parses")
                };
                vm.set_seed(3);
                vm.set_step_limit(50_000);
                let b = vm.run().map_err(|e| e.to_string());

                assert_eq!(a, b, "[{name} {mode:?} opt={optimize}] result mismatch");
                assert_eq!(
                    interp.output(),
                    vm.output(),
                    "[{name} {mode:?} opt={optimize}] output mismatch"
                );
                assert_eq!(
                    interp.stats().steps,
                    vm.stats().steps,
                    "[{name} {mode:?} opt={optimize}] step mismatch"
                );
                if mode == TraceMode::Full {
                    assert_eq!(
                        interp.analysis().to_dot(),
                        vm.analysis().to_dot(),
                        "[{name} {mode:?} opt={optimize}] analysis db mismatch"
                    );
                }
            }
        }
        checked += 1;
    }
    assert_eq!(checked, 20, "all lint-corpus fixtures covered");
}

/// All `.au` fixtures in the lint corpus, including the `clean/`
/// subdirectory, in a stable order.
fn lint_corpus_files(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut files = Vec::new();
    let mut dirs = vec![dir.to_path_buf()];
    while let Some(d) = dirs.pop() {
        for entry in std::fs::read_dir(&d).expect("lint corpus exists") {
            let path = entry.unwrap().path();
            if path.is_dir() {
                dirs.push(path);
            } else if path.extension().and_then(|e| e.to_str()) == Some("au") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

/// Every corpus program passes the static verifier with zero findings —
/// the same bar CI holds `examples/aulang/*.au` to.
#[test]
fn corpus_programs_are_lint_clean() {
    for p in &corpus::all() {
        let diags = autonomizer::lint::lint_source(p.src).expect("corpus parses");
        assert!(
            diags.is_empty(),
            "[{}] corpus program has lint findings: {diags:#?}",
            p.name
        );
    }
}
