//! Golden-value pin for the compute-kernel overhaul.
//!
//! The bit patterns below were captured from the *pre-overhaul* scalar
//! kernels (naive `matmul` triple loop, 7-deep `Conv2d` loop nest) on a
//! deterministic training run. The blocked/batched kernels that replaced
//! them must reproduce these outputs bit-for-bit at `AU_PAR_THREADS=1`:
//! the accumulation order per output element (ascending inner-dimension
//! index) is part of the kernel contract, not an accident.

use autonomizer::core::{Engine, Mode, ModelConfig};
use autonomizer::nn::{Activation, Network, Tensor};

/// Deterministic dataset: 32 samples, 3 features → 2 outputs.
fn dataset() -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let xs: Vec<Vec<f64>> = (0..32)
        .map(|i| {
            vec![
                (i as f64) / 32.0,
                ((i * 7) % 13) as f64 / 13.0,
                ((i * 3) % 5) as f64 / 5.0,
            ]
        })
        .collect();
    let ys: Vec<Vec<f64>> = xs
        .iter()
        .map(|x| vec![x[0] * 2.0 - x[1], x[2] + 0.5 * x[1]])
        .collect();
    (xs, ys)
}

fn deployed_engine() -> Engine {
    au_nn::set_init_seed(20260806);
    let mut e = Engine::new(Mode::Train);
    e.au_config("G", ModelConfig::dnn(&[16, 8]).with_learning_rate(0.01))
        .expect("config");
    let (xs, ys) = dataset();
    e.train_supervised("G", &xs, &ys, 40).expect("train");
    e.set_mode(Mode::Test);
    e
}

fn probe_inputs() -> Vec<Vec<f64>> {
    vec![
        vec![0.0, 0.0, 0.0],
        vec![0.5, 0.25, 0.75],
        vec![1.0, 1.0, 1.0],
        vec![0.125, 0.875, 0.375],
    ]
}

/// A deterministic conv→pool→dense pixel network (the paper's Raw model
/// shape) and a fixed frame input.
fn conv_net_and_input() -> (Network, Tensor) {
    au_nn::set_init_seed(777);
    let net = Network::builder(2 * 8 * 8)
        .conv2d(2, 8, 8, 4, 3, 1)
        .activation(Activation::Relu)
        .max_pool2d(4, 6, 6, 2)
        .flatten()
        .dense(10)
        .activation(Activation::Tanh)
        .dense(3)
        .build();
    let data: Vec<f32> = (0..2 * 128)
        .map(|i| ((i * 37 + 11) % 97) as f32 / 97.0 - 0.5)
        .collect();
    (net, Tensor::from_vec(&[2, 128], data))
}

/// Expected `predict` outputs for [`probe_inputs`], captured from the
/// pre-overhaul kernels as f64 bit patterns.
const GOLDEN_PREDICT: [[u64; 2]; 4] = [
    [0x3f98ad1100000000, 0x3f935da500000000],
    [0x3fe97bd800000000, 0x3febf34fe0000000],
    [0x3ff0f40c60000000, 0x3ff8088e40000000],
    [0xbfe102b960000000, 0x3fe9808e20000000],
];

/// Expected conv-net `infer` output (shape `[2, 3]`), captured from the
/// pre-overhaul 7-deep loop nest as f32 bit patterns.
const GOLDEN_CONV: [u32; 6] = [
    0x3f8a31a9, 0x3ed41d67, 0xbe0c9819, 0x3ec465d5, 0x3e9b084a, 0x3dd87a80,
];

/// Training + scalar prediction reproduce the pre-overhaul outputs exactly.
///
/// This covers the whole numeric pipeline: weight init, every forward and
/// backward matmul during the 40-epoch training run, the Adam updates, and
/// the final inference pass. Any change to accumulation order anywhere in
/// that chain shows up here.
#[test]
fn predict_bits_match_pre_overhaul_kernels() {
    au_par::set_thread_override(Some(1));
    let mut e = deployed_engine();
    for (x, want) in probe_inputs().iter().zip(GOLDEN_PREDICT) {
        let y = e.predict("G", x).unwrap();
        let want: Vec<f64> = want.iter().map(|&b| f64::from_bits(b)).collect();
        assert_eq!(y, want, "predict({x:?}) drifted from the golden kernels");
    }
    au_par::set_thread_override(None);
}

/// `predict_batch` returns the same bits as scalar `predict`, row for row,
/// and matches the pre-overhaul golden values.
#[test]
fn predict_batch_bits_match_pre_overhaul_kernels() {
    au_par::set_thread_override(Some(1));
    let mut e = deployed_engine();
    let batch = e.predict_batch("G", &probe_inputs()).unwrap();
    assert_eq!(batch.len(), GOLDEN_PREDICT.len());
    for (row, want) in batch.iter().zip(GOLDEN_PREDICT) {
        let want: Vec<f64> = want.iter().map(|&b| f64::from_bits(b)).collect();
        assert_eq!(row, &want, "batch row drifted from the golden kernels");
    }
    au_par::set_thread_override(None);
}

/// The im2col conv forward reproduces the 7-deep loop nest bit-for-bit.
#[test]
fn conv_forward_bits_match_pre_overhaul_kernels() {
    au_par::set_thread_override(Some(1));
    let (net, x) = conv_net_and_input();
    let y = net.infer(&x);
    assert_eq!(y.shape(), &[2, 3]);
    let want: Vec<f32> = GOLDEN_CONV.iter().map(|&b| f32::from_bits(b)).collect();
    assert_eq!(
        y.data(),
        &want[..],
        "conv forward drifted from the golden kernels"
    );
    au_par::set_thread_override(None);
}

#[test]
#[ignore = "capture helper: prints golden bits from the current kernels"]
fn capture_golden_bits() {
    let mut e = deployed_engine();
    for x in &probe_inputs() {
        let y = e.predict("G", x).unwrap();
        let bits: Vec<String> = y.iter().map(|v| format!("{:#018x}", v.to_bits())).collect();
        println!("predict {:?} -> [{}]", x, bits.join(", "));
    }
    let batch = e.predict_batch("G", &probe_inputs()).unwrap();
    for row in &batch {
        let bits: Vec<String> = row
            .iter()
            .map(|v| format!("{:#018x}", v.to_bits()))
            .collect();
        println!("batch -> [{}]", bits.join(", "));
    }
    let (net, x) = conv_net_and_input();
    let y = net.infer(&x);
    let bits: Vec<String> = y
        .data()
        .iter()
        .map(|v| format!("{:#010x}", v.to_bits()))
        .collect();
    println!("conv -> [{}]", bits.join(", "));
}
