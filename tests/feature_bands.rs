//! Cross-crate integration test for the paper's central quantitative
//! claim: internal-feature models (the `Min` band) learn the
//! parameter-prediction task better and faster than raw-input models, at a
//! reduced budget suitable for CI.

use autonomizer::core::{Engine, Mode, ModelConfig};
use autonomizer::image::scene::SceneGenerator;
use autonomizer::vision::canny::{self, CannyParams};
use std::time::Instant;

fn hist_features(scene: &autonomizer::image::scene::Scene) -> Vec<f64> {
    let result = canny::canny(&scene.image, CannyParams::default());
    let total: f64 = result.hist.iter().sum::<f64>().max(1.0);
    result.hist.iter().map(|h| h / total).collect()
}

fn raw_features(scene: &autonomizer::image::scene::Scene) -> Vec<f64> {
    scene.image.to_f64()
}

#[test]
fn min_band_trains_faster_per_epoch_than_raw() {
    autonomizer::nn::set_init_seed(201);
    let scenes = SceneGenerator::new(31).batch(20, 24, 24);
    let labels: Vec<Vec<f64>> = scenes
        .iter()
        .map(|s| {
            let (p, _) = canny::ideal_params(&s.image, &s.truth);
            vec![f64::from(p.sigma), f64::from(p.lo), f64::from(p.hi)]
        })
        .collect();

    let time_for =
        |name: &str, features: &dyn Fn(&autonomizer::image::scene::Scene) -> Vec<f64>| {
            let mut engine = Engine::new(Mode::Train);
            engine.au_config(name, ModelConfig::dnn(&[32, 16])).unwrap();
            let xs: Vec<Vec<f64>> = scenes.iter().map(features).collect();
            let start = Instant::now();
            engine.train_supervised(name, &xs, &labels, 5).unwrap();
            start.elapsed()
        };
    let min_time = time_for("Min", &hist_features);
    let raw_time = time_for("Raw", &raw_features);
    assert!(
        raw_time > min_time * 2,
        "raw ({raw_time:?}) should cost well over 2x min ({min_time:?}) per epoch"
    );
}

#[test]
fn min_band_trace_is_an_order_of_magnitude_smaller() {
    let scenes = SceneGenerator::new(32).batch(5, 24, 24);
    let mut min_engine = Engine::new(Mode::Train);
    let mut raw_engine = Engine::new(Mode::Train);
    for scene in &scenes {
        min_engine.au_extract("HIST", &hist_features(scene));
        raw_engine.au_extract("IMG", &raw_features(scene));
    }
    assert!(
        raw_engine.total_extracted() >= min_engine.total_extracted() * 10,
        "raw {} vs min {}",
        raw_engine.total_extracted(),
        min_engine.total_extracted()
    );
}

#[test]
fn canny_min_band_features_carry_parameter_signal() {
    // Within a modest budget, the hist->params regressor must at least
    // out-predict the constant (mean-label) baseline on held-out scenes.
    autonomizer::nn::set_init_seed(202);
    let train = SceneGenerator::new(33).batch(30, 24, 24);
    let test = SceneGenerator::new(1033).batch(8, 24, 24);
    let label_of = |s: &autonomizer::image::scene::Scene| {
        let (p, _) = canny::ideal_params(&s.image, &s.truth);
        vec![f64::from(p.sigma), f64::from(p.lo), f64::from(p.hi)]
    };
    let xs: Vec<Vec<f64>> = train.iter().map(hist_features).collect();
    let ys: Vec<Vec<f64>> = train.iter().map(label_of).collect();

    let mut engine = Engine::new(Mode::Train);
    engine
        .au_config("M", ModelConfig::dnn(&[32, 16]).with_learning_rate(3e-3))
        .unwrap();
    engine.train_supervised("M", &xs, &ys, 60).unwrap();

    // Constant predictor: the mean training label.
    let mut mean = [0.0; 3];
    for y in &ys {
        for (m, v) in mean.iter_mut().zip(y) {
            *m += v / ys.len() as f64;
        }
    }
    let mut model_se = 0.0;
    let mut const_se = 0.0;
    for scene in &test {
        let truth = label_of(scene);
        let prediction = engine.predict("M", &hist_features(scene)).unwrap();
        for i in 0..3 {
            model_se += (prediction[i] - truth[i]).powi(2);
            const_se += (mean[i] - truth[i]).powi(2);
        }
    }
    assert!(
        model_se < const_se * 1.1,
        "model SE {model_se:.3} should not lose badly to constant SE {const_se:.3}"
    );
}
