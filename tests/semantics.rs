//! Conformance tests for the Fig. 8 operational semantics, exercised
//! through the public engine API.

use autonomizer::core::{AuError, Engine, Mode, ModelConfig};

/// Rule EXTRACT: `π′ = π[extName ↦ concat(π(extName), x[0..size])]`.
#[test]
fn extract_appends_in_order() {
    let mut engine = Engine::new(Mode::Train);
    engine.au_extract("MnX", &[1.0]);
    engine.au_extract("MnX", &[2.0, 3.0]);
    assert_eq!(engine.db().get("MnX"), &[1.0, 2.0, 3.0]);
}

/// Rule WRITE-BACK: `∀i ∈ [0, σ(size)): σ[x[i] ↦ π(wbName)[i]]`.
#[test]
fn write_back_copies_prefix() {
    let mut engine = Engine::new(Mode::Train);
    engine.au_extract("OUT", &[10.0, 20.0, 30.0]);
    let mut x = [0.0; 2];
    engine.au_write_back("OUT", &mut x).unwrap();
    assert_eq!(x, [10.0, 20.0]);
}

/// Rule SERIALIZE: value lists concatenate; names concatenate via strcat.
#[test]
fn serialize_concatenates_names_and_values() {
    let mut engine = Engine::new(Mode::Train);
    engine.au_extract("PX", &[1.0]);
    engine.au_extract("PY", &[2.0]);
    let name = engine.au_serialize(&["PX", "PY"]);
    assert_eq!(name, "PXPY");
    assert_eq!(engine.db().get("PXPY"), &[1.0, 2.0]);
}

/// Rules TRAIN/TEST: after au_NN, the input list is reset to ⊥ and the
/// output list holds the model's prediction.
#[test]
fn au_nn_resets_input_and_writes_output() {
    let mut engine = Engine::new(Mode::Train);
    engine.au_config("M", ModelConfig::dnn(&[4])).unwrap();
    engine.au_extract("F", &[0.5, 0.5]);
    engine.au_extract("P", &[1.0]);
    engine.au_nn("M", "F", &["P"]).unwrap();
    assert!(engine.db().get("F").is_empty(), "extName ↦ ⊥");
    assert_eq!(engine.db().get("P").len(), 1, "π(wbName) = runModel(...)");
}

/// Rule TEST does not update the model; rule TRAIN does.
#[test]
fn test_mode_never_trains() {
    let mut engine = Engine::new(Mode::Train);
    engine.au_config("M", ModelConfig::dnn(&[4])).unwrap();
    engine.au_extract("F", &[0.1]);
    engine.au_extract("L", &[0.9]);
    engine.au_nn("M", "F", &["L"]).unwrap();
    let steps_after_train = engine.model_stats("M").unwrap().train_steps;
    assert_eq!(steps_after_train, 1);

    engine.set_mode(Mode::Test);
    engine.au_extract("F", &[0.1]);
    engine.au_extract("L", &[0.9]); // labels present but TS ignores them
    engine.au_nn("M", "F", &["L"]).unwrap();
    assert_eq!(
        engine.model_stats("M").unwrap().train_steps,
        steps_after_train
    );
}

/// Rule CONFIG-TRAIN: re-configuring an existing model with the same
/// parameters leaves θ unchanged.
#[test]
fn config_is_idempotent_for_same_model() {
    let mut engine = Engine::new(Mode::Train);
    engine.au_config("M", ModelConfig::dnn(&[8])).unwrap();
    engine.au_extract("F", &[1.0]);
    engine.au_extract("L", &[2.0]);
    engine.au_nn("M", "F", &["L"]).unwrap();
    engine.au_config("M", ModelConfig::dnn(&[8])).unwrap();
    assert_eq!(
        engine.model_stats("M").unwrap().train_steps,
        1,
        "θ preserved"
    );
}

/// Rules CHECKPOINT/RESTORE: ⟨σ, π⟩ roll back together; θ does not.
#[test]
fn checkpoint_restores_stores_not_models() {
    let mut engine = Engine::new(Mode::Train);
    engine.au_config("M", ModelConfig::dnn(&[4])).unwrap();

    // σ is the host program's own state here.
    let mut sigma = vec![1.0f64, 2.0];
    engine.au_extract("STATE", &[7.0]);
    let ckpt = engine.checkpoint_with(&sigma);

    sigma[0] = 99.0;
    engine.au_extract("STATE", &[8.0]);
    engine.au_extract("F", &[1.0]);
    engine.au_extract("L", &[1.0]);
    engine.au_nn("M", "F", &["L"]).unwrap();
    let theta_steps = engine.model_stats("M").unwrap().train_steps;

    sigma = engine.restore_with(&ckpt);
    assert_eq!(sigma, vec![1.0, 2.0], "σ restored");
    assert_eq!(engine.db().get("STATE"), &[7.0], "π restored");
    assert_eq!(
        engine.model_stats("M").unwrap().train_steps,
        theta_steps,
        "θ exempt from restore so learning accumulates"
    );
}

/// The two stores are isolated: nothing reaches π except through extract,
/// and nothing leaves except through write-back.
#[test]
fn stores_are_isolated() {
    let mut engine = Engine::new(Mode::Train);
    assert!(engine.db().is_empty());
    engine.au_extract("A", &[1.0]);
    assert_eq!(engine.db().len(), 1);
    let mut out = [0.0];
    // Reading a name never written is an error, not silent garbage.
    assert!(matches!(
        engine.au_write_back("B", &mut out),
        Err(AuError::MissingData { .. })
    ));
}

/// RL rule: the paper's Fig. 2 loop shape — reward completes the previous
/// transition; the action arrives as a one-hot π entry sized by
/// `au_write_back`'s size argument.
#[test]
fn rl_loop_matches_fig2_shape() {
    let mut engine = Engine::new(Mode::Train);
    engine.au_config("Mario", ModelConfig::q_dnn(&[8])).unwrap();
    let mut reward = 0.0;
    for step in 0..5 {
        engine.au_extract("PX", &[step as f64]);
        engine.au_extract("PY", &[0.0]);
        let ser = engine.au_serialize(&["PX", "PY"]);
        let action = engine
            .au_nn_rl("Mario", &ser, reward, false, "output", 5)
            .unwrap();
        let mut action_key = [0.0; 5];
        engine.au_write_back("output", &mut action_key).unwrap();
        assert_eq!(action_key[action], 1.0);
        assert_eq!(action_key.iter().filter(|&&v| v == 1.0).count(), 1);
        reward = if action == 2 { 2.0 } else { -1.0 };
    }
}

/// Multiple model instances coexist in one execution.
#[test]
fn multiple_models_in_one_execution() {
    let mut engine = Engine::new(Mode::Train);
    engine.au_config("SigmaNN", ModelConfig::dnn(&[8])).unwrap();
    engine.au_config("MinNN", ModelConfig::dnn(&[8])).unwrap();
    engine.au_config("Q", ModelConfig::q_dnn(&[8])).unwrap();
    engine.au_extract("IMG", &[0.1, 0.2]);
    engine.au_extract("SIGMA", &[1.5]);
    engine.au_nn("SigmaNN", "IMG", &["SIGMA"]).unwrap();
    engine.au_extract("HIST", &[0.3]);
    engine.au_extract("LO", &[0.2]);
    engine.au_extract("HI", &[0.6]);
    engine.au_nn("MinNN", "HIST", &["LO", "HI"]).unwrap();
    engine.au_extract("S", &[0.0]);
    engine.au_nn_rl("Q", "S", 0.0, false, "out", 3).unwrap();
    assert_eq!(engine.model_names(), vec!["MinNN", "Q", "SigmaNN"]);
}
