//! Integration tests running complete AuLang programs, including annotated
//! programs shaped like the paper's Fig. 2 and Fig. 11 listings.

use autonomizer::lang::{Interpreter, LangError, Value};
use autonomizer::lint::{lint_source, Severity};
use autonomizer::trace::{extract_sl, DistanceBand};

/// Every well-formed fixture must pass the static verifier with zero
/// findings — the same bar CI holds `examples/aulang/*.au` to.
fn assert_lints_clean(src: &str) {
    let diags = lint_source(src).expect("fixture parses");
    assert!(diags.is_empty(), "fixture has lint findings: {diags:#?}");
}

#[test]
fn fig11_shaped_canny_program_traces_and_ranks() {
    // A skeletal Canny in AuLang: the interpreter's automatic tracing must
    // reconstruct Fig. 9's ranking for the hysteresis threshold.
    let src = r#"
        fn smooth(image, sigma) {
            return image * 0.9 + sigma;
        }
        fn magnitude(sImg) {
            return sImg * sImg;
        }
        fn computeHist(mag) {
            return mag * 0.5;
        }
        fn main() {
            let image = input("image", 4);
            let sigma = 1;
            let lo = 0.25;
            au_extract("P", 0.3);
            let sImg = smooth(image, sigma);
            let mag = magnitude(sImg);
            let hist = computeHist(mag);
            lo = au_write_back("P");
            let result = hist + lo;
            return result;
        }
    "#;
    assert_lints_clean(src);
    let mut interp = Interpreter::compile(src).unwrap();
    interp.run().unwrap();
    let db = interp.analysis();
    let lo = db.id("lo").expect("lo assigned from write_back");
    assert!(db.targets().contains(&lo));
    let features = extract_sl(db);
    let ranked = &features[&lo];
    assert!(!ranked.is_empty());
    // hist must outrank the raw image.
    let pos = |name: &str| ranked.iter().position(|f| db.name(f.var) == name);
    let hist_pos = pos("hist").expect("hist is a candidate");
    let image_pos = pos("image").expect("image is a candidate");
    assert!(hist_pos < image_pos, "hist ranks above image (Fig. 9)");
    let min = autonomizer::trace::select_band(ranked, DistanceBand::Min);
    assert!(min.iter().any(|&v| db.name(v) == "hist"));
}

#[test]
fn fig2_shaped_game_loop_runs_with_checkpoint_restore() {
    // The Fig. 2 skeleton: checkpoint at loop top, au_NN with reward and
    // terminal, restore on termination. As in the paper, the training loop
    // is effectively endless (restore rolls the loop counter back with the
    // rest of σ), so the host bounds it with the interpreter's step budget
    // — what we assert is that restore cycles execute without corrupting
    // program state while the model keeps learning across them.
    autonomizer::nn::set_init_seed(63);
    let src = r#"
        fn main() {
            au_config("Mario", "DNN", "QLearn", 1, 8);
            let px = 0;
            let t = 0;
            let reward = 0;
            au_checkpoint();
            while (t < 120) {
                au_extract("PX", px);
                let a = au_nn_rl("Mario", "PX", reward, false, "out", 2);
                if (a == 1) { px = px + 1; reward = 2; } else { reward = 0 - 1; }
                // "dying": px beyond 5 ends the episode
                let terminated = 0;
                if (px > 5) { terminated = 1; }
                t = t + 1;
                if (terminated == 1) {
                    au_extract("PX", px);
                    let b = au_nn_rl("Mario", "PX", 0 - 10, true, "out", 2);
                    au_restore();
                }
            }
            return t;
        }
    "#;
    assert_lints_clean(src);
    let mut interp = Interpreter::compile(src).unwrap();
    interp.set_tracing(false);
    interp.set_step_limit(30_000);
    match interp.run() {
        // The agent learned to idle long enough for t to reach 120.
        Ok(v) => assert_eq!(v.as_num(), Some(120.0)),
        // Or the step budget ended the endless training loop — expected.
        Err(LangError::Runtime(msg)) => assert!(msg.contains("step limit"), "{msg}"),
        Err(other) => panic!("unexpected failure: {other}"),
    }
    // θ survived every restore: the model kept training.
    let steps = interp
        .engine_mut()
        .model_stats("Mario")
        .expect("model built")
        .train_steps;
    assert!(steps > 0, "model trained across restore cycles");
}

#[test]
fn aulang_sl_pipeline_learns_scaling_factor() {
    autonomizer::nn::set_init_seed(61);
    let src = r#"
        fn main() {
            au_config("M", "DNN", "AdamOpt", 1, 16);
            let i = 0;
            while (i < 1200) {
                let x = (i % 8) / 8.0;
                au_extract("X", x);
                au_extract("Y", x * 4);
                au_nn("M", "X", "Y");
                i = i + 1;
            }
            au_extract("X", 0.5);
            au_nn("M", "X", "Y");
            let y = 0;
            y = au_write_back("Y");
            return y;
        }
    "#;
    assert_lints_clean(src);
    let mut interp = Interpreter::compile(src).unwrap();
    interp.set_tracing(false);
    let y = interp.run().unwrap().as_num().unwrap();
    assert!((y - 2.0).abs() < 0.6, "predicted {y}, want ≈ 2.0");
}

#[test]
fn aulang_inputs_flow_into_analysis() {
    let src = r#"
        fn main() {
            let raw = input("raw", 10);
            let scaled = raw / 10.0;
            let derived = scaled * scaled;
            au_extract("D", derived);
            let out = 0;
            out = au_write_back("D");
            return out;
        }
    "#;
    assert_lints_clean(src);
    let mut interp = Interpreter::compile(src).unwrap();
    interp.set_input("raw", Value::Num(5.0));
    let out = interp.run().unwrap().as_num().unwrap();
    assert!((out - 0.25).abs() < 1e-9);
    let db = interp.analysis();
    let raw = db.id("raw").unwrap();
    let out_var = db.id("out").unwrap();
    assert!(db.inputs().contains(&raw));
    assert!(db.targets().contains(&out_var));
    // raw transitively reaches `derived`.
    let derived = db.id("derived").unwrap();
    assert!(db.dependents(raw).contains(&derived));
}

#[test]
fn runtime_errors_surface_with_context() {
    let err = Interpreter::compile("fn main() { let x = 1 + true; }")
        .unwrap()
        .run()
        .unwrap_err();
    match err {
        LangError::Runtime(msg) => assert!(msg.contains("boolean"), "{msg}"),
        other => panic!("expected runtime error, got {other:?}"),
    }
}

#[test]
fn engine_errors_propagate_through_the_interpreter() {
    // au_nn on a never-configured model surfaces as an Engine error.
    let src = r#"
        fn main() {
            au_extract("F", 1);
            au_nn("Ghost", "F", "P");
            return 0;
        }
    "#;
    let err = Interpreter::compile(src).unwrap().run().unwrap_err();
    assert!(matches!(err, LangError::Engine(_)), "got {err:?}");
    // The static verifier catches the same mistake before any run: the
    // never-configured model is AU001, an error-severity finding.
    let diags = lint_source(src).unwrap();
    assert!(
        diags
            .iter()
            .any(|d| d.code == "AU001" && d.severity == Severity::Error),
        "verifier should flag the unconfigured model: {diags:?}"
    );
}

#[test]
fn runaway_recursion_is_a_runtime_error_not_a_crash() {
    let src = "fn f(n) { return f(n + 1); } fn main() { return f(0); }";
    let err = Interpreter::compile(src).unwrap().run().unwrap_err();
    match err {
        LangError::Runtime(msg) => assert!(msg.contains("call depth"), "{msg}"),
        other => panic!("expected runtime error, got {other:?}"),
    }
}

#[test]
fn recursive_aulang_functions_work() {
    let src = r#"
        fn fib(n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        fn main() { return fib(12); }
    "#;
    let v = Interpreter::compile(src).unwrap().run().unwrap();
    assert_eq!(v.as_num(), Some(144.0));
}

/// A complete miniature data-processing program in AuLang: a 1-D "edge
/// detector" over an array signal, autonomized end to end — smooth with a
/// moving average, differentiate, histogram the magnitudes, and let the
/// model predict the detection threshold from the histogram. Exercises
/// arrays, for-loops, user functions, and the full SL primitive cycle in
/// one program.
#[test]
fn aulang_mini_canny_pipeline() {
    autonomizer::nn::set_init_seed(71);
    let src = r#"
        fn smooth(signal, n) {
            let out = [];
            for (let i = 0; i < n; i = i + 1) {
                let lo = max(i - 1, 0);
                let hi = min(i + 1, n - 1);
                out = append(out, (signal[lo] + signal[i] + signal[hi]) / 3.0);
            }
            return out;
        }

        fn gradient(s, n) {
            let out = [];
            for (let i = 0; i < n - 1; i = i + 1) {
                out = append(out, abs(s[i + 1] - s[i]));
            }
            return out;
        }

        fn histogram(mag, n) {
            // 4 bins over [0, 1).
            let hist = [0, 0, 0, 0];
            for (let i = 0; i < n; i = i + 1) {
                let bin = floor(min(mag[i], 0.99) * 4);
                hist[bin] = hist[bin] + 1;
            }
            return hist;
        }

        fn main() {
            au_config("ThNN", "DNN", "AdamOpt", 1, 16);
            // Train across synthetic signals of varying edge height. The
            // ideal threshold is half the edge height.
            let round = 0;
            while (round < 250) {
                let height = 0.2 + 0.6 * ((round % 10) / 10.0);
                // signal: flat 0 then a step of `height` + small wiggle
                let signal = [];
                for (let i = 0; i < 16; i = i + 1) {
                    let base = 0;
                    if (i >= 8) { base = height; }
                    signal = append(signal, base + 0.02 * sin(i * 3.0));
                }
                let s = smooth(signal, 16);
                let mag = gradient(s, 16);
                let hist = histogram(mag, 15);
                au_extract("HIST", hist);
                au_extract("TH", height / 2.0);
                au_nn("ThNN", "HIST", "TH");
                round = round + 1;
            }

            // Deployment on an unseen edge height.
            let height = 0.55;
            let signal = [];
            for (let i = 0; i < 16; i = i + 1) {
                let base = 0;
                if (i >= 8) { base = height; }
                signal = append(signal, base + 0.02 * sin(i * 3.0));
            }
            let s = smooth(signal, 16);
            let mag = gradient(s, 16);
            let hist = histogram(mag, 15);
            au_extract("HIST", hist);
            au_nn("ThNN", "HIST", "TH");
            let th = 0;
            th = au_write_back("TH");
            return th;
        }
    "#;
    assert_lints_clean(src);
    let mut interp = Interpreter::compile(src).unwrap();
    interp.set_tracing(false);
    interp.set_step_limit(50_000_000);
    let th = interp.run().unwrap().as_num().unwrap();
    assert!(
        (th - 0.275).abs() < 0.12,
        "predicted threshold {th}, ideal 0.275"
    );
}
