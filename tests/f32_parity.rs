//! f32/f64 serving-path parity across the nine paper programs.
//!
//! The hot serving path is natively `f32` (`predict_f32`,
//! `predict_batch_f32`); the `f64` API narrows its input once at the
//! boundary and widens the output once (exactly — every `f32` is an
//! `f64`). Feeding both paths the same narrowed rows must therefore give
//! *bit-identical* results, on real feature vectors from all nine
//! benchmarks: Canny, Rothwell, Phylip, Sphinx (SL) and Flappybird,
//! Mario, Arkanoid, Torcs, Breakout (RL).

use autonomizer::core::{EngineHandle, Mode, ModelConfig};
use autonomizer::games::Game;
use autonomizer::image::scene::SceneGenerator;
use autonomizer::speech::{self, Recognizer, Vocabulary};
use autonomizer::vision::{canny, rothwell};

/// Real per-frame feature rows from an RL game driven by its oracle.
fn game_rows(game: &mut dyn Game, frames: usize) -> Vec<Vec<f64>> {
    let mut rows = Vec::with_capacity(frames);
    for _ in 0..frames {
        rows.push(game.features());
        let a = game.oracle_action();
        if game.step(a).terminal {
            game.reset();
        }
    }
    rows
}

/// Feature matrices for all nine benchmarks, each from the program's own
/// feature source (histograms, magnitude summaries, distance summaries,
/// utterance summaries, live game state).
fn benchmark_rows() -> Vec<(&'static str, Vec<Vec<f64>>)> {
    let mut out = Vec::new();

    let mut gen = SceneGenerator::new(11);
    let norm = |h: &[f64]| {
        let t: f64 = h.iter().sum::<f64>().max(1.0);
        h.iter().map(|v| v / t).collect::<Vec<f64>>()
    };
    let mut canny_rows = Vec::new();
    let mut rothwell_rows = Vec::new();
    for _ in 0..6 {
        let scene = gen.generate(16, 16);
        canny_rows.push(norm(
            &canny::canny(&scene.image, canny::CannyParams::default()).hist,
        ));
        rothwell_rows
            .push(rothwell::rothwell(&scene.image, rothwell::RothwellParams::default()).summary);
    }
    out.push(("Canny", canny_rows));
    out.push(("Rothwell", rothwell_rows));

    let phylip_rows: Vec<Vec<f64>> = (0..6)
        .map(|i| {
            let data = autonomizer::phylo::generate_dataset(5, 40, 100 + i);
            autonomizer::phylo::distance_summary(&data.sequences)
        })
        .collect();
    out.push(("Phylip", phylip_rows));

    let recognizer = Recognizer::new(Vocabulary::new(4, 16));
    let sphinx_rows: Vec<Vec<f64>> = (0..6u64)
        .map(|i| speech::synthesize(recognizer.vocabulary(), (i % 4) as usize, i).summary())
        .collect();
    out.push(("Sphinx", sphinx_rows));

    out.push((
        "Flappybird",
        game_rows(&mut autonomizer::games::Flappybird::new(5), 24),
    ));
    out.push((
        "Mario",
        game_rows(&mut autonomizer::games::Mario::new(5), 24),
    ));
    out.push((
        "Arkanoid",
        game_rows(&mut autonomizer::games::Arkanoid::new(5), 24),
    ));
    out.push((
        "Torcs",
        game_rows(&mut autonomizer::games::Torcs::new(5), 24),
    ));
    out.push((
        "Breakout",
        game_rows(&mut autonomizer::games::Breakout::new(5), 24),
    ));
    out
}

#[test]
fn f32_serving_is_bit_identical_to_f64_on_all_nine_benchmarks() {
    for (bi, (name, rows)) in benchmark_rows().into_iter().enumerate() {
        assert!(!rows.is_empty(), "{name}: no feature rows");
        let width = rows[0].len();
        assert!(width > 0, "{name}: empty feature rows");

        // Train a small supervised model on the program's real features
        // (labels are an arbitrary smooth function — parity is about the
        // serving path, not accuracy).
        autonomizer::nn::set_init_seed(4000 + bi as u64);
        let h = EngineHandle::new(Mode::Train);
        h.au_config(name, ModelConfig::dnn(&[16, 8])).unwrap();
        let ys: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| vec![r.iter().sum::<f64>() / r.len() as f64, r[0]])
            .collect();
        h.train_supervised(name, &rows, &ys, 3).unwrap();
        h.set_mode(Mode::Test);

        let rows32: Vec<Vec<f32>> = rows
            .iter()
            .map(|r| r.iter().map(|&v| v as f32).collect())
            .collect();

        // Scalar parity: widened f32 outputs == f64 outputs, bit for bit.
        let mut scratch_out = Vec::new();
        for (row, row32) in rows.iter().zip(&rows32) {
            let via_f64 = h.predict(name, row).unwrap();
            let via_f32 = h.predict_f32(name, row32).unwrap();
            assert_eq!(via_f64.len(), via_f32.len(), "{name}: width mismatch");
            for (a, b) in via_f64.iter().zip(&via_f32) {
                assert_eq!(
                    a.to_bits(),
                    f64::from(*b).to_bits(),
                    "{name}: f32 path diverged from f64 path"
                );
            }
            // The allocation-free form appends the same bits.
            scratch_out.clear();
            h.predict_f32_into(name, row32, &mut scratch_out).unwrap();
            assert_eq!(scratch_out, via_f32, "{name}: _into diverged");
        }

        // Batch parity: the flat f32 batch equals per-row f32 serving, and
        // the f64 batch equals per-row f64 serving.
        let flat: Vec<f32> = rows32.iter().flatten().copied().collect();
        let batch32 = h.predict_batch_f32(name, &flat).unwrap();
        let batch64 = h.predict_batch(name, &rows).unwrap();
        let out_width = batch32.len() / rows.len();
        for (i, row32) in rows32.iter().enumerate() {
            let per_row = h.predict_f32(name, row32).unwrap();
            assert_eq!(
                &batch32[i * out_width..(i + 1) * out_width],
                per_row.as_slice(),
                "{name}: batched f32 row {i} diverged"
            );
            assert_eq!(
                batch64[i],
                h.predict(name, &rows[i]).unwrap(),
                "{name}: batched f64 row {i} diverged"
            );
        }
    }
}
