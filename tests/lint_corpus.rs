//! The lint corpus: one deliberately-broken AuLang program per lint code
//! under `tests/lint_corpus/`, each asserting that exactly the seeded
//! diagnostic fires — right code, right line, and nothing else.

use autonomizer::lint::{lint_source, Severity, LINTS};
use std::path::Path;

/// (corpus file, expected code, expected 1-based line of the diagnostic).
const CORPUS: &[(&str, &str, usize)] = &[
    ("au001_unconfigured_model.au", "AU001", 5),
    ("au002_predict_before_extract.au", "AU002", 5),
    ("au003_unknown_write_back_key.au", "AU003", 8),
    ("au004_restore_without_checkpoint.au", "AU004", 8),
    ("au005_unreachable_serialize.au", "AU005", 6),
    ("au006_dead_extract.au", "AU006", 4),
    ("au007_unrelated_feature.au", "AU007", 10),
    ("au008_input_independent_target.au", "AU008", 18),
    ("au009_unused_model.au", "AU009", 4),
    ("au010_reconfigured_model.au", "AU010", 4),
    ("au011_dead_feature_store.au", "AU011", 6),
    ("au012_constant_feature.au", "AU012", 7),
    ("au013_unreachable_checkpoint.au", "AU013", 7),
    ("au014_possible_div_zero.au", "AU014", 11),
    ("au015_loop_invariant_trace.au", "AU015", 10),
];

fn read_corpus(file: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/lint_corpus")
        .join(file);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path:?}: {e}"))
}

#[test]
fn every_corpus_program_fires_exactly_its_seeded_diagnostic() {
    for &(file, code, line) in CORPUS {
        let src = read_corpus(file);
        let diags = lint_source(&src).unwrap_or_else(|e| panic!("{file} does not parse: {e}"));
        assert_eq!(
            diags.len(),
            1,
            "{file}: expected exactly one diagnostic, got {diags:?}"
        );
        assert_eq!(diags[0].code, code, "{file}: wrong code: {diags:?}");
        assert_eq!(diags[0].line, line, "{file}: wrong line: {diags:?}");
        // The span must point inside the source and slice non-empty text.
        assert!(diags[0].start < diags[0].end && diags[0].end <= src.len());
        // Severity must agree with the registry.
        let registered = LINTS
            .iter()
            .find(|(c, _, _)| *c == code)
            .unwrap_or_else(|| panic!("{code} missing from LINTS"));
        assert_eq!(diags[0].severity, registered.1, "{file}");
    }
}

#[test]
fn corpus_covers_every_registered_lint_exactly_once() {
    assert_eq!(CORPUS.len(), LINTS.len());
    for (code, _, _) in LINTS {
        assert_eq!(
            CORPUS.iter().filter(|(_, c, _)| c == code).count(),
            1,
            "{code} must appear exactly once in the corpus"
        );
    }
}

#[test]
fn clean_counterparts_lint_clean() {
    // `tests/lint_corpus/clean/` holds the near-miss twin of each
    // abstract-interpretation fixture: same shape, but the value facts
    // don't hold, so the lint must stay quiet.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lint_corpus/clean");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("tests/lint_corpus/clean exists") {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "au") {
            let src = std::fs::read_to_string(&path).unwrap();
            let diags = lint_source(&src).unwrap_or_else(|e| panic!("{path:?}: {e}"));
            assert!(diags.is_empty(), "{path:?} has lint findings: {diags:#?}");
            checked += 1;
        }
    }
    assert_eq!(checked, 5, "expected one clean twin per AU011–AU015");
}

#[test]
fn bundled_examples_lint_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/aulang");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("examples/aulang exists") {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "au") {
            let src = std::fs::read_to_string(&path).unwrap();
            let diags = lint_source(&src).unwrap_or_else(|e| panic!("{path:?}: {e}"));
            assert!(diags.is_empty(), "{path:?} has lint findings: {diags:#?}");
            checked += 1;
        }
    }
    assert!(checked >= 1, "no .au examples found in {dir:?}");
}

#[test]
fn corpus_errors_are_errors_and_warnings_are_warnings() {
    for &(file, code, _) in CORPUS {
        let src = read_corpus(file);
        let diags = lint_source(&src).unwrap();
        let expect_error = matches!(code, "AU001" | "AU002" | "AU003" | "AU004");
        assert_eq!(
            diags[0].severity == Severity::Error,
            expect_error,
            "{file}: severity mismatch"
        );
    }
}
