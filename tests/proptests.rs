//! Property-based tests over the core data structures and invariants.

use autonomizer::core::{Engine, Mode};
use autonomizer::image::GrayImage;
use autonomizer::nn::Tensor;
use autonomizer::trace::{euclidean_distance, min_max_scale, variance, AnalysisDb};
use proptest::prelude::*;

proptest! {
    /// π is append-only under extract: contents equal the concatenation of
    /// everything extracted, in order.
    #[test]
    fn db_store_preserves_extraction_order(chunks in prop::collection::vec(prop::collection::vec(-1e6f64..1e6, 0..5), 0..10)) {
        let mut engine = Engine::new(Mode::Train);
        let mut expected = Vec::new();
        for chunk in &chunks {
            engine.au_extract("K", chunk);
            expected.extend_from_slice(chunk);
        }
        let db = engine.db();
        prop_assert_eq!(db.get("K"), &expected[..]);
        prop_assert_eq!(engine.total_extracted(), expected.len() as u64);
    }

    /// Checkpoint/restore round-trips arbitrary program state exactly.
    #[test]
    fn checkpoint_roundtrip_is_exact(state in prop::collection::vec(-1e9f64..1e9, 0..20),
                                     extra in prop::collection::vec(-1e9f64..1e9, 0..20)) {
        let mut engine = Engine::new(Mode::Train);
        engine.au_extract("D", &state);
        let ckpt = engine.checkpoint_with(&state);
        engine.au_extract("D", &extra);
        let restored = engine.restore_with(&ckpt);
        prop_assert_eq!(restored, state.clone());
        let db = engine.db();
        prop_assert_eq!(db.get("D"), &state[..]);
    }

    /// Serialize equals manual concatenation, regardless of list contents.
    #[test]
    fn serialize_equals_concat(a in prop::collection::vec(-1e6f64..1e6, 0..8),
                               b in prop::collection::vec(-1e6f64..1e6, 0..8)) {
        let mut engine = Engine::new(Mode::Train);
        engine.au_extract("A", &a);
        engine.au_extract("B", &b);
        let name = engine.au_serialize(&["A", "B"]);
        let mut expected = a.clone();
        expected.extend_from_slice(&b);
        let db = engine.db();
        prop_assert_eq!(db.get(&name), &expected[..]);
    }

    /// Matmul with the identity is the identity.
    #[test]
    fn matmul_identity(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| ((i as u64 * 2654435761 + seed) % 1000) as f32 / 100.0 - 5.0)
            .collect();
        let m = Tensor::from_vec(&[rows, cols], data);
        let mut id = Tensor::zeros(&[cols, cols]);
        for i in 0..cols {
            id.data_mut()[i * cols + i] = 1.0;
        }
        prop_assert_eq!(m.matmul(&id), m);
    }

    /// Transpose is an involution and swaps dimensions.
    #[test]
    fn transpose_involution(rows in 1usize..8, cols in 1usize..8) {
        let data: Vec<f32> = (0..rows * cols).map(|i| i as f32).collect();
        let m = Tensor::from_vec(&[rows, cols], data);
        let t = m.transpose();
        prop_assert_eq!(t.shape(), &[cols, rows]);
        prop_assert_eq!(t.transpose(), m);
    }

    /// Min–max scaling maps into [0, 1] and preserves order.
    #[test]
    fn scaling_bounds_and_monotonicity(trace in prop::collection::vec(-1e6f64..1e6, 1..50)) {
        let scaled = min_max_scale(&trace);
        prop_assert_eq!(scaled.len(), trace.len());
        for &v in &scaled {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        for i in 0..trace.len() {
            for j in 0..trace.len() {
                if trace[i] < trace[j] {
                    prop_assert!(scaled[i] <= scaled[j]);
                }
            }
        }
    }

    /// Euclidean trace distance is symmetric, non-negative, and zero on
    /// identical traces.
    #[test]
    fn trace_distance_is_a_premetric(a in prop::collection::vec(-1e3f64..1e3, 0..20),
                                     b in prop::collection::vec(-1e3f64..1e3, 0..20)) {
        let d_ab = euclidean_distance(&a, &b);
        let d_ba = euclidean_distance(&b, &a);
        prop_assert!((d_ab - d_ba).abs() < 1e-9);
        prop_assert!(d_ab >= 0.0);
        prop_assert_eq!(euclidean_distance(&a, &a), 0.0);
    }

    /// Variance is non-negative and zero for constants.
    #[test]
    fn variance_properties(value in -1e3f64..1e3, len in 1usize..30) {
        let constant = vec![value; len];
        prop_assert!(variance(&constant).abs() < 1e-18);
        let mut varied = constant.clone();
        varied[0] += 1.0;
        if len > 1 {
            prop_assert!(variance(&varied) > 0.0);
        }
    }

    /// dep() is monotone under edge addition: adding an edge never removes
    /// existing dependents.
    #[test]
    fn dependents_monotone_under_edges(edges in prop::collection::vec((0usize..8, 0usize..8), 1..20)) {
        let mut db = AnalysisDb::new();
        let name = |i: usize| format!("v{i}");
        for (src, dst) in &edges {
            db.record_assign(&name(*dst), &[&name(*src)], None, "f");
        }
        let v0 = db.var("v0");
        let before = db.dependents(v0);
        db.record_assign("extra", &["v0"], None, "f");
        let after = db.dependents(v0);
        prop_assert!(before.is_subset(&after));
    }

    /// SSIM is 1 on identical images and bounded by 1 in general.
    #[test]
    fn ssim_bounds(pixels in prop::collection::vec(0.0f32..1.0, 16..=16),
                   other in prop::collection::vec(0.0f32..1.0, 16..=16)) {
        let a = GrayImage::from_pixels(4, 4, pixels);
        let b = GrayImage::from_pixels(4, 4, other);
        let same = autonomizer::image::ssim(&a, &a);
        prop_assert!((same - 1.0).abs() < 1e-6);
        let cross = autonomizer::image::ssim(&a, &b);
        prop_assert!(cross <= 1.0 + 1e-9);
    }

    /// Robinson–Foulds: zero on identical trees, symmetric, bounded by
    /// 2(n−3).
    #[test]
    fn robinson_foulds_properties(seed_a in 0u64..500, seed_b in 0u64..500, taxa in 4usize..10) {
        let a = autonomizer::phylo::generate_dataset(taxa, 20, seed_a).true_tree;
        let b = autonomizer::phylo::generate_dataset(taxa, 20, seed_b).true_tree;
        prop_assert_eq!(autonomizer::phylo::robinson_foulds(&a, &a), 0.0);
        let d_ab = autonomizer::phylo::robinson_foulds(&a, &b);
        let d_ba = autonomizer::phylo::robinson_foulds(&b, &a);
        prop_assert_eq!(d_ab, d_ba);
        prop_assert!(d_ab <= 2.0 * (taxa as f64 - 3.0));
    }

    /// Game determinism: the same seed and action sequence produce the same
    /// trajectory (required for checkpoint/restore fidelity).
    #[test]
    fn games_are_deterministic(seed in 0u64..100, actions in prop::collection::vec(0usize..2, 1..60)) {
        use autonomizer::games::{Flappybird, Game};
        let mut a = Flappybird::new(seed);
        let mut b = Flappybird::new(seed);
        for &action in &actions {
            prop_assert_eq!(a.step(action), b.step(action));
        }
        prop_assert_eq!(a.features(), b.features());
    }

    /// Model JSON round-trips preserve predictions bit-for-bit.
    #[test]
    fn network_json_roundtrip(inputs in prop::collection::vec(-10.0f32..10.0, 3..=3)) {
        use autonomizer::nn::{Activation, Network};
        autonomizer::nn::set_init_seed(7);
        let mut net = Network::builder(3).dense(5).activation(Activation::Tanh).dense(2).build();
        let x = Tensor::row(&inputs);
        let y = net.forward(&x);
        let mut restored = Network::from_json(&net.to_json()).unwrap();
        prop_assert_eq!(restored.forward(&x), y);
    }
}
